//! Integration tests of the *modelled* behaviours the paper reports:
//! the experiments' headline effects must hold as invariants, not just in
//! the printed tables.

use hwgc::memsim::MemConfig;
use hwgc::prelude::*;
use hwgc_core::StallReason;
use hwgc_workloads::Preset;

fn spec(preset: Preset) -> WorkloadSpec {
    WorkloadSpec {
        preset,
        seed: 42,
        scale: 0.3,
    }
}

fn run(preset: Preset, cfg: GcConfig) -> GcOutcome {
    let mut heap = spec(preset).build();
    let snapshot = Snapshot::capture(&heap);
    let out = SimCollector::new(cfg).collect(&mut heap);
    verify_collection(&heap, out.free, &snapshot).expect("correct collection");
    out
}

fn speedup(preset: Preset, cores: usize, mem: MemConfig) -> f64 {
    let base = run(
        preset,
        GcConfig {
            n_cores: 1,
            mem,
            ..GcConfig::default()
        },
    );
    let par = run(
        preset,
        GcConfig {
            n_cores: cores,
            mem,
            ..GcConfig::default()
        },
    );
    base.stats.total_cycles as f64 / par.stats.total_cycles as f64
}

#[test]
fn linear_benchmarks_do_not_scale() {
    // Paper Figure 5: compress and search show no significant speedup.
    for preset in [Preset::Compress, Preset::Search] {
        let s = speedup(preset, 16, MemConfig::default());
        assert!(
            s < 4.0,
            "{preset} scaled to {s:.2}x; the paper's linear graphs must not"
        );
    }
}

#[test]
fn parallel_benchmarks_scale_well() {
    // Paper Figure 5: up to 7.4x at 8 cores, 12.1x at 16.
    for preset in [Preset::Db, Preset::Javacc, Preset::Jlisp] {
        let s8 = speedup(preset, 8, MemConfig::default());
        assert!(s8 > 5.0, "{preset} reached only {s8:.2}x at 8 cores");
    }
}

#[test]
fn linear_benchmarks_have_empty_worklist_at_high_core_counts() {
    // Paper Table I: ~99 % for compress/search at >= 4 cores, near 0 % at
    // 1 core.
    for preset in [Preset::Compress, Preset::Search] {
        let one = run(preset, GcConfig::with_cores(1));
        let many = run(preset, GcConfig::with_cores(8));
        assert!(
            one.stats.empty_worklist_fraction() < 0.02,
            "{preset} at 1 core: {:.4}",
            one.stats.empty_worklist_fraction()
        );
        assert!(
            many.stats.empty_worklist_fraction() > 0.80,
            "{preset} at 8 cores: {:.4}",
            many.stats.empty_worklist_fraction()
        );
    }
}

#[test]
fn parallel_benchmarks_keep_the_worklist_full() {
    // Paper Table I: cup/db/javac stay under ~0.1 % even at 16 cores.
    for preset in [Preset::Cup, Preset::Db, Preset::Javac] {
        let out = run(preset, GcConfig::with_cores(16));
        assert!(
            out.stats.empty_worklist_fraction() < 0.05,
            "{preset}: {:.4}",
            out.stats.empty_worklist_fraction()
        );
    }
}

#[test]
fn javac_contends_on_header_locks() {
    // Paper Table II: javac is the one benchmark with substantial
    // header-lock stalls (29.4 %); the others sit near zero.
    let javac = run(Preset::Javac, GcConfig::with_cores(16));
    let db = run(Preset::Db, GcConfig::with_cores(16));
    let javac_frac = javac.stats.stall_fraction(StallReason::HeaderLock);
    let db_frac = db.stats.stall_fraction(StallReason::HeaderLock);
    assert!(
        javac_frac > 0.05,
        "javac header-lock stalls: {javac_frac:.4}"
    );
    assert!(db_frac < 0.01, "db header-lock stalls: {db_frac:.4}");
}

#[test]
fn test_before_lock_removes_javac_contention() {
    // Paper Section VI-B's proposed improvement (ablation C).
    let base = run(
        Preset::Javac,
        GcConfig {
            n_cores: 16,
            ..GcConfig::default()
        },
    );
    let probed = run(
        Preset::Javac,
        GcConfig {
            n_cores: 16,
            test_before_lock: true,
            ..GcConfig::default()
        },
    );
    let b = base.stats.stall_fraction(StallReason::HeaderLock);
    let p = probed.stats.stall_fraction(StallReason::HeaderLock);
    assert!(p < b / 4.0, "test-before-lock: {b:.4} -> {p:.4}");
    assert_eq!(base.stats.objects_copied, probed.stats.objects_copied);
}

#[test]
fn higher_memory_latency_improves_scalability() {
    // Paper Figure 6: +20 cycles of latency improves the speedup of every
    // benchmark with enough parallelism.
    for preset in [Preset::Db, Preset::Javacc] {
        let normal = speedup(preset, 16, MemConfig::default());
        let slow = speedup(preset, 16, MemConfig::default().with_extra_latency(20));
        assert!(
            slow > normal,
            "{preset}: speedup {normal:.2} -> {slow:.2} should improve with latency"
        );
    }
}

#[test]
fn cup_overflows_the_fifo_and_small_fifos_hurt() {
    // Paper Section V-D + Table II: cup's gray frontier exceeds the FIFO,
    // and the resulting memory reads lengthen the scan critical section.
    let big = GcConfig {
        n_cores: 16,
        mem: MemConfig {
            header_fifo_capacity: 1 << 20,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    let small = GcConfig {
        n_cores: 16,
        mem: MemConfig {
            header_fifo_capacity: 64,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    // The full-scale cup frontier (~5000 gray records) exceeds the default
    // 4096-entry FIFO; this test runs at scale 0.3, so check the overflow
    // against a proportionally small FIFO instead.
    let default_cfg = GcConfig {
        n_cores: 16,
        mem: MemConfig {
            header_fifo_capacity: 1024,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    let with_default = run(Preset::Cup, default_cfg);
    assert!(
        with_default.stats.fifo.overflows > 0,
        "cup must overflow an undersized FIFO"
    );

    let with_big = run(Preset::Cup, big);
    assert_eq!(with_big.stats.fifo.overflows, 0);

    let with_small = run(Preset::Cup, small);
    assert!(
        with_small.stats.total_cycles > with_big.stats.total_cycles,
        "a starved FIFO must cost cycles: {} vs {}",
        with_small.stats.total_cycles,
        with_big.stats.total_cycles
    );
    assert!(
        with_small.stats.stall_fraction(StallReason::ScanLock)
            > with_big.stats.stall_fraction(StallReason::ScanLock),
        "FIFO misses must lengthen the scan critical section"
    );
}

#[test]
fn disabled_fifo_still_collects_correctly() {
    let cfg = GcConfig {
        n_cores: 8,
        mem: MemConfig {
            header_fifo_capacity: 0,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    let out = run(Preset::Javacc, cfg);
    assert_eq!(out.stats.fifo.hits, 0);
    assert!(out.stats.fifo.overflows > 0);
}

#[test]
fn single_core_has_no_lock_contention() {
    // Paper: "this single-core configuration performs like the original
    // sequential implementation" — nothing to contend with.
    let out = run(Preset::Db, GcConfig::with_cores(1));
    assert_eq!(out.stats.stall.scan_lock, 0);
    assert_eq!(out.stats.stall.free_lock, 0);
    assert_eq!(out.stats.stall.header_lock, 0);
}

#[test]
fn sync_ops_are_free_when_uncontended() {
    // The SB's zero-cost claim, checked through the stats: at 1 core every
    // acquisition succeeds on the first attempt.
    let out = run(Preset::Javacc, GcConfig::with_cores(1));
    assert!(out.stats.sync.acquisitions.iter().sum::<u64>() > 0);
    assert_eq!(out.stats.sync.failed_attempts.iter().sum::<u64>(), 0);
}

#[test]
fn line_split_parallelizes_serial_big_arrays() {
    // Extension 1 (paper conclusions item 1): a chain of large reference
    // arrays with the chain edge last is serial at object granularity;
    // line-granularity claims recover near-bandwidth-limited scaling.
    use hwgc::heap::GraphBuilder;
    use hwgc_workloads::generators::{big_array_chain, GenStats};

    let build = || {
        let mut heap = Heap::new(16 * 1004 + 4096);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = GenStats::default();
        let head = big_array_chain(&mut b, 16, 1000, &mut s);
        b.root(head);
        heap
    };
    let run = |cfg: GcConfig| {
        let mut heap = build();
        let snapshot = Snapshot::capture(&heap);
        let out = SimCollector::new(cfg).collect(&mut heap);
        verify_collection(&heap, out.free, &snapshot).expect("correct collection");
        out
    };
    let obj_1 = run(GcConfig::with_cores(1)).stats.total_cycles;
    let obj_16 = run(GcConfig::with_cores(16)).stats.total_cycles;
    let split_16 = run(GcConfig {
        line_split: Some(128),
        ..GcConfig::with_cores(16)
    });
    assert!(
        (obj_1 as f64 / obj_16 as f64) < 1.3,
        "object granularity must stay serial: {obj_1} vs {obj_16}"
    );
    assert!(
        (obj_1 as f64 / split_16.stats.total_cycles as f64) > 3.0,
        "line splitting must parallelize: {obj_1} vs {}",
        split_16.stats.total_cycles
    );
    assert!(split_16.stats.chunks_claimed > split_16.stats.objects_copied);
}

#[test]
fn line_split_handles_pointer_rich_chunks() {
    // Chunks that land inside the pointer area must still translate every
    // slot; mixed pointer/data objects with a tiny line size stress the
    // chunk arithmetic.
    let spec = WorkloadSpec {
        preset: Preset::Db,
        seed: 5,
        scale: 0.1,
    };
    let mut heap = spec.build();
    let snapshot = Snapshot::capture(&heap);
    let cfg = GcConfig {
        line_split: Some(3),
        ..GcConfig::with_cores(7)
    };
    let out = SimCollector::new(cfg).collect(&mut heap);
    verify_collection(&heap, out.free, &snapshot).expect("correct collection");
    assert!(out.stats.chunks_claimed >= out.stats.objects_copied);
}

#[test]
fn concurrent_collection_is_correct_and_keeps_the_mutator_running() {
    // Extension 3: the mutator makes progress during the cycle; the heap
    // still verifies (mid-cycle allocations appear as extra black
    // objects).
    use hwgc::core::MutatorConfig;
    use hwgc::heap::{verify_collection_with, VerifyOptions};

    for preset in [Preset::Db, Preset::Javac, Preset::Compress] {
        let mut heap = spec(preset).build();
        let snapshot = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(4))
            .collect_concurrent(&mut heap, &MutatorConfig::default());
        verify_collection_with(
            &heap,
            out.free,
            &snapshot,
            VerifyOptions {
                allow_unknown_objects: true,
                ..VerifyOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert!(
            out.mutator.actions > 0,
            "{preset}: mutator made no progress"
        );
        assert!(
            out.mutator.utilization(out.stats.total_cycles) > 0.5,
            "{preset}: mutator utilization {:.2}",
            out.mutator.utilization(out.stats.total_cycles)
        );
        // All original live objects must still have been copied — by the
        // GC cores or by the mutator's read barrier.
        assert!(
            (out.stats.objects_copied + out.mutator.barrier_evacuations) as usize
                >= snapshot.live_objects(),
            "{preset}: {} + {} < {}",
            out.stats.objects_copied,
            out.mutator.barrier_evacuations,
            snapshot.live_objects()
        );
    }
}

#[test]
fn concurrent_mutator_triggers_the_read_barrier() {
    use hwgc::core::MutatorConfig;

    let mut heap = spec(Preset::Db).build();
    let out = SimCollector::new(GcConfig::with_cores(2))
        .collect_concurrent(&mut heap, &MutatorConfig::default());
    let m = &out.mutator;
    assert!(
        m.backlink_redirects + m.barrier_forwards + m.barrier_evacuations > 0,
        "a db-sized cycle must exercise the barrier: {m:?}"
    );
    assert!(m.allocations > 0);
}

#[test]
fn concurrent_allocations_survive_into_the_next_cycle() {
    use hwgc::core::MutatorConfig;

    let mut heap = spec(Preset::Javacc).build();
    let out = SimCollector::new(GcConfig::with_cores(4))
        .collect_concurrent(&mut heap, &MutatorConfig::default());
    let allocated = out.mutator.allocations;
    assert!(allocated > 0);
    // Next (stop-the-world) cycle: the allocated objects are rooted via
    // the register dump, so they must be copied again.
    let snapshot = Snapshot::capture(&heap);
    let out2 = SimCollector::new(GcConfig::with_cores(4)).collect(&mut heap);
    verify_collection(&heap, out2.free, &snapshot).expect("follow-up cycle correct");
}

#[test]
fn concurrent_collection_is_deterministic() {
    use hwgc::core::MutatorConfig;

    let run = || {
        let mut heap = spec(Preset::Cup).build();
        let out = SimCollector::new(GcConfig::with_cores(4))
            .collect_concurrent(&mut heap, &MutatorConfig::default());
        (out.stats.total_cycles, out.mutator.actions, out.free)
    };
    assert_eq!(run(), run());
}

#[test]
fn concurrent_mutator_pauses_stay_bounded() {
    // The paper's final future-work sentence: a fine-grained *parallel
    // and real-time* collector. With the read barrier, the worst mutator
    // pause must stay far below the prior work's couple-hundred-cycle
    // bound — nothing in the design makes the mutator wait longer than a
    // lock hold or one in-flight object copy.
    use hwgc::core::MutatorConfig;

    for preset in [Preset::Db, Preset::Cup, Preset::Javac] {
        let mut heap = spec(preset).build();
        let out = SimCollector::new(GcConfig::with_cores(8))
            .collect_concurrent(&mut heap, &MutatorConfig::default());
        assert!(
            out.mutator.max_pause_cycles < 200,
            "{preset}: worst mutator pause {} cycles",
            out.mutator.max_pause_cycles
        );
    }
}

#[test]
fn concurrent_read_only_mutator_preserves_strict_verification() {
    // With allocation and writes disabled the mutator only reads (through
    // the barrier); the collection must satisfy the *strict* verifier —
    // perfect compaction, exact live set, exact contents.
    use hwgc::core::MutatorConfig;

    let mut heap = spec(Preset::Javacc).build();
    let snapshot = Snapshot::capture(&heap);
    let mcfg = MutatorConfig {
        alloc_every: 0,
        write_every: 0,
        ..MutatorConfig::default()
    };
    let out = SimCollector::new(GcConfig::with_cores(4)).collect_concurrent(&mut heap, &mcfg);
    // Registers duplicate existing roots; drop them for the strict check.
    while heap.roots().len() > snapshot.root_ids.len() {
        heap.pop_root();
    }
    verify_collection(&heap, out.free, &snapshot).expect("read-only mutator must be invisible");
    assert_eq!(out.mutator.allocations, 0);
    assert_eq!(out.mutator.data_writes, 0);
    assert!(out.mutator.pointer_loads > 0);
}

#[test]
fn concurrent_collection_on_an_empty_heap_terminates() {
    use hwgc::core::MutatorConfig;

    let mut heap = Heap::new(4096);
    let out = SimCollector::new(GcConfig::with_cores(2))
        .collect_concurrent(&mut heap, &MutatorConfig::default());
    // Nothing to trace, nothing to read — but allocation still works.
    assert!(out.stats.objects_copied == 0);
    assert!(
        out.mutator.allocations <= 2,
        "empty heaps end almost immediately"
    );
}

#[test]
fn concurrent_composes_with_line_split() {
    use hwgc::core::MutatorConfig;
    use hwgc::heap::{verify_collection_with, VerifyOptions};

    let mut heap = spec(Preset::Db).build();
    let snapshot = Snapshot::capture(&heap);
    let cfg = GcConfig {
        line_split: Some(16),
        ..GcConfig::with_cores(6)
    };
    let out = SimCollector::new(cfg).collect_concurrent(&mut heap, &MutatorConfig::default());
    verify_collection_with(
        &heap,
        out.free,
        &snapshot,
        VerifyOptions {
            allow_unknown_objects: true,
            ..VerifyOptions::default()
        },
    )
    .expect("line-split + concurrent must verify");
    assert!(out.stats.chunks_claimed > out.stats.objects_copied);
}
