//! Cross-crate integration: the real-thread software collectors on the
//! benchmark presets, verified (strictly for the compacting fine-grained
//! collector, relaxed for the fragmenting baselines).

use hwgc::prelude::*;
use hwgc_heap::verify_collection_relaxed;
use hwgc_swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};
use hwgc_workloads::Preset;

fn scaled(preset: Preset) -> WorkloadSpec {
    WorkloadSpec {
        preset,
        seed: 11,
        scale: 0.15,
    }
}

fn check(collector: &dyn SwCollector, compacting: bool, preset: Preset, threads: usize) {
    let mut heap = scaled(preset).build();
    let snapshot = Snapshot::capture(&heap);
    let report = collector.collect(&mut heap, threads);
    let result = if compacting {
        verify_collection(&heap, report.free, &snapshot)
    } else {
        verify_collection_relaxed(&heap, report.free, &snapshot)
    };
    result.unwrap_or_else(|e| panic!("{} on {preset} with {threads} threads: {e}", report.name));
    assert_eq!(
        report.objects_copied as usize,
        snapshot.live_objects(),
        "{} on {preset}/{threads}",
        report.name
    );
    assert_eq!(
        report.words_copied, snapshot.live_words,
        "{} on {preset}/{threads}",
        report.name
    );
}

#[test]
fn fine_grained_on_all_presets() {
    for preset in Preset::ALL {
        for threads in [1, 2, 4] {
            check(&FineGrained::new(), true, preset, threads);
        }
    }
}

#[test]
fn work_stealing_on_all_presets() {
    for preset in Preset::ALL {
        for threads in [1, 2, 4] {
            check(&WorkStealing::new(), false, preset, threads);
        }
    }
}

#[test]
fn chunked_on_all_presets() {
    for preset in Preset::ALL {
        for threads in [1, 2, 4] {
            check(&Chunked::new(), false, preset, threads);
        }
    }
}

#[test]
fn packets_on_all_presets() {
    for preset in Preset::ALL {
        for threads in [1, 2, 4] {
            check(&Packets::new(), false, preset, threads);
        }
    }
}

#[test]
fn software_collectors_agree_on_live_volume() {
    let spec = scaled(Preset::Db);
    let collectors: Vec<(Box<dyn SwCollector>, bool)> = vec![
        (Box::new(FineGrained::new()), true),
        (Box::new(WorkStealing::new()), false),
        (Box::new(Chunked::new()), false),
        (Box::new(Packets::new()), false),
    ];
    let mut volumes = Vec::new();
    for (collector, _) in &collectors {
        let mut heap = spec.build();
        let report = collector.collect(&mut heap, 2);
        volumes.push((report.name, report.words_copied));
    }
    let first = volumes[0].1;
    for (name, v) in volumes {
        assert_eq!(v, first, "{name} copied a different live volume");
    }
}

#[test]
fn fine_grained_matches_hardware_compaction_layout_invariants() {
    // Both produce a perfectly compacted tospace of identical total size
    // (the object order may differ between collectors).
    let spec = scaled(Preset::Javacc);
    let mut h1 = spec.build();
    let hw = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);
    let mut h2 = spec.build();
    let sw = FineGrained::new().collect(&mut h2, 2);
    assert_eq!(hw.free, sw.free);
    assert_eq!(hw.stats.words_copied, sw.words_copied);
}

#[test]
fn fragmenting_collectors_report_consistent_accounting() {
    for (collector, name) in [
        (
            Box::new(WorkStealing::new()) as Box<dyn SwCollector>,
            "stealing",
        ),
        (Box::new(Chunked::new()), "chunked"),
        (Box::new(Packets::new()), "packets"),
    ] {
        let mut heap = scaled(Preset::Cup).build();
        let report = collector.collect(&mut heap, 3);
        assert_eq!(
            report.free as u64 - heap.to_base() as u64,
            report.words_copied + report.fragmentation_words,
            "{name}: consumed tospace must equal live + fragmentation"
        );
    }
}
