//! Property-based tests: arbitrary object graphs — including cycles,
//! self-loops, shared children, null slots and unreachable clusters — are
//! collected correctly by every collector, and the parallel collectors
//! always agree with the sequential reference.

use hwgc::prelude::*;
use hwgc_heap::verify_collection_relaxed;
use hwgc_swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};
use proptest::prelude::*;

/// Declarative graph description the strategies generate.
#[derive(Debug, Clone)]
struct GraphSpec {
    /// (pi, delta) per object; delta >= 1 for id stamping.
    shapes: Vec<(u32, u32)>,
    /// (source index, slot, target index); slot < source pi.
    edges: Vec<(usize, u32, usize)>,
    /// Indices of rooted objects.
    roots: Vec<usize>,
}

impl GraphSpec {
    fn build(&self) -> Heap {
        let words: u32 = self.shapes.iter().map(|&(p, d)| 2 + p + d).sum();
        // Slack for the fragmenting collectors' LAB/chunk waste.
        let mut heap = Heap::new(words + 4096);
        let mut b = GraphBuilder::new(&mut heap);
        let ids: Vec<_> = self
            .shapes
            .iter()
            .map(|&(p, d)| b.add(p, d).expect("sized exactly"))
            .collect();
        for &(src, slot, dst) in &self.edges {
            b.link(ids[src], slot, ids[dst]);
        }
        for &r in &self.roots {
            b.root(ids[r]);
        }
        heap
    }
}

fn graph_strategy(max_objects: usize) -> impl Strategy<Value = GraphSpec> {
    (1..max_objects)
        .prop_flat_map(|n| {
            let shapes = prop::collection::vec((0u32..5, 1u32..6), n);
            (Just(n), shapes)
        })
        .prop_flat_map(|(n, shapes)| {
            // Each pointer slot either stays null or picks a random target
            // (cycles, self-loops and sharing all arise naturally).
            let slots: Vec<(usize, u32)> = shapes
                .iter()
                .enumerate()
                .flat_map(|(i, &(pi, _))| (0..pi).map(move |s| (i, s)))
                .collect();
            let edges = slots
                .into_iter()
                .map(move |(src, slot)| {
                    prop::option::of(0..n).prop_map(move |t| t.map(|t| (src, slot, t)))
                })
                .collect::<Vec<_>>();
            let roots = prop::collection::vec(0..n, 0..4);
            (Just(shapes), edges, roots)
        })
        .prop_map(|(shapes, edges, roots)| GraphSpec {
            shapes,
            edges: edges.into_iter().flatten().collect(),
            roots,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn simulated_collector_is_correct_on_arbitrary_graphs(
        spec in graph_strategy(60),
        cores in 1usize..9,
    ) {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap);
        verify_collection(&heap, out.free, &snapshot).unwrap();
        prop_assert_eq!(out.stats.objects_copied as usize, snapshot.live_objects());
    }

    #[test]
    fn parallel_equals_sequential_on_arbitrary_graphs(spec in graph_strategy(60)) {
        let mut h_seq = spec.build();
        let seq = SeqCheney::new().collect(&mut h_seq);
        let mut h_par = spec.build();
        let par = SimCollector::new(GcConfig::with_cores(5)).collect(&mut h_par);
        prop_assert_eq!(seq.objects_copied, par.stats.objects_copied);
        prop_assert_eq!(seq.words_copied, par.stats.words_copied);
        prop_assert_eq!(seq.free, par.free);
    }

    #[test]
    fn fine_grained_software_is_correct_on_arbitrary_graphs(
        spec in graph_strategy(40),
        threads in 1usize..4,
    ) {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let report = FineGrained::new().collect(&mut heap, threads);
        verify_collection(&heap, report.free, &snapshot).unwrap();
    }

    #[test]
    fn fragmenting_collectors_are_correct_on_arbitrary_graphs(
        spec in graph_strategy(40),
        which in 0usize..3,
        threads in 1usize..4,
    ) {
        // Small buffers: the generated heaps are tiny, and default
        // 1024-word LABs / 2048-word chunks would out-size tospace.
        let collector: Box<dyn SwCollector> = match which {
            0 => Box::new(WorkStealing { lab_words: 64 }),
            1 => Box::new(Chunked { chunk_words: 64 }),
            _ => Box::new(Packets { packet_size: 8, lab_words: 64 }),
        };
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let report = collector.collect(&mut heap, threads);
        verify_collection_relaxed(&heap, report.free, &snapshot).unwrap();
        prop_assert_eq!(report.objects_copied as usize, snapshot.live_objects());
    }

    #[test]
    fn ablation_config_is_functionally_transparent(spec in graph_strategy(50)) {
        // test_before_lock and FIFO capacity may change timing, never
        // function.
        let collect = |cfg: GcConfig| {
            let mut heap = spec.build();
            let snapshot = Snapshot::capture(&heap);
            let out = SimCollector::new(cfg).collect(&mut heap);
            verify_collection(&heap, out.free, &snapshot).unwrap();
            out.stats.words_copied
        };
        let a = collect(GcConfig::with_cores(3));
        let b = collect(GcConfig { test_before_lock: true, ..GcConfig::with_cores(3) });
        let c = collect(GcConfig {
            mem: hwgc::memsim::MemConfig { header_fifo_capacity: 0, ..Default::default() },
            ..GcConfig::with_cores(3)
        });
        let d = collect(GcConfig { line_split: Some(2), ..GcConfig::with_cores(3) });
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
        prop_assert_eq!(a, d);
    }

    #[test]
    fn header_roundtrip_arbitrary_fields(pi in 0u32..=4095, delta in 0u32..=4095, link in 0u32..u32::MAX) {
        use hwgc::heap::{Color, Header};
        for color in [Color::White, Color::Gray, Color::Black] {
            let h = Header { pi, delta, color, marked: color == Color::White, link };
            let (w0, w1) = h.encode();
            prop_assert_eq!(Header::decode(w0, w1), h);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any legal arbitration order (fresh permutation of the core tick
    /// order every cycle) must produce the same functional result as the
    /// paper's static priority: the work done is schedule-independent
    /// even though the stall attribution is not.
    #[test]
    fn arbitration_order_is_functionally_irrelevant(
        spec in graph_strategy(50),
        seed in 1u64..u64::MAX,
        cores in 2usize..9,
    ) {
        let collect = |perm: Option<u64>| {
            let mut heap = spec.build();
            let snapshot = Snapshot::capture(&heap);
            let cfg = GcConfig { tick_permutation_seed: perm, ..GcConfig::with_cores(cores) };
            let out = SimCollector::new(cfg).collect(&mut heap);
            verify_collection(&heap, out.free, &snapshot).unwrap();
            (out.free, out.stats.objects_copied, out.stats.words_copied)
        };
        let a = collect(None);
        let b = collect(Some(seed));
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        // Compaction totals agree; the layout order may differ.
        prop_assert_eq!(a.0, b.0);
    }

    /// Line splitting composed with permuted arbitration and every preset
    /// knob still verifies.
    #[test]
    fn line_split_under_permuted_arbitration(
        spec in graph_strategy(40),
        seed in 1u64..u64::MAX,
        line in 1u32..10,
    ) {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let cfg = GcConfig {
            tick_permutation_seed: Some(seed),
            line_split: Some(line),
            test_before_lock: seed.is_multiple_of(2),
            ..GcConfig::with_cores(6)
        };
        let out = SimCollector::new(cfg).collect(&mut heap);
        verify_collection(&heap, out.free, &snapshot).unwrap();
    }
}

/// Named, deterministic re-runs of the shrunken cases recorded in
/// `proptest_graphs.proptest-regressions`, so the historical failures stay
/// covered even if the seed file is lost or the proptest dependency is
/// swapped out. Both shrank to the single-threaded chunked collector.
mod regressions {
    use super::*;

    fn chunked_single_thread_collects(spec: &GraphSpec) {
        let mut heap = spec.build();
        let snapshot = Snapshot::capture(&heap);
        let report = Chunked { chunk_words: 64 }.collect(&mut heap, 1);
        verify_collection_relaxed(&heap, report.free, &snapshot).unwrap();
        assert_eq!(report.objects_copied as usize, snapshot.live_objects());
    }

    /// Shrunk case `d7f40b0a…`: a rootless graph (everything is garbage)
    /// with self-loops and cross edges — exercises the chunked collector's
    /// empty-worklist path, where it must still terminate and report an
    /// empty tospace.
    #[test]
    fn chunked_single_thread_rootless_garbage_graph() {
        chunked_single_thread_collects(&GraphSpec {
            shapes: vec![
                (0, 1),
                (0, 2),
                (3, 4),
                (2, 3),
                (1, 3),
                (1, 4),
                (0, 5),
                (1, 1),
                (1, 4),
                (3, 4),
                (0, 2),
                (3, 1),
                (1, 4),
                (1, 1),
                (4, 4),
            ],
            edges: vec![
                (2, 0, 4),
                (3, 0, 9),
                (7, 0, 7),
                (8, 0, 8),
                (9, 0, 3),
                (9, 2, 12),
                (11, 0, 11),
                (11, 2, 0),
                (13, 0, 10),
                (14, 1, 9),
            ],
            roots: vec![],
        });
    }

    /// Shrunk case `70b82b29…`: one object rooted twice with no edges —
    /// the duplicate root must be evacuated exactly once and both root
    /// slots redirected to the same copy.
    #[test]
    fn chunked_single_thread_duplicate_roots() {
        chunked_single_thread_collects(&GraphSpec {
            shapes: vec![
                (0, 1),
                (0, 1),
                (3, 4),
                (4, 1),
                (4, 4),
                (1, 4),
                (0, 2),
                (2, 2),
            ],
            edges: vec![],
            roots: vec![6, 6],
        });
    }
}
