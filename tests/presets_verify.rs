//! Cross-crate integration: every benchmark preset collected by the
//! simulated coprocessor at every paper core count, verified against the
//! pre-collection snapshot and against the sequential reference.

use hwgc::prelude::*;
use hwgc_workloads::Preset;

fn scaled(preset: Preset) -> WorkloadSpec {
    // Smaller instances keep debug-mode test time reasonable while
    // exercising identical code paths.
    WorkloadSpec {
        preset,
        seed: 7,
        scale: 0.2,
    }
}

#[test]
fn every_preset_collects_correctly_at_every_core_count() {
    for preset in Preset::ALL {
        let spec = scaled(preset);
        for cores in [1usize, 2, 4, 16] {
            let mut heap = spec.build();
            let snapshot = Snapshot::capture(&heap);
            let out = SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap);
            verify_collection(&heap, out.free, &snapshot)
                .unwrap_or_else(|e| panic!("{preset} at {cores} cores: {e}"));
            assert_eq!(
                out.stats.objects_copied as usize,
                snapshot.live_objects(),
                "{preset} at {cores} cores copied the wrong object count"
            );
        }
    }
}

#[test]
fn parallel_work_equals_sequential_work() {
    for preset in Preset::ALL {
        let spec = scaled(preset);
        let mut seq_heap = spec.build();
        let seq = SeqCheney::new().collect(&mut seq_heap);
        for cores in [2usize, 8] {
            let mut heap = spec.build();
            let out = SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap);
            assert_eq!(
                seq.objects_copied, out.stats.objects_copied,
                "{preset}/{cores}"
            );
            assert_eq!(seq.words_copied, out.stats.words_copied, "{preset}/{cores}");
            assert_eq!(
                seq.free, out.free,
                "{preset}/{cores}: compaction frontier differs"
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for preset in [Preset::Db, Preset::Cup, Preset::Compress] {
        let spec = scaled(preset);
        let run = |cores: usize| {
            let mut heap = spec.build();
            SimCollector::new(GcConfig::with_cores(cores))
                .collect(&mut heap)
                .stats
                .total_cycles
        };
        for cores in [1, 4, 16] {
            assert_eq!(
                run(cores),
                run(cores),
                "{preset} at {cores} cores not deterministic"
            );
        }
    }
}

#[test]
fn adding_cores_never_corrupts_and_rarely_hurts() {
    // Monotonicity is not guaranteed in general (contention), but a
    // multi-core run must never be drastically slower than 1 core.
    for preset in Preset::ALL {
        let spec = scaled(preset);
        let mut h1 = spec.build();
        let base = SimCollector::new(GcConfig::with_cores(1))
            .collect(&mut h1)
            .stats
            .total_cycles;
        let mut h16 = spec.build();
        let par = SimCollector::new(GcConfig::with_cores(16))
            .collect(&mut h16)
            .stats
            .total_cycles;
        assert!(
            par <= base + base / 5,
            "{preset}: 16 cores took {par} cycles vs {base} at 1 core"
        );
    }
}

#[test]
fn consecutive_cycles_preserve_the_graph() {
    let spec = scaled(Preset::Javacc);
    let mut heap = spec.build();
    for cycle in 0..4 {
        let snapshot = Snapshot::capture(&heap);
        let out = SimCollector::new(GcConfig::with_cores(4)).collect(&mut heap);
        verify_collection(&heap, out.free, &snapshot)
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
    }
}

#[test]
fn garbage_volume_does_not_change_collection_work() {
    // Copying-collector property: cost is proportional to live data only.
    let lean = WorkloadSpec {
        preset: Preset::Jlisp,
        seed: 3,
        scale: 1.0,
    };
    let mut h1 = lean.build();
    let out1 = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h1);

    // Same graph, extra garbage appended.
    let mut h2 = lean.build();
    while h2.alloc(0, 16).is_some() {}
    let out2 = SimCollector::new(GcConfig::with_cores(4)).collect(&mut h2);
    assert_eq!(out1.stats.words_copied, out2.stats.words_copied);
    assert_eq!(out1.stats.total_cycles, out2.stats.total_cycles);
}

#[test]
fn steady_state_churn_across_many_cycles() {
    // Drive a heap through mutator churn and repeated collections; every
    // cycle must verify and the live set must stabilise well below the
    // semispace.
    use hwgc_workloads::{Churn, ChurnSpec, StepOutcome};

    let mut churn = Churn::new(ChurnSpec {
        semi_words: 24 * 1024,
        ..ChurnSpec::default()
    });
    let collector = SimCollector::new(GcConfig::with_cores(4));
    let mut cycles = 0;
    let mut last_live = 0;
    while cycles < 6 {
        match churn.step() {
            StepOutcome::Ok => {}
            StepOutcome::NeedsGc => {
                let snapshot = Snapshot::capture(churn.heap());
                let out = collector.collect(churn.heap_mut());
                verify_collection(churn.heap(), out.free, &snapshot)
                    .unwrap_or_else(|e| panic!("cycle {cycles}: {e}"));
                churn.gc_done();
                cycles += 1;
                last_live = out.stats.words_copied;
            }
        }
    }
    assert!(last_live > 0);
    assert!(last_live < 24 * 1024, "live set must fit the semispace");
}

#[test]
fn steady_state_churn_with_software_collectors() {
    use hwgc_heap::verify_collection_relaxed;
    use hwgc_swgc::{SwCollector, WorkStealing};
    use hwgc_workloads::{Churn, ChurnSpec, StepOutcome};

    let mut churn = Churn::new(ChurnSpec {
        semi_words: 24 * 1024,
        ..ChurnSpec::default()
    });
    let collector = WorkStealing::new();
    let mut cycles = 0;
    while cycles < 4 {
        match churn.step() {
            StepOutcome::Ok => {}
            StepOutcome::NeedsGc => {
                let snapshot = Snapshot::capture(churn.heap());
                let report = collector.collect(churn.heap_mut(), 2);
                verify_collection_relaxed(churn.heap(), report.free, &snapshot)
                    .unwrap_or_else(|e| panic!("cycle {cycles}: {e}"));
                churn.gc_done();
                cycles += 1;
            }
        }
    }
}
