//! Targeted scenarios pinning the core state machine's contention and
//! memory-path behaviours — the micro-level counterparts of Table II's
//! stall categories, each provoked deliberately on a purpose-built heap.

use hwgc::memsim::MemConfig;
use hwgc::prelude::*;

fn collect_cfg(heap: &mut Heap, cfg: GcConfig) -> GcOutcome {
    let snapshot = Snapshot::capture(heap);
    let out = SimCollector::new(cfg).collect(heap);
    hwgc::heap::verify_collection(heap, out.free, &snapshot).expect("correct collection");
    out
}

/// Many tiny objects and many cores: claims outnumber scan-lock capacity
/// and scan-lock stalls must appear.
#[test]
fn tiny_objects_contend_on_the_scan_lock() {
    let mut heap = Heap::new(64 * 1024);
    let mut b = GraphBuilder::new(&mut heap);
    // A bushy tree of minimal objects: the evacuation rate grows with the
    // core count, so claims outpace the scan lock's capacity. (A flat
    // fan-out would not work: its single producer throttles the claims.)
    let mut s = Default::default();
    let root = hwgc::workloads::generators::kary_tree(&mut b, 6, 4, 1, &mut s);
    b.root(root);
    let out = collect_cfg(&mut heap, GcConfig::with_cores(16));
    assert!(
        out.stats.stall.scan_lock > 0,
        "16 cores claiming 3-word tree nodes must queue at the scan lock"
    );
}

/// Two objects pointing at one shared child that takes a while to
/// evacuate: the header lock must serialize them, and exactly one
/// evacuation must happen.
#[test]
fn shared_child_is_evacuated_exactly_once_under_contention() {
    let mut heap = Heap::new(32 * 1024);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(64, 1).unwrap();
    let shared = b.add(0, 100).unwrap();
    // Many parents, all pointing at the same child, scanned concurrently.
    for slot in 0..64 {
        let parent = b.add(8, 1).unwrap();
        for ps in 0..8 {
            b.link(parent, ps, shared);
        }
        b.link(root, slot, parent);
    }
    b.root(root);
    let snapshot = Snapshot::capture(&heap);
    let out = collect_cfg(&mut heap, GcConfig::with_cores(8));
    assert_eq!(out.stats.objects_copied as usize, snapshot.live_objects());
    assert!(
        out.stats.stall.header_lock > 0,
        "512 concurrent references to one child must contend on its header lock"
    );
}

/// With the FIFO disabled, every scan-side header read goes to memory
/// inside the critical section: header-load stalls and scan-lock stalls
/// both rise against the default configuration.
#[test]
fn fifo_disabled_lengthens_the_critical_section() {
    let build = || {
        let mut heap = Heap::new(64 * 1024);
        let mut b = GraphBuilder::new(&mut heap);
        let root = b.add(1000, 1).unwrap();
        for slot in 0..1000 {
            let leaf = b.add(0, 4).unwrap();
            b.link(root, slot, leaf);
        }
        b.root(root);
        heap
    };
    let mut with_fifo = build();
    let a = collect_cfg(&mut with_fifo, GcConfig::with_cores(8));
    let mut without = build();
    let cfg = GcConfig {
        n_cores: 8,
        mem: MemConfig {
            header_fifo_capacity: 0,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    let b_ = collect_cfg(&mut without, cfg);
    assert!(b_.stats.total_cycles > a.stats.total_cycles);
    assert!(b_.stats.stall.scan_lock > a.stats.stall.scan_lock);
    assert_eq!(a.stats.fifo.overflows, 0, "1000 grays fit the default FIFO");
    assert!(b_.stats.fifo.overflows > 0);
}

/// A FIFO of capacity 1 forces the overflow path (second header store per
/// evacuation) on almost every object; header-store stalls must appear.
#[test]
fn fifo_overflow_costs_header_stores() {
    let mut heap = Heap::new(64 * 1024);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(500, 1).unwrap();
    for slot in 0..500 {
        let leaf = b.add(0, 2).unwrap();
        b.link(root, slot, leaf);
    }
    b.root(root);
    // One core: all 500 evacuations happen before any leaf is claimed,
    // so a 1-entry FIFO must overflow on nearly all of them. (With more
    // cores the consumers keep pace and even a tiny FIFO suffices — which
    // is itself part of the design's point.)
    let cfg = GcConfig {
        n_cores: 1,
        mem: MemConfig {
            header_fifo_capacity: 1,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    let out = collect_cfg(&mut heap, cfg);
    assert!(
        out.stats.fifo.overflows > 400,
        "overflows: {}",
        out.stats.fifo.overflows
    );
    assert!(
        out.stats.stall.header_store > 0,
        "overflowed gray headers must wait for the store buffer"
    );
}

/// Zero-bandwidth-pressure single object: the cycle count is exactly
/// reproducible and small — a regression pin on the microprogram's
/// per-object cost.
#[test]
fn single_object_cycle_cost_is_pinned() {
    let run = || {
        let mut heap = Heap::new(1024);
        let mut b = GraphBuilder::new(&mut heap);
        let root = b.add(0, 8).unwrap();
        b.root(root);
        collect_cfg(&mut heap, GcConfig::with_cores(1))
            .stats
            .total_cycles
    };
    let cycles = run();
    assert_eq!(cycles, run(), "deterministic");
    // Root phase (~latency+3) + claim + 8-word copy + blacken + drain.
    assert!(
        (10..60).contains(&cycles),
        "a single 10-word object should collect in tens of cycles, took {cycles}"
    );
}

/// Extra memory latency shows up as body-load stalls on a copy-heavy
/// object, and the total grows accordingly.
#[test]
fn latency_is_charged_to_body_loads() {
    let build = || {
        let mut heap = Heap::new(16 * 1024);
        let mut b = GraphBuilder::new(&mut heap);
        let root = b.add(1, 1).unwrap();
        let big = b.add(0, 2000).unwrap();
        b.link(root, 0, big);
        b.root(root);
        heap
    };
    let mut fast = build();
    let a = collect_cfg(&mut fast, GcConfig::with_cores(1));
    let cfg = GcConfig {
        n_cores: 1,
        mem: MemConfig::default().with_extra_latency(10),
        ..GcConfig::default()
    };
    let mut slow = build();
    let b_ = collect_cfg(&mut slow, cfg);
    assert!(b_.stats.total_cycles > a.stats.total_cycles);
    assert!(b_.stats.stall.body_load > a.stats.stall.body_load);
}

/// The spin counter (Table I's basis) attributes idle cores correctly:
/// one long object, many cores — the others spin, none of it counted as
/// a Table II stall.
#[test]
fn idle_cores_spin_rather_than_stall() {
    let mut heap = Heap::new(16 * 1024);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(0, 3000).unwrap();
    b.root(root);
    let out = collect_cfg(&mut heap, GcConfig::with_cores(8));
    assert!(
        out.stats.stall.empty_spin > 1000,
        "7 cores must spin for the whole copy"
    );
    assert_eq!(out.stats.stall.scan_lock, 0);
    assert!(out.stats.empty_worklist_fraction() > 0.9);
}

/// chunks_claimed accounting: splitting a single large object into L-word
/// claims yields exactly ceil(body/L) claims.
#[test]
fn split_claim_count_is_exact() {
    let mut heap = Heap::new(16 * 1024);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(0, 1000).unwrap();
    b.root(root);
    let cfg = GcConfig {
        line_split: Some(64),
        ..GcConfig::with_cores(4)
    };
    let out = collect_cfg(&mut heap, cfg);
    // body = 1000 words, ceil(1000/64) = 16 claims.
    assert_eq!(out.stats.chunks_claimed, 16);
    assert_eq!(out.stats.objects_copied, 1);
}
