//! Cross-crate integration of the `hwgc-check` harness: the schedule
//! sweep, trace lint and differential oracle applied to the benchmark
//! preset workloads (not just the harness's own adversarial shapes).

use hwgc_check::{differential, lint_trace, run_sweep, PolicyKind, SweepConfig};
use hwgc_core::schedule::RandomOrder;
use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_workloads::{Preset, WorkloadSpec};

fn small(preset: Preset) -> hwgc_heap::Heap {
    WorkloadSpec {
        preset,
        seed: 23,
        scale: 0.05,
    }
    .build()
}

#[test]
fn preset_workloads_survive_a_schedule_sweep() {
    let cfg = SweepConfig {
        core_counts: vec![4, 16],
        seeds: vec![0xA11CE, 0xB0B],
        policies: vec![PolicyKind::Random, PolicyKind::Adversarial],
        lint: false,
    };
    for preset in [Preset::Db, Preset::Javac] {
        let outcome = run_sweep(&|| small(preset), &cfg);
        assert_eq!(outcome.combos, cfg.combos(), "{preset}");
    }
}

#[test]
fn preset_collection_traces_lint_clean() {
    let mut heap = small(Preset::Jlisp);
    let mut trace = SignalTrace::with_events(16);
    let mut policy = RandomOrder::new(99);
    SimCollector::new(GcConfig::with_cores(8)).collect_scheduled_traced(
        &mut heap,
        &mut policy,
        &mut trace,
    );
    let violations = lint_trace(&trace);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn preset_workload_passes_the_differential_oracle() {
    let heap = small(Preset::Cup);
    differential("preset/cup", &heap);
}
