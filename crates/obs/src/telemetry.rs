//! Fleet telemetry for sweep execution: a [`SweepProgress`] reporter
//! that turns a silent fan-out (`par_map` over dozens of simulations)
//! into periodic stderr progress lines and a machine-readable
//! [`TELEMETRY_SCHEMA`] JSONL stream.
//!
//! The stream carries four line kinds:
//!
//! * `start` — sweep label and total job count;
//! * `job` — one per completed job: label, outcome
//!   (hit / miss / verify_ok / digest_check), host nanoseconds, and the
//!   running done/hit/miss counters at completion time;
//! * `workers` — fleet gauges from the work-stealing coordinator:
//!   jobs currently in flight across worker processes, the cumulative
//!   steal count, and the monotone ETA (see [`SweepProgress::fleet`]);
//! * `summary` — final counters, hit rate, total host time, steal
//!   count, and the slowest-job watermarks.
//!
//! Everything in the stream except the counters is **host data** (wall
//! clocks, ETAs) and therefore nondeterministic — the stream is an
//! operator aid and a CI artifact, never a golden file. The deterministic
//! artifacts a sweep produces (ledger records, reports) stay byte-stable
//! regardless of telemetry being on or off.
//!
//! Multiple processes may share one stream file (`reproduce_all` forwards
//! the path to its children): lines are appended with a single `writeln!`
//! each under `O_APPEND`, so concurrent writers interleave whole lines.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// JSON schema tag of every telemetry line.
pub const TELEMETRY_SCHEMA: &str = "hwgc-sweep-telemetry-v1";

/// How many slowest-job watermarks the summary keeps.
const WATERMARKS: usize = 3;

/// Minimum milliseconds between throttled stderr progress lines.
const STDERR_THROTTLE_MS: u64 = 500;

/// How a sweep job was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Result served from the content-addressed cache; simulation skipped.
    Hit,
    /// Simulated (no usable cache record).
    Miss,
    /// Cache hit re-simulated under `HWGC_CACHE=verify`; digests agreed.
    VerifyOk,
    /// Simulated, then cross-checked against a digest-only ledger record
    /// (a payload-less hit).
    DigestCheck,
}

impl JobOutcome {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobOutcome::Hit => "hit",
            JobOutcome::Miss => "miss",
            JobOutcome::VerifyOk => "verify_ok",
            JobOutcome::DigestCheck => "digest_check",
        }
    }

    fn from_label(s: &str) -> Option<JobOutcome> {
        Some(match s {
            "hit" => JobOutcome::Hit,
            "miss" => JobOutcome::Miss,
            "verify_ok" => JobOutcome::VerifyOk,
            "digest_check" => JobOutcome::DigestCheck,
            _ => return None,
        })
    }
}

/// Final counters of a sweep, as rendered into the `summary` line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSummary {
    /// Sweep label.
    pub sweep: String,
    /// Jobs completed.
    pub done: usize,
    /// Jobs announced up front (0 when unknown).
    pub total: usize,
    /// Cache hits (simulation skipped).
    pub hits: usize,
    /// Simulated jobs.
    pub misses: usize,
    /// Verify-mode re-simulations that agreed.
    pub verified: usize,
    /// Post-run digest cross-checks against payload-less records.
    pub digest_checks: usize,
    /// Total host nanoseconds across jobs.
    pub host_ns: u64,
    /// Jobs stolen between worker queues (multi-process sweeps only;
    /// 0 for in-process execution).
    pub steals: u64,
    /// Slowest jobs, worst first: `(host_ns, label)`.
    pub slowest: Vec<(u64, String)>,
}

impl SweepSummary {
    /// Fraction of jobs that skipped simulation entirely.
    pub fn hit_rate(&self) -> f64 {
        if self.done == 0 {
            0.0
        } else {
            self.hits as f64 / self.done as f64
        }
    }
}

/// Live progress reporter for one sweep. Thread-safe: `job` may be
/// called concurrently from `par_map` workers.
pub struct SweepProgress {
    sweep: String,
    total: usize,
    started: Instant,
    done: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    verified: AtomicUsize,
    digest_checks: AtomicUsize,
    host_ns: AtomicU64,
    in_flight: AtomicUsize,
    steals: AtomicU64,
    /// Projected finish instant in elapsed-ms, clamped non-increasing
    /// (`u64::MAX` = no estimate yet). This is what keeps the ETA
    /// monotone under work-stealing: a queue rebalance can shuffle
    /// *which* worker runs the tail, never add work, so a later
    /// projection than the stored one is noise and is discarded.
    eta_finish_ms: AtomicU64,
    last_stderr_ms: AtomicU64,
    quiet: bool,
    slowest: Mutex<Vec<(u64, String)>>,
    stream: Mutex<Option<std::fs::File>>,
}

impl SweepProgress {
    /// A reporter for `total` jobs of sweep `sweep` (pass 0 when the job
    /// count is open-ended). `stream` is the shared telemetry JSONL file
    /// (`None` keeps telemetry stderr-only); `quiet` suppresses the
    /// throttled stderr lines (the JSONL stream is unaffected).
    pub fn new(sweep: &str, total: usize, stream: Option<&Path>, quiet: bool) -> SweepProgress {
        let file = stream.and_then(|path| {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
        });
        let progress = SweepProgress {
            sweep: sweep.to_string(),
            total,
            started: Instant::now(),
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            verified: AtomicUsize::new(0),
            digest_checks: AtomicUsize::new(0),
            host_ns: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            eta_finish_ms: AtomicU64::new(u64::MAX),
            last_stderr_ms: AtomicU64::new(0),
            quiet,
            slowest: Mutex::new(Vec::new()),
            stream: Mutex::new(file),
        };
        progress.emit(Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(TELEMETRY_SCHEMA.to_string()),
            ),
            ("kind".to_string(), Json::Str("start".to_string())),
            ("sweep".to_string(), Json::Str(sweep.to_string())),
            ("total".to_string(), Json::Int(total as i128)),
        ]));
        progress
    }

    /// Record one completed job. `host_ns` is the job's wall time on the
    /// host (0 is fine for instantaneous cache hits).
    pub fn job(&self, label: &str, outcome: JobOutcome, host_ns: u64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let counter = match outcome {
            JobOutcome::Hit => &self.hits,
            JobOutcome::Miss => &self.misses,
            JobOutcome::VerifyOk => &self.verified,
            JobOutcome::DigestCheck => &self.digest_checks,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.host_ns.fetch_add(host_ns, Ordering::Relaxed);
        {
            let mut slowest = self.slowest.lock().unwrap();
            slowest.push((host_ns, label.to_string()));
            slowest.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            slowest.truncate(WATERMARKS);
        }
        self.emit(Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(TELEMETRY_SCHEMA.to_string()),
            ),
            ("kind".to_string(), Json::Str("job".to_string())),
            ("sweep".to_string(), Json::Str(self.sweep.clone())),
            ("job".to_string(), Json::Str(label.to_string())),
            (
                "outcome".to_string(),
                Json::Str(outcome.label().to_string()),
            ),
            ("done".to_string(), Json::Int(done as i128)),
            ("total".to_string(), Json::Int(self.total as i128)),
            ("host_ns".to_string(), Json::Int(i128::from(host_ns))),
        ]));
        self.maybe_stderr(done);
    }

    /// Update the work-stealing fleet gauges and emit a `workers` line.
    /// The multi-process coordinator calls this whenever a worker picks
    /// up or finishes a job and whenever a queue steal happens:
    /// `in_flight` is the number of jobs executing across workers right
    /// now, `steals` the cumulative cross-queue steal count. In-process
    /// sweeps never call it and their streams carry no `workers` lines.
    pub fn fleet(&self, in_flight: usize, steals: u64) {
        self.in_flight.store(in_flight, Ordering::Relaxed);
        self.steals.store(steals, Ordering::Relaxed);
        let mut fields = vec![
            (
                "schema".to_string(),
                Json::Str(TELEMETRY_SCHEMA.to_string()),
            ),
            ("kind".to_string(), Json::Str("workers".to_string())),
            ("sweep".to_string(), Json::Str(self.sweep.clone())),
            (
                "done".to_string(),
                Json::Int(self.done.load(Ordering::Relaxed) as i128),
            ),
            ("in_flight".to_string(), Json::Int(in_flight as i128)),
            ("steals".to_string(), Json::Int(i128::from(steals))),
        ];
        fields.push((
            "eta_ms".to_string(),
            self.eta_ms()
                .map_or(Json::Null, |ms| Json::Int(i128::from(ms))),
        ));
        self.emit(Json::Obj(fields));
    }

    /// Monotone time-to-finish estimate in milliseconds; `None` until
    /// the first job completes (or for open-ended/finished sweeps).
    ///
    /// The raw estimate is mean-per-job × remaining, with each
    /// in-flight job counted as half done — without that, a steal burst
    /// (several workers picking up fresh jobs at once) inflates
    /// "remaining" and the naive ETA jumps backwards. The projected
    /// *finish instant* is additionally clamped to never move later
    /// than any previous projection, so the countdown a user watches is
    /// non-increasing (it bottoms out at 0 when a projection is
    /// overdue, never resurges).
    pub fn eta_ms(&self) -> Option<u64> {
        let done = self.done.load(Ordering::Relaxed);
        if done == 0 || self.total == 0 || done >= self.total {
            return None;
        }
        let now_ms = self.started.elapsed().as_millis() as u64;
        let remaining = (self.total - done) as f64;
        let in_flight = (self.in_flight.load(Ordering::Relaxed) as f64).min(remaining);
        let per_job = now_ms as f64 / done as f64;
        let raw_finish = now_ms + (per_job * (remaining - 0.5 * in_flight)) as u64;
        let mut prev = self.eta_finish_ms.load(Ordering::Relaxed);
        loop {
            let clamped = raw_finish.min(prev);
            match self.eta_finish_ms.compare_exchange_weak(
                prev,
                clamped,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(clamped.saturating_sub(now_ms)),
                Err(p) => prev = p,
            }
        }
    }

    /// Counters so far (also the shape of the final summary line).
    pub fn snapshot(&self) -> SweepSummary {
        SweepSummary {
            sweep: self.sweep.clone(),
            done: self.done.load(Ordering::Relaxed),
            total: self.total,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            digest_checks: self.digest_checks.load(Ordering::Relaxed),
            host_ns: self.host_ns.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            slowest: self.slowest.lock().unwrap().clone(),
        }
    }

    /// Emit the `summary` line (and a final stderr line) and return the
    /// final counters.
    pub fn finish(&self) -> SweepSummary {
        let s = self.snapshot();
        let slowest = Json::Arr(
            s.slowest
                .iter()
                .map(|(ns, label)| {
                    Json::Obj(vec![
                        ("job".to_string(), Json::Str(label.clone())),
                        ("host_ns".to_string(), Json::Int(i128::from(*ns))),
                    ])
                })
                .collect(),
        );
        self.emit(Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(TELEMETRY_SCHEMA.to_string()),
            ),
            ("kind".to_string(), Json::Str("summary".to_string())),
            ("sweep".to_string(), Json::Str(s.sweep.clone())),
            ("done".to_string(), Json::Int(s.done as i128)),
            ("total".to_string(), Json::Int(s.total as i128)),
            ("hits".to_string(), Json::Int(s.hits as i128)),
            ("misses".to_string(), Json::Int(s.misses as i128)),
            ("verified".to_string(), Json::Int(s.verified as i128)),
            (
                "digest_checks".to_string(),
                Json::Int(s.digest_checks as i128),
            ),
            ("hit_rate".to_string(), Json::Float(s.hit_rate())),
            ("host_ns".to_string(), Json::Int(i128::from(s.host_ns))),
            ("steals".to_string(), Json::Int(i128::from(s.steals))),
            ("slowest".to_string(), slowest),
        ]));
        if !self.quiet {
            eprintln!(
                "[{}] done {}/{} — {} hit / {} miss / {} verified / {} checked \
                 ({:.0}% hit rate, {:.1}s)",
                s.sweep,
                s.done,
                if s.total == 0 { s.done } else { s.total },
                s.hits,
                s.misses,
                s.verified,
                s.digest_checks,
                100.0 * s.hit_rate(),
                self.started.elapsed().as_secs_f64(),
            );
        }
        s
    }

    fn emit(&self, line: Json) {
        if let Some(f) = self.stream.lock().unwrap().as_mut() {
            let _ = writeln!(f, "{}", line.to_string_compact());
        }
    }

    fn maybe_stderr(&self, done: usize) {
        if self.quiet {
            return;
        }
        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_stderr_ms.load(Ordering::Relaxed);
        let final_job = self.total != 0 && done == self.total;
        if !final_job && now_ms.saturating_sub(last) < STDERR_THROTTLE_MS {
            return;
        }
        if self
            .last_stderr_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !final_job
        {
            return; // another worker just printed
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let eta = match self.eta_ms() {
            Some(ms) => format!(", eta {:.0}s", ms as f64 / 1000.0),
            None => String::new(),
        };
        if self.total == 0 {
            eprintln!("[{}] {done} jobs done ({hits} cached{eta})", self.sweep);
        } else {
            eprintln!(
                "[{}] {done}/{} jobs done ({hits} cached{eta})",
                self.sweep, self.total
            );
        }
    }
}

/// Validate a [`TELEMETRY_SCHEMA`] JSONL stream and aggregate it: every
/// line must carry the schema tag and a known `kind`, `job` lines must
/// carry a known outcome, and the returned totals sum the job lines
/// across all sweeps in the stream (a `reproduce_all` stream holds one
/// sweep per child process).
pub fn validate_telemetry_jsonl(text: &str) -> Result<SweepSummary, String> {
    let mut totals = SweepSummary {
        sweep: "(aggregate)".to_string(),
        ..SweepSummary::default()
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        if v.get("schema").and_then(Json::as_str) != Some(TELEMETRY_SCHEMA) {
            return Err(format!("line {n}: schema is not {TELEMETRY_SCHEMA}"));
        }
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing `kind`"))?;
        match kind {
            "start" => {
                let total = v
                    .get("total")
                    .and_then(Json::as_int)
                    .ok_or_else(|| format!("line {n}: start without `total`"))?;
                totals.total +=
                    usize::try_from(total).map_err(|_| format!("line {n}: negative `total`"))?;
            }
            "job" => {
                let outcome = v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .and_then(JobOutcome::from_label)
                    .ok_or_else(|| format!("line {n}: job without a known `outcome`"))?;
                totals.done += 1;
                match outcome {
                    JobOutcome::Hit => totals.hits += 1,
                    JobOutcome::Miss => totals.misses += 1,
                    JobOutcome::VerifyOk => totals.verified += 1,
                    JobOutcome::DigestCheck => totals.digest_checks += 1,
                }
                let ns = v
                    .get("host_ns")
                    .and_then(Json::as_int)
                    .ok_or_else(|| format!("line {n}: job without `host_ns`"))?;
                totals.host_ns +=
                    u64::try_from(ns).map_err(|_| format!("line {n}: negative `host_ns`"))?;
            }
            "workers" => {
                // Fleet gauges are instantaneous host data; validate the
                // required fields and keep the high-water steal count.
                let steals = v
                    .get("steals")
                    .and_then(Json::as_int)
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| format!("line {n}: workers without `steals`"))?;
                v.get("in_flight")
                    .and_then(Json::as_int)
                    .ok_or_else(|| format!("line {n}: workers without `in_flight`"))?;
                totals.steals = totals.steals.max(steals);
            }
            "summary" => {
                // Summaries restate counters; watermarks are aggregated.
                if let Some(Json::Arr(slowest)) = v.get("slowest") {
                    for entry in slowest {
                        let label = entry
                            .get("job")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_string();
                        let ns = entry
                            .get("host_ns")
                            .and_then(Json::as_int)
                            .and_then(|i| u64::try_from(i).ok())
                            .unwrap_or(0);
                        totals.slowest.push((ns, label));
                    }
                    totals
                        .slowest
                        .sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                    totals.slowest.truncate(WATERMARKS);
                }
            }
            other => return Err(format!("line {n}: unknown kind `{other}`")),
        }
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_round_trips_through_the_validator() {
        let dir = std::env::temp_dir().join("hwgc_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let _ = std::fs::remove_file(&path);
        let progress = SweepProgress::new("unit", 3, Some(path.as_path()), true);
        progress.job("a", JobOutcome::Hit, 0);
        progress.job("b", JobOutcome::Miss, 2_000);
        progress.job("c", JobOutcome::VerifyOk, 1_000);
        let summary = progress.finish();
        assert_eq!(summary.done, 3);
        assert_eq!((summary.hits, summary.misses, summary.verified), (1, 1, 1));
        assert!((summary.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(summary.slowest[0], (2_000, "b".to_string()));

        let text = std::fs::read_to_string(&path).unwrap();
        let totals = validate_telemetry_jsonl(&text).unwrap();
        assert_eq!(totals.done, 3);
        assert_eq!(totals.total, 3);
        assert_eq!(totals.hits, 1);
        assert_eq!(totals.host_ns, 3_000);
        assert_eq!(totals.slowest[0], (2_000, "b".to_string()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_jobs_count_exactly_once() {
        let progress = SweepProgress::new("threads", 64, None, true);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let progress = &progress;
                scope.spawn(move || {
                    for j in 0..8 {
                        let outcome = if (t + j) % 2 == 0 {
                            JobOutcome::Hit
                        } else {
                            JobOutcome::Miss
                        };
                        progress.job(&format!("t{t}j{j}"), outcome, 10);
                    }
                });
            }
        });
        let s = progress.snapshot();
        assert_eq!(s.done, 64);
        assert_eq!(s.hits + s.misses, 64);
        assert_eq!(s.hits, 32);
        assert_eq!(s.host_ns, 640);
    }

    #[test]
    fn eta_is_monotone_under_stealing_bursts() {
        let progress = SweepProgress::new("eta", 100, None, true);
        assert_eq!(progress.eta_ms(), None, "no estimate before the first job");
        let mut last_eta = u64::MAX;
        for i in 0..60 {
            progress.job(&format!("j{i}"), JobOutcome::Miss, 1_000);
            // A steal burst: several workers pick up fresh jobs at once.
            // The naive per-job extrapolation would wobble; the clamped
            // countdown must never resurge.
            progress.fleet(if i % 7 == 0 { 4 } else { 1 }, i / 7);
            let eta = progress.eta_ms().expect("estimate after first job");
            assert!(
                eta <= last_eta,
                "job {i}: countdown resurged ({eta} > {last_eta})"
            );
            last_eta = eta;
        }
        let s = progress.snapshot();
        assert_eq!(s.steals, 59 / 7);
    }

    #[test]
    fn workers_lines_validate_and_aggregate_steals() {
        let dir = std::env::temp_dir().join("hwgc_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workers.jsonl");
        let _ = std::fs::remove_file(&path);
        let progress = SweepProgress::new("fleet", 2, Some(path.as_path()), true);
        progress.job("a", JobOutcome::Miss, 100);
        progress.fleet(1, 3);
        progress.job("b", JobOutcome::Miss, 100);
        progress.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"workers\""));
        let totals = validate_telemetry_jsonl(&text).unwrap();
        assert_eq!(totals.done, 2);
        assert_eq!(totals.steals, 3);
        let _ = std::fs::remove_file(&path);

        let err = validate_telemetry_jsonl(
            "{\"schema\":\"hwgc-sweep-telemetry-v1\",\"kind\":\"workers\"}\n",
        )
        .unwrap_err();
        assert!(err.contains("steals"), "{err}");
    }

    #[test]
    fn validator_rejects_foreign_and_malformed_lines() {
        let err = validate_telemetry_jsonl("{\"schema\":\"nope\"}\n").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let err = validate_telemetry_jsonl(
            "{\"schema\":\"hwgc-sweep-telemetry-v1\",\"kind\":\"job\",\"outcome\":\"warp\"}\n",
        )
        .unwrap_err();
        assert!(err.contains("outcome"), "{err}");
        let err = validate_telemetry_jsonl("not json\n").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn multi_process_streams_aggregate() {
        // Two sweeps interleaved in one stream, as reproduce_all children
        // produce under O_APPEND.
        let a = SweepProgress::new("a", 0, None, true); // just for shape
        drop(a);
        let mut text = String::new();
        for (sweep, outcome) in [("s1", "miss"), ("s2", "hit"), ("s1", "hit")] {
            text.push_str(&format!(
                "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"kind\":\"job\",\"sweep\":\"{sweep}\",\
                 \"job\":\"x\",\"outcome\":\"{outcome}\",\"done\":1,\"total\":1,\"host_ns\":5}}\n"
            ));
        }
        let totals = validate_telemetry_jsonl(&text).unwrap();
        assert_eq!(totals.done, 3);
        assert_eq!(totals.hits, 2);
        assert_eq!(totals.misses, 1);
        assert!((totals.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
