//! Chrome trace-event / Perfetto JSON exporter.
//!
//! [`chrome_trace_json`] converts a [`Recording`] into the Chrome
//! trace-event format (the JSON flavor), loadable by `ui.perfetto.dev`
//! and `chrome://tracing`:
//!
//! * one **slice track per GC core** (`core0`…`coreN`), built from
//!   [`OwnedEvent::CoreState`] transitions — each microprogram state
//!   becomes a complete (`ph:"X"`) slice;
//! * one **counter track per memory port kind** (`port.HeaderLoad` …
//!   `port.BodyStore`), built from the bridged memory-system log — the
//!   number of occupied buffers of that kind over time;
//! * counter tracks for the header-FIFO occupancy, the gray worklist and
//!   the busy-core count (from `FifoDepth`/`Sample` events);
//! * `ph:"B"`/`"E"` spans for engine phases and `ph:"i"` instants for
//!   software-collector events.
//!
//! Timestamps are simulated cycles, written as integer microseconds (one
//! cycle = 1 µs on the viewer's axis). Events are sorted by timestamp, so
//! [`validate_chrome_trace`] can insist on monotonicity.

use crate::event::OwnedEvent;
use crate::json::Json;
use crate::probe::Recording;
use hwgc_memsim::{MemEvent, Port, RowOutcome, PORT_COUNT};

/// Run context the exporters need but the event stream does not carry.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Workload / preset name (free-form label).
    pub name: String,
    /// Number of GC cores in the run.
    pub n_cores: usize,
    /// Final cycle count ([`GcStats::total_cycles`]-equivalent); closes
    /// the still-open core slices.
    pub total_cycles: u64,
}

/// What [`validate_chrome_trace`] measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total trace events (metadata included).
    pub events: usize,
    /// Distinct core slice tracks seen.
    pub core_tracks: usize,
    /// Distinct memory-port counter tracks seen.
    pub port_tracks: usize,
    /// Largest timestamp in the trace.
    pub max_ts: u64,
}

const ENGINE_TID: i128 = 0;

fn core_tid(core: u32) -> i128 {
    1 + core as i128
}

fn ev(name: &str, ph: &str, ts: u64, tid: i128, extra: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), Json::Int(ts as i128)),
        ("pid".to_string(), Json::Int(0)),
        ("tid".to_string(), Json::Int(tid)),
    ];
    fields.extend(extra);
    Json::Obj(fields)
}

fn counter(name: &str, ts: u64, value: u64) -> Json {
    ev(
        name,
        "C",
        ts,
        ENGINE_TID,
        vec![(
            "args".to_string(),
            Json::Obj(vec![("value".to_string(), Json::Int(value as i128))]),
        )],
    )
}

fn thread_name(tid: i128, name: &str) -> Json {
    ev(
        "thread_name",
        "M",
        0,
        tid,
        vec![(
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        )],
    )
}

/// Row-outcome counter track name (`dram.row_hits` …), cumulative over
/// the run so the viewer's slope is the instantaneous rate.
pub fn row_outcome_track_name(outcome: RowOutcome) -> &'static str {
    match outcome {
        RowOutcome::Hit => "dram.row_hits",
        RowOutcome::Empty => "dram.row_empties",
        RowOutcome::Conflict => "dram.row_conflicts",
    }
}

/// Port kind display name (`port.HeaderLoad` …).
pub fn port_track_name(port: Port) -> &'static str {
    match port {
        Port::HeaderLoad => "port.HeaderLoad",
        Port::HeaderStore => "port.HeaderStore",
        Port::BodyLoad => "port.BodyLoad",
        Port::BodyStore => "port.BodyStore",
    }
}

/// Render a recording as Chrome trace-event JSON (compact, one line).
pub fn chrome_trace_json(recording: &Recording, meta: &RunMeta) -> String {
    let mut events: Vec<Json> = Vec::new();

    // Track-naming metadata.
    events.push(ev(
        "process_name",
        "M",
        0,
        ENGINE_TID,
        vec![(
            "args".to_string(),
            Json::Obj(vec![(
                "name".to_string(),
                Json::Str(format!("hwgc-sim:{}", meta.name)),
            )]),
        )],
    ));
    events.push(thread_name(ENGINE_TID, "engine"));
    for core in 0..meta.n_cores {
        events.push(thread_name(core_tid(core as u32), &format!("core{core}")));
    }

    // Core slices: open at each CoreState transition, close at the next
    // (or at total_cycles).
    let mut open: Vec<Option<(u64, &'static str)>> = vec![None; meta.n_cores];
    // Per-port-kind occupied-buffer counts (summed across cores).
    let mut port_occ = [0u64; PORT_COUNT];
    let mut port_seen = [false; PORT_COUNT];
    // Cumulative row-buffer outcome counts (DRAM backend only; the
    // tracks appear only when `DramAccess` events are present).
    let mut row_outcomes = [0u64; 3];

    for &(ts, ref event) in &recording.events {
        match *event {
            OwnedEvent::Phase { name, begin } => {
                events.push(ev(
                    name,
                    if begin { "B" } else { "E" },
                    ts,
                    ENGINE_TID,
                    vec![],
                ));
            }
            OwnedEvent::CoreState { core, name, .. } => {
                let slot = core as usize;
                if slot >= open.len() {
                    open.resize(slot + 1, None);
                }
                if let Some((start, prev)) = open[slot].take() {
                    events.push(ev(
                        prev,
                        "X",
                        start,
                        core_tid(core),
                        vec![(
                            "dur".to_string(),
                            Json::Int(ts.saturating_sub(start) as i128),
                        )],
                    ));
                }
                open[slot] = Some((ts, name));
            }
            OwnedEvent::WorklistClaim { core, from, to } => {
                events.push(ev(
                    "claim",
                    "i",
                    ts,
                    core_tid(core),
                    vec![
                        ("s".to_string(), Json::Str("t".to_string())),
                        (
                            "args".to_string(),
                            Json::Obj(vec![
                                ("from".to_string(), Json::Int(from as i128)),
                                ("to".to_string(), Json::Int(to as i128)),
                            ]),
                        ),
                    ],
                ));
            }
            OwnedEvent::FifoDepth { depth } => {
                events.push(counter("fifo.occupancy", ts, depth as u64));
            }
            OwnedEvent::Sample {
                gray_words,
                busy_cores,
                queue_depth,
                ..
            } => {
                events.push(counter("worklist.gray_words", ts, gray_words as u64));
                events.push(counter("cores.busy", ts, busy_cores as u64));
                events.push(counter("dram.queue_depth", ts, queue_depth as u64));
            }
            OwnedEvent::Sb(_) => {
                // The SB stream is consumed by the metrics deriver; as
                // slices it would drown the core tracks.
            }
            OwnedEvent::Mem(rec) => {
                if let MemEvent::DramAccess { outcome, .. } = rec.event {
                    let slot = match outcome {
                        RowOutcome::Hit => 0,
                        RowOutcome::Empty => 1,
                        RowOutcome::Conflict => 2,
                    };
                    row_outcomes[slot] += 1;
                    events.push(counter(
                        row_outcome_track_name(outcome),
                        rec.cycle,
                        row_outcomes[slot],
                    ));
                }
                let delta: Option<(Port, i64)> = match rec.event {
                    MemEvent::Issue { port, .. } => Some((port, 1)),
                    // Loads free the buffer at Consume, stores at Retire.
                    MemEvent::Consume { port, .. } => Some((port, -1)),
                    MemEvent::Retire { port, .. } if !port.is_load() => Some((port, -1)),
                    _ => None,
                };
                if let Some((port, d)) = delta {
                    let idx = port as usize;
                    port_occ[idx] = port_occ[idx].saturating_add_signed(d);
                    port_seen[idx] = true;
                    events.push(counter(port_track_name(port), rec.cycle, port_occ[idx]));
                }
            }
            OwnedEvent::Steal {
                thief,
                victim,
                success,
            } => {
                events.push(ev(
                    if success { "steal.hit" } else { "steal.miss" },
                    "i",
                    ts,
                    core_tid(thief),
                    vec![
                        ("s".to_string(), Json::Str("t".to_string())),
                        (
                            "args".to_string(),
                            Json::Obj(vec![("victim".to_string(), Json::Int(victim as i128))]),
                        ),
                    ],
                ));
            }
            OwnedEvent::StallSpan {
                core,
                name,
                since,
                len,
                ..
            } => {
                // A flow-free async span on the core's track would hide
                // the microprogram slices; render stall runs as instants
                // at their resolution point, carrying the span bounds.
                events.push(ev(
                    &format!("stall.{name}"),
                    "i",
                    ts,
                    core_tid(core),
                    vec![
                        ("s".to_string(), Json::Str("t".to_string())),
                        (
                            "args".to_string(),
                            Json::Obj(vec![
                                ("since".to_string(), Json::Int(since as i128)),
                                ("len".to_string(), Json::Int(len as i128)),
                            ]),
                        ),
                    ],
                ));
            }
            OwnedEvent::PacketHandoff { thread, refs } => {
                events.push(ev(
                    "packet.handoff",
                    "i",
                    ts,
                    core_tid(thread),
                    vec![
                        ("s".to_string(), Json::Str("t".to_string())),
                        (
                            "args".to_string(),
                            Json::Obj(vec![("refs".to_string(), Json::Int(refs as i128))]),
                        ),
                    ],
                ));
            }
        }
    }

    // Close the final slice of every core at the end of the run.
    for (core, slot) in open.iter().enumerate() {
        if let Some((start, name)) = *slot {
            events.push(ev(
                name,
                "X",
                start,
                core_tid(core as u32),
                vec![(
                    "dur".to_string(),
                    Json::Int(meta.total_cycles.saturating_sub(start) as i128),
                )],
            ));
        }
    }

    // Ensure every port kind the run touched has a track even if its
    // occupancy never returned to zero, and sort for the validator:
    // metadata first, then by timestamp.
    events.sort_by_key(|e| {
        let is_meta = e.get("ph").and_then(Json::as_str) == Some("M");
        let ts = e.get("ts").and_then(Json::as_int).unwrap_or(0);
        (!is_meta as u8, ts)
    });

    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("name".to_string(), Json::Str(meta.name.clone())),
                ("n_cores".to_string(), Json::Int(meta.n_cores as i128)),
                (
                    "total_cycles".to_string(),
                    Json::Int(meta.total_cycles as i128),
                ),
            ]),
        ),
    ])
    .to_string_compact()
}

/// Check a Chrome-trace JSON document: well-formed, every event carries
/// the required fields, timestamps are monotone (metadata aside), and a
/// slice track exists for each of `expect_cores` cores. Returns a
/// [`ChromeSummary`] on success, a description of the first problem
/// otherwise.
pub fn validate_chrome_trace(text: &str, expect_cores: usize) -> Result<ChromeSummary, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut prev_ts: i128 = -1;
    let mut core_tracks = std::collections::BTreeSet::new();
    let mut port_tracks = std::collections::BTreeSet::new();
    let mut max_ts: u64 = 0;
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        let ts = event
            .get("ts")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        if ts < 0 {
            return Err(format!("event {i} ({name}): negative ts {ts}"));
        }
        event
            .get("pid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))?;
        if ph == "M" {
            if name == "thread_name" {
                let label = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                if let Some(core) = label.strip_prefix("core") {
                    if core.parse::<u64>().is_ok() {
                        core_tracks.insert(tid);
                    }
                }
            }
            continue;
        }
        if ts < prev_ts {
            return Err(format!(
                "event {i} ({name}): timestamp {ts} < previous {prev_ts}"
            ));
        }
        prev_ts = ts;
        max_ts = max_ts.max(ts as u64);
        if ph == "X" {
            let dur = event
                .get("dur")
                .and_then(Json::as_int)
                .ok_or_else(|| format!("event {i} ({name}): X event without dur"))?;
            if dur < 0 {
                return Err(format!("event {i} ({name}): negative dur {dur}"));
            }
        }
        if ph == "C" && name.starts_with("port.") {
            port_tracks.insert(name.to_string());
        }
    }
    if core_tracks.len() < expect_cores {
        return Err(format!(
            "expected {} core tracks, found {}",
            expect_cores,
            core_tracks.len()
        ));
    }
    Ok(ChromeSummary {
        events: events.len(),
        core_tracks: core_tracks.len(),
        port_tracks: port_tracks.len(),
        max_ts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_memsim::MemEventRecord;

    fn meta() -> RunMeta {
        RunMeta {
            name: "test".to_string(),
            n_cores: 2,
            total_cycles: 100,
        }
    }

    fn rec(events: Vec<(u64, OwnedEvent)>) -> Recording {
        Recording { events }
    }

    #[test]
    fn empty_recording_is_valid() {
        let text = chrome_trace_json(&rec(vec![]), &meta());
        let summary = validate_chrome_trace(&text, 0).unwrap();
        assert!(summary.events >= 3, "metadata present");
        // Core *metadata* tracks exist even without slices.
        assert_eq!(summary.core_tracks, 2);
    }

    #[test]
    fn core_slices_open_and_close() {
        let events = vec![
            (
                10,
                OwnedEvent::CoreState {
                    core: 0,
                    state: 0,
                    name: "Poll",
                },
            ),
            (
                20,
                OwnedEvent::CoreState {
                    core: 0,
                    state: 1,
                    name: "ScanHeaderWait",
                },
            ),
        ];
        let text = chrome_trace_json(&rec(events), &meta());
        let summary = validate_chrome_trace(&text, 2).unwrap();
        assert_eq!(summary.max_ts, 20);
        let doc = Json::parse(&text).unwrap();
        let slices: Vec<_> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].get("dur").unwrap().as_int(), Some(10));
        // Final slice runs to total_cycles.
        assert_eq!(slices[1].get("dur").unwrap().as_int(), Some(80));
    }

    #[test]
    fn port_counters_track_occupancy() {
        let events = vec![
            (
                1,
                OwnedEvent::Mem(MemEventRecord {
                    cycle: 1,
                    event: MemEvent::Issue {
                        core: 0,
                        port: Port::BodyLoad,
                        addr: 9,
                    },
                }),
            ),
            (
                6,
                OwnedEvent::Mem(MemEventRecord {
                    cycle: 6,
                    event: MemEvent::Consume {
                        core: 0,
                        port: Port::BodyLoad,
                    },
                }),
            ),
        ];
        let text = chrome_trace_json(&rec(events), &meta());
        let summary = validate_chrome_trace(&text, 2).unwrap();
        assert_eq!(summary.port_tracks, 1);
        assert!(text.contains("port.BodyLoad"));
    }

    #[test]
    fn validator_rejects_non_monotonic() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":10,"pid":0,"tid":0},
            {"name":"b","ph":"i","ts":5,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(text, 0).unwrap_err();
        assert!(err.contains("timestamp"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields_and_garbage() {
        assert!(validate_chrome_trace("{", 0).is_err());
        assert!(validate_chrome_trace("{\"foo\":1}", 0).is_err());
        let no_ts = r#"{"traceEvents":[{"name":"a","ph":"i","pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_ts, 0).unwrap_err().contains("ts"));
    }

    #[test]
    fn validator_counts_missing_core_tracks() {
        let text = chrome_trace_json(&rec(vec![]), &meta());
        let err = validate_chrome_trace(&text, 5).unwrap_err();
        assert!(err.contains("expected 5 core tracks"), "{err}");
    }
}
