//! The typed events carried by the bus.
//!
//! [`Event`] is the borrowed form the engine emits from its hot loop (the
//! sampled signal row borrows a preallocated state buffer, so emission
//! never allocates); [`OwnedEvent`] is the owned form a
//! [`crate::Recorder`] stores. Hardware-unit events are *reused*, not
//! mirrored: the SB's [`SbEventRecord`] and the memory system's
//! [`MemEventRecord`] ride the bus verbatim, with their own cycle stamps
//! already unified on the engine clock by the engine.

use hwgc_memsim::MemEventRecord;
use hwgc_sync::SbEventRecord;

/// One sampled cycle of the architecturally interesting signals (the
/// bus form of a `SignalTrace` row). Core microprogram states travel as
/// small indices plus a name function, so this crate needs no dependency
/// on the core crate's `State` enum.
#[derive(Debug, Clone, Copy)]
pub struct SampleRec<'a> {
    pub scan: u32,
    pub free: u32,
    /// Words between `scan` and `free`.
    pub gray_words: u32,
    pub busy_cores: u32,
    pub fifo_len: u32,
    pub queue_depth: u32,
    /// Per-core microprogram state indices (see `state_name`).
    pub states: &'a [u8],
    /// Maps a state index to its display name.
    pub state_name: fn(u8) -> &'static str,
}

/// A typed, cycle-stamped event on the bus. The stamp travels alongside
/// (see [`crate::Probe::record`]); `Sb`/`Mem` records additionally carry
/// their unit's stamp, which the engine keeps equal to the bus stamp.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A named phase of the collection cycle begins or ends (root
    /// evacuation, parallel scan loop, drain) — the barrier entry/exit
    /// view of the engine.
    Phase { name: &'static str, begin: bool },
    /// A core's microprogram state changed this cycle.
    CoreState {
        core: u32,
        state: u8,
        name: &'static str,
    },
    /// A core advanced `scan` — it claimed the work-list span
    /// `[from, to)`.
    WorklistClaim { core: u32, from: u32, to: u32 },
    /// The header FIFO's occupancy changed this cycle.
    FifoDepth { depth: u32 },
    /// Periodic signal sample (the `SignalTrace` path through the bus).
    Sample(SampleRec<'a>),
    /// A synchronization-block operation (complete log, bridged).
    Sb(SbEventRecord),
    /// A memory-system transition (complete log, bridged).
    Mem(MemEventRecord),
    /// Software collector: a steal attempt (work-stealing deques).
    Steal {
        thief: u32,
        victim: u32,
        success: bool,
    },
    /// Software collector: a full work packet handed to the shared pool.
    PacketHandoff { thread: u32, refs: u32 },
    /// A core's maximal run of consecutive stalled cycles with one cause
    /// ended: `core` stalled on `reason` for engine cycles
    /// `[since, since + len)`. Emitted when the stall resolves (or at the
    /// end of the run), stamped with the *last* stalled cycle
    /// (`since + len - 1`), so fast-forward windows — which extend a run
    /// without resolving it — never need to emit mid-run. The reason
    /// travels as a small index plus a name (like core states), keeping
    /// this crate free of the core crate's `StallReason` enum. Span
    /// lengths per (core, reason) sum exactly to the engine's
    /// `StallBreakdown` counters — the blame attribution's
    /// conservative-completeness anchor.
    StallSpan {
        core: u32,
        reason: u8,
        name: &'static str,
        since: u64,
        len: u64,
    },
}

/// Owned form of [`Event`] as stored by a [`crate::Recorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedEvent {
    Phase {
        name: &'static str,
        begin: bool,
    },
    CoreState {
        core: u32,
        state: u8,
        name: &'static str,
    },
    WorklistClaim {
        core: u32,
        from: u32,
        to: u32,
    },
    FifoDepth {
        depth: u32,
    },
    Sample {
        scan: u32,
        free: u32,
        gray_words: u32,
        busy_cores: u32,
        fifo_len: u32,
        queue_depth: u32,
        states: Vec<u8>,
    },
    Sb(SbEventRecord),
    Mem(MemEventRecord),
    Steal {
        thief: u32,
        victim: u32,
        success: bool,
    },
    PacketHandoff {
        thread: u32,
        refs: u32,
    },
    StallSpan {
        core: u32,
        reason: u8,
        name: &'static str,
        since: u64,
        len: u64,
    },
}

impl Event<'_> {
    /// Convert to the owned form (allocates only for `Sample` states).
    pub fn to_owned(&self) -> OwnedEvent {
        match *self {
            Event::Phase { name, begin } => OwnedEvent::Phase { name, begin },
            Event::CoreState { core, state, name } => OwnedEvent::CoreState { core, state, name },
            Event::WorklistClaim { core, from, to } => OwnedEvent::WorklistClaim { core, from, to },
            Event::FifoDepth { depth } => OwnedEvent::FifoDepth { depth },
            Event::Sample(s) => OwnedEvent::Sample {
                scan: s.scan,
                free: s.free,
                gray_words: s.gray_words,
                busy_cores: s.busy_cores,
                fifo_len: s.fifo_len,
                queue_depth: s.queue_depth,
                states: s.states.to_vec(),
            },
            Event::Sb(rec) => OwnedEvent::Sb(rec),
            Event::Mem(rec) => OwnedEvent::Mem(rec),
            Event::Steal {
                thief,
                victim,
                success,
            } => OwnedEvent::Steal {
                thief,
                victim,
                success,
            },
            Event::PacketHandoff { thread, refs } => OwnedEvent::PacketHandoff { thread, refs },
            Event::StallSpan {
                core,
                reason,
                name,
                since,
                len,
            } => OwnedEvent::StallSpan {
                core,
                reason,
                name,
                since,
                len,
            },
        }
    }
}
