//! Flamegraph-ready folded-stacks output.
//!
//! One line per unique stack, `frame;frame;frame value`, the input format
//! of `flamegraph.pl` / `inferno-flamegraph` / speedscope. The stall
//! exporter writes stacks like `core3;StallHeaderLock 1845`.

use std::collections::BTreeMap;

/// An accumulator of `stack -> value` with deterministic output order.
#[derive(Debug, Clone, Default)]
pub struct FoldedStacks {
    stacks: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// Empty accumulator.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Add `value` to the stack named by `frames` (joined with `;`).
    /// Frames must not contain `;`, space or newline.
    pub fn add(&mut self, frames: &[&str], value: u64) {
        if value == 0 {
            return;
        }
        debug_assert!(
            frames.iter().all(|f| !f.contains([';', ' ', '\n'])),
            "folded-stack frames must not contain ';', ' ' or newline"
        );
        let key = frames.join(";");
        let slot = self.stacks.entry(key).or_insert(0);
        *slot = slot.saturating_add(value);
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Render in folded format, sorted by stack name.
    pub fn to_folded_string(&self) -> String {
        let mut out = String::new();
        for (stack, value) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_and_sorts() {
        let mut f = FoldedStacks::new();
        f.add(&["core1", "StallScanLock"], 10);
        f.add(&["core0", "StallHeaderLock"], 5);
        f.add(&["core1", "StallScanLock"], 2);
        f.add(&["core0", "empty"], 0); // dropped
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.to_folded_string(),
            "core0;StallHeaderLock 5\ncore1;StallScanLock 12\n"
        );
    }
}
