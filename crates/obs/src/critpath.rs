//! Critical-path extraction: the chain of activity that set the run's
//! wall-clock length.
//!
//! [`critical_path`] walks *backward* from the core that finished last,
//! at `total_cycles`, chasing each wait to whatever resolved it. Each
//! step charges one contiguous half-open cycle interval `(t_new, t_old]`
//! to a resource class, so the class totals sum **exactly** to
//! `total_cycles` — the path is a partition of wall-clock time, not a
//! sample of it.
//!
//! Walk rules (see DESIGN.md §7 for the derivation):
//!
//! * **busy** — the core made progress up to `t`; charge back to the end
//!   of its previous stall (class `busy`), stay on the core;
//! * **memory stall** — the wait is self-contained (the core's own
//!   transaction); charge the covered part of the span split by
//!   transaction phase (`<class>/dram.latency`, `<class>/dram.queue`,
//!   `<class>/mem.comparator`), or `fifo.overflow` for a header store
//!   born of a full FIFO, and continue on the same core before the span;
//! * **lock stall** — the wall time was *occupied by the holder's own
//!   activity*, which the walk follows: charge one hand-off cycle to the
//!   lock class and hop to the holding (or same-cycle writing) core —
//!   the convoy's interior (the holder's header load, its DRAM service)
//!   is then charged under the holder's own classes;
//! * **empty spin** — hop to the core that last advanced `free` (the
//!   producer whose pace the spinner was waiting on), charging one cycle
//!   to `empty_spin`;
//! * below the scan-phase start, the remainder is the sequential
//!   `root_phase`.
//!
//! Hops always decrease `t`, so the walk terminates; the per-hop 1-cycle
//! charge is what keeps the partition exact when waits hand off.

use std::collections::BTreeMap;

use crate::attr::{fifo_fault, is_lock_reason, port_of_reason, reason_idx, RunModel};

/// Cap on stored [`Step`]s (the class totals are always complete; only
/// the step-by-step listing truncates).
const MAX_STEPS: usize = 4096;

/// One charged segment of the critical path (in walk order, i.e. from
/// the end of the run backward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Core whose activity (or wait) occupied the segment.
    pub core: u32,
    /// Resource class charged.
    pub class: String,
    /// Cycles charged.
    pub cycles: u64,
    /// The segment covers `(until - cycles, until]`.
    pub until: u64,
}

/// The extracted critical path.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    /// Cycles per resource class; sums exactly to `total`.
    pub classes: BTreeMap<String, u64>,
    /// The walked segments, newest (end of run) first; truncated at
    /// [`MAX_STEPS`] entries.
    pub steps: Vec<Step>,
    /// Total cycles of the run (the partition target).
    pub total: u64,
    /// Number of core-to-core hops the walk took.
    pub hops: u64,
}

impl CritPath {
    /// Cycles charged to `class` (0 when absent).
    pub fn class_cycles(&self, class: &str) -> u64 {
        self.classes.get(class).copied().unwrap_or(0)
    }

    /// Check the partition: class totals must sum exactly to `total`.
    pub fn validate(&self) -> Result<(), String> {
        let sum: u64 = self.classes.values().sum();
        if sum != self.total {
            return Err(format!(
                "critical path classes sum to {sum}, run is {} cycles",
                self.total
            ));
        }
        Ok(())
    }
}

/// Walk the critical path of a modeled run. The returned partition
/// satisfies [`CritPath::validate`] by construction.
pub fn critical_path(model: &RunModel) -> CritPath {
    let mut path = CritPath {
        total: model.total,
        ..CritPath::default()
    };
    let phase_start = model.phase_start.min(model.total);
    let mut core = model.last_to_finish();
    let mut t = model.total;

    let charge = |path: &mut CritPath, core: u32, class: String, t_old: u64, t_new: u64| {
        let cycles = t_old - t_new;
        if cycles == 0 {
            return;
        }
        *path.classes.entry(class.clone()).or_default() += cycles;
        if path.steps.len() < MAX_STEPS {
            path.steps.push(Step {
                core,
                class,
                cycles,
                until: t_old,
            });
        }
    };

    while t > phase_start {
        match model.span_at(core, t) {
            None => {
                // Progressing: charge back to the end of the previous
                // stall (or the phase start).
                let t_new = model
                    .span_before(core, t)
                    .map_or(phase_start, |s| s.last())
                    .max(phase_start);
                charge(&mut path, core, "busy".to_string(), t, t_new);
                t = t_new;
            }
            Some(span) if is_lock_reason(span.reason) => {
                let blocker = model
                    .lock_cause(core, t)
                    .and_then(|c| c.holder.or(c.writer));
                match blocker {
                    Some(j) if j != core => {
                        // Hand-off: one cycle to the lock class, then
                        // follow the holder's own activity.
                        charge(&mut path, core, span.name.to_string(), t, t - 1);
                        core = j;
                        t -= 1;
                        path.hops += 1;
                    }
                    _ => {
                        // No replayed cause (log off, or a self-edge):
                        // charge the covered wait to the lock class.
                        let t_new = (span.since - 1).max(phase_start);
                        charge(&mut path, core, span.name.to_string(), t, t_new);
                        t = t_new;
                    }
                }
            }
            Some(span) if span.reason == reason_idx::EMPTY_SPIN => {
                match model.last_set_free_at(t).filter(|&(_, j)| j != core) {
                    Some((_, j)) => {
                        charge(&mut path, core, "empty_spin".to_string(), t, t - 1);
                        core = j;
                        t -= 1;
                        path.hops += 1;
                    }
                    None => {
                        let t_new = (span.since - 1).max(phase_start);
                        charge(&mut path, core, "empty_spin".to_string(), t, t_new);
                        t = t_new;
                    }
                }
            }
            Some(span) => {
                // Memory stall (or drain): self-contained; charge the
                // covered part of the span, split by transaction phase.
                let t_new = (span.since - 1).max(phase_start);
                let width = t - t_new;
                match port_of_reason(span.reason) {
                    Some(port) => {
                        if let Some(cause) = fifo_fault(model, core, span) {
                            charge(&mut path, core, cause.to_string(), t, t_new);
                        } else {
                            let (blocked, service, queued) =
                                model.mem_split(core, port, t_new + 1, t);
                            let rest = width - blocked - service - queued;
                            let mut at = t;
                            for (sub, n) in [
                                (format!("{}/mem.comparator", span.name), blocked),
                                (format!("{}/dram.latency", span.name), service),
                                (format!("{}/dram.queue", span.name), queued),
                                (span.name.to_string(), rest),
                            ] {
                                charge(&mut path, core, sub, at, at - n);
                                at -= n;
                            }
                        }
                    }
                    None => {
                        // Drain (and any future self-inflicted reason).
                        charge(&mut path, core, span.name.to_string(), t, t_new);
                    }
                }
                t = t_new;
            }
        }
    }
    if phase_start > 0 {
        *path.classes.entry("root_phase".to_string()).or_default() += phase_start;
        if path.steps.len() < MAX_STEPS {
            path.steps.push(Step {
                core: 0,
                class: "root_phase".to_string(),
                cycles: phase_start,
                until: phase_start,
            });
        }
    }
    debug_assert!(path.validate().is_ok());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::reason_idx;
    use crate::chrome::RunMeta;
    use crate::event::OwnedEvent;
    use crate::probe::Recording;
    use hwgc_sync::{SbEvent, SbEventRecord};

    fn meta(n_cores: usize, total: u64) -> RunMeta {
        RunMeta {
            name: "t".to_string(),
            n_cores,
            total_cycles: total,
        }
    }

    fn sb(cycle: u64, event: SbEvent) -> (u64, OwnedEvent) {
        (cycle, OwnedEvent::Sb(SbEventRecord { cycle, event }))
    }

    fn state(core: u32, cycle: u64, name: &'static str) -> (u64, OwnedEvent) {
        (
            cycle,
            OwnedEvent::CoreState {
                core,
                state: 0,
                name,
            },
        )
    }

    fn span(core: u32, reason: u8, name: &'static str, since: u64, len: u64) -> (u64, OwnedEvent) {
        (
            since + len - 1,
            OwnedEvent::StallSpan {
                core,
                reason,
                name,
                since,
                len,
            },
        )
    }

    #[test]
    fn busy_only_run_partitions_into_busy_and_root_phase() {
        let rec = Recording {
            events: vec![
                (
                    5,
                    OwnedEvent::Phase {
                        name: "scan",
                        begin: true,
                    },
                ),
                state(0, 6, "Poll"),
                state(0, 30, "Done"),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 30));
        let path = critical_path(&model);
        path.validate().unwrap();
        assert_eq!(path.class_cycles("busy"), 25);
        assert_eq!(path.class_cycles("root_phase"), 5);
        assert_eq!(path.hops, 0);
    }

    #[test]
    fn memory_stall_charges_split_phases_on_same_core() {
        let rec = Recording {
            events: vec![
                state(0, 1, "Poll"),
                state(0, 20, "Done"),
                span(0, reason_idx::BODY_LOAD, "body_load", 11, 8),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 20));
        let path = critical_path(&model);
        path.validate().unwrap();
        // 20..19 busy? Done at 20; walk from t=20: no span at 20... span
        // covers 11..=18, so 19..20 busy, 11..18 body_load, 1..10 busy.
        assert_eq!(path.class_cycles("body_load"), 8);
        assert_eq!(path.class_cycles("busy"), 12);
        assert_eq!(path.total, 20);
    }

    #[test]
    fn lock_wait_hops_to_the_holder() {
        // Core 1 finishes last after waiting on core 0's scan lock while
        // core 0 was busy: the walk hops to core 0 and charges its work.
        let rec = Recording {
            events: vec![
                state(0, 1, "Poll"),
                state(1, 1, "Poll"),
                sb(10, SbEvent::AcquireScan { core: 0 }),
                sb(11, SbEvent::FailScan { core: 1 }),
                sb(12, SbEvent::FailScan { core: 1 }),
                sb(13, SbEvent::FailScan { core: 1 }),
                sb(14, SbEvent::ReleaseScan { core: 0 }),
                span(1, reason_idx::SCAN_LOCK, "scan_lock", 11, 3),
                state(0, 18, "Done"),
                state(1, 20, "Done"),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 20));
        assert_eq!(model.last_to_finish(), 1);
        let path = critical_path(&model);
        path.validate().unwrap();
        assert!(path.hops >= 1, "must hop to the holder");
        assert_eq!(path.class_cycles("scan_lock"), 1);
        // Everything else is the two cores' interleaved busy time.
        assert_eq!(path.class_cycles("busy"), 19);
        // The hop happened: some busy segment belongs to core 0.
        assert!(path.steps.iter().any(|s| s.core == 0 && s.class == "busy"));
    }

    #[test]
    fn empty_spin_hops_to_the_free_writer() {
        let rec = Recording {
            events: vec![
                state(0, 1, "Poll"),
                state(1, 1, "Poll"),
                sb(
                    12,
                    SbEvent::SetFree {
                        core: 0,
                        from: 0,
                        to: 8,
                    },
                ),
                span(1, reason_idx::EMPTY_SPIN, "empty_spin", 8, 6),
                state(0, 14, "Done"),
                state(1, 16, "Done"),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 16));
        let path = critical_path(&model);
        path.validate().unwrap();
        assert_eq!(path.class_cycles("empty_spin"), 1);
        assert!(path.hops >= 1);
    }

    #[test]
    fn partition_is_exact_for_empty_recordings() {
        let model = RunModel::build(&Recording::default(), &meta(2, 40));
        let path = critical_path(&model);
        path.validate().unwrap();
        // No phase marker, no states: the whole run is core 0 "busy".
        assert_eq!(path.class_cycles("busy"), 40);
    }
}
