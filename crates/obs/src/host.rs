//! `hostprof`: the simulator's self-profiling layer.
//!
//! The simulated-time observability stack (probes, traces, metrics) says
//! where *simulated* cycles go; `hostprof` says where the simulator's own
//! *host* time goes — and why its engines behave as they do. It is the
//! same static-dispatch shape as [`crate::Probe`]: the engine's loops are
//! generic over a [`HostProf`] whose associated `const ACTIVE` guards
//! every emission site, so the default [`NullHostProf`] compiles to
//! nothing and a hostprof-off run keeps the allocation-free hot loop
//! bit for bit (the counting-allocator and differential tests pin this).
//!
//! Two kinds of observation flow into a [`HostProfiler`], and the split
//! is load-bearing:
//!
//! * **deterministic efficacy counters and histograms** — park/wake
//!   tallies by class, all-parked jumps, fast-forward jumps, the window
//!   funnel (attempted / vetoed-by-reason / fired, window-length and
//!   copy-words histograms). These are pure functions of simulation
//!   state, identical on every host, and therefore golden-testable.
//! * **host timings** — wall-clock nanoseconds per phase, `mem.tick`
//!   cost, pool scatter/gather latency, per-worker busy time. These are
//!   nondeterministic and must never leak into simulation artifacts:
//!   the JSON schema quarantines them under a separate `"host"` object,
//!   and the ledger prefixes every such field `host_`.
//!
//! Exports: the stable [`HOSTPROF_SCHEMA`] JSON document
//! ([`HostProfiler::to_json`]), its golden-safe deterministic subset
//! ([`HostProfiler::deterministic_json`]), folded stacks of host time
//! ([`HostProfiler::folded`]), and a host-time track merged into an
//! existing Chrome/Perfetto trace ([`merge_host_track`]) so sim-time and
//! host-time render side by side.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::folded::FoldedStacks;
use crate::json::Json;
use crate::metrics::Histogram;

/// JSON schema tag of [`HostProfiler::to_json`].
pub const HOSTPROF_SCHEMA: &str = "hwgc-hostprof-v1";

/// Statically-dispatched self-profiling sink, mirroring [`crate::Probe`]:
/// the engine guards every call with `H::ACTIVE`, so the null
/// implementation costs nothing.
pub trait HostProf {
    /// `false` compiles every instrumentation site away.
    const ACTIVE: bool;

    /// Add `delta` to a **deterministic** counter (a pure function of
    /// simulation state — golden-testable).
    fn count(&mut self, key: &'static str, delta: u64);

    /// Record one observation into a **deterministic** histogram.
    fn sample(&mut self, key: &'static str, value: u64);

    /// Attribute `ns` wall-clock nanoseconds to a **nondeterministic**
    /// host timer.
    fn time(&mut self, key: &'static str, ns: u64);

    /// [`HostProf::time`] with a small integer slot (per-worker
    /// utilization and the like); exported as `key[slot]`.
    fn time_slot(&mut self, key: &'static str, slot: u32, ns: u64);

    /// Record a **nondeterministic** host-side scalar (host-dependent
    /// counts such as pool dispatches, which vary with the worker count).
    fn note(&mut self, key: &'static str, value: u64);

    /// Open a host-time span (rendered on the Chrome host track).
    fn span(&mut self, name: &'static str, start_ns: u64, end_ns: u64);

    /// Monotonic nanoseconds since the profiler's epoch; `0` when
    /// inactive (callers gate on `ACTIVE`, so the value is never used).
    fn now(&self) -> u64;
}

/// The no-op profiler: `ACTIVE == false`, so every instrumentation site
/// in the engine compiles away.
pub struct NullHostProf;

impl HostProf for NullHostProf {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn count(&mut self, _key: &'static str, _delta: u64) {}
    #[inline(always)]
    fn sample(&mut self, _key: &'static str, _value: u64) {}
    #[inline(always)]
    fn time(&mut self, _key: &'static str, _ns: u64) {}
    #[inline(always)]
    fn time_slot(&mut self, _key: &'static str, _slot: u32, _ns: u64) {}
    #[inline(always)]
    fn note(&mut self, _key: &'static str, _value: u64) {}
    #[inline(always)]
    fn span(&mut self, _name: &'static str, _start_ns: u64, _end_ns: u64) {}
    #[inline(always)]
    fn now(&self) -> u64 {
        0
    }
}

/// Aggregated wall-clock attribution for one timer key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerAgg {
    /// Number of attributions.
    pub count: u64,
    /// Total nanoseconds.
    pub total_ns: u64,
    /// Largest single attribution.
    pub max_ns: u64,
}

impl TimerAgg {
    fn add(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// One completed host-time span (for the Chrome host track).
#[derive(Debug, Clone, Copy)]
pub struct HostSpan {
    /// Span label.
    pub name: &'static str,
    /// Nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// The collecting [`HostProf`]: deterministic counters/histograms in one
/// set of maps, host timings strictly in another.
pub struct HostProfiler {
    epoch: Instant,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    timers: BTreeMap<String, TimerAgg>,
    notes: BTreeMap<&'static str, u64>,
    spans: Vec<HostSpan>,
}

impl Default for HostProfiler {
    fn default() -> HostProfiler {
        HostProfiler::new()
    }
}

impl HostProf for HostProfiler {
    const ACTIVE: bool = true;

    fn count(&mut self, key: &'static str, delta: u64) {
        let c = self.counters.entry(key).or_insert(0);
        *c = c.saturating_add(delta);
    }

    fn sample(&mut self, key: &'static str, value: u64) {
        self.hists.entry(key).or_default().record(value);
    }

    fn time(&mut self, key: &'static str, ns: u64) {
        self.timers.entry(key.to_string()).or_default().add(ns);
    }

    fn time_slot(&mut self, key: &'static str, slot: u32, ns: u64) {
        self.timers
            .entry(format!("{key}[{slot}]"))
            .or_default()
            .add(ns);
    }

    fn note(&mut self, key: &'static str, value: u64) {
        let c = self.notes.entry(key).or_insert(0);
        *c = c.saturating_add(value);
    }

    fn span(&mut self, name: &'static str, start_ns: u64, end_ns: u64) {
        self.spans.push(HostSpan {
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
    }

    fn now(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl HostProfiler {
    /// Empty profiler; the epoch for [`HostProf::now`] starts here.
    pub fn new() -> HostProfiler {
        HostProfiler {
            epoch: Instant::now(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            timers: BTreeMap::new(),
            notes: BTreeMap::new(),
            spans: Vec::new(),
        }
    }

    /// The named deterministic counter (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The named deterministic histogram, if touched.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// The named host timer, if touched.
    pub fn timer(&self, key: &str) -> Option<&TimerAgg> {
        self.timers.get(key)
    }

    /// Deterministic counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Deterministic histograms, sorted by key.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Host timers, sorted by key. Wall-clock — never golden material.
    pub fn timers(&self) -> impl Iterator<Item = (&str, &TimerAgg)> {
        self.timers.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Machine-dependent notes, sorted by key.
    pub fn notes(&self) -> impl Iterator<Item = (&str, u64)> {
        self.notes.iter().map(|(&k, &v)| (k, v))
    }

    /// Sum of all deterministic counters whose key starts with `prefix`
    /// (e.g. every `win.veto.` reason).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// The deterministic section alone — the golden-testable subset.
    /// Contains no wall-clock field by construction.
    pub fn deterministic_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(&k, &v)| (k.to_string(), Json::Int(v as i128)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(&k, h)| (k.to_string(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The nondeterministic host section (timers, notes, spans).
    fn host_json(&self) -> Json {
        Json::Obj(vec![
            (
                "timers".to_string(),
                Json::Obj(
                    self.timers
                        .iter()
                        .map(|(k, t)| {
                            (
                                k.clone(),
                                Json::Obj(vec![
                                    ("count".to_string(), Json::Int(t.count as i128)),
                                    ("total_ns".to_string(), Json::Int(t.total_ns as i128)),
                                    ("max_ns".to_string(), Json::Int(t.max_ns as i128)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "notes".to_string(),
                Json::Obj(
                    self.notes
                        .iter()
                        .map(|(&k, &v)| (k.to_string(), Json::Int(v as i128)))
                        .collect(),
                ),
            ),
            (
                "spans".to_string(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(s.name.to_string())),
                                ("start_ns".to_string(), Json::Int(s.start_ns as i128)),
                                ("dur_ns".to_string(), Json::Int(s.dur_ns as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The full [`HOSTPROF_SCHEMA`] document: deterministic section
    /// first, host section quarantined after it.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(HOSTPROF_SCHEMA.to_string())),
            ("deterministic".to_string(), self.deterministic_json()),
            ("host".to_string(), self.host_json()),
        ])
    }

    /// [`HostProfiler::to_json`] as a compact string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Host time as flamegraph-ready folded stacks: each timer key's
    /// dot-separated components become frames (`phase.steady` →
    /// `host;phase;steady total_ns`).
    pub fn folded(&self) -> FoldedStacks {
        let mut f = FoldedStacks::new();
        for (key, agg) in &self.timers {
            // Slot suffixes (`pool.worker_busy[3]`) keep their brackets;
            // only dots split frames. Brackets are folded-safe.
            let mut frames: Vec<&str> = vec!["host"];
            frames.extend(key.split('.'));
            f.add(&frames, agg.total_ns);
        }
        f
    }

    /// Chrome trace events for the host track: one `ph:"X"` slice per
    /// recorded span plus counter events for the timer totals, all on
    /// `pid 1` (`pid 0` is the simulated machine). Timestamps are
    /// microseconds since the profiler epoch.
    pub fn chrome_host_events(&self) -> Vec<Json> {
        const HOST_PID: i128 = 1;
        let mut events = vec![
            Json::Obj(vec![
                ("name".to_string(), Json::Str("process_name".to_string())),
                ("ph".to_string(), Json::Str("M".to_string())),
                ("ts".to_string(), Json::Int(0)),
                ("pid".to_string(), Json::Int(HOST_PID)),
                ("tid".to_string(), Json::Int(0)),
                (
                    "args".to_string(),
                    Json::Obj(vec![(
                        "name".to_string(),
                        Json::Str("hwgc-host".to_string()),
                    )]),
                ),
            ]),
            Json::Obj(vec![
                ("name".to_string(), Json::Str("thread_name".to_string())),
                ("ph".to_string(), Json::Str("M".to_string())),
                ("ts".to_string(), Json::Int(0)),
                ("pid".to_string(), Json::Int(HOST_PID)),
                ("tid".to_string(), Json::Int(0)),
                (
                    "args".to_string(),
                    Json::Obj(vec![(
                        "name".to_string(),
                        Json::Str("host-time".to_string()),
                    )]),
                ),
            ]),
        ];
        for s in &self.spans {
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(s.name.to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Int((s.start_ns / 1_000) as i128)),
                ("pid".to_string(), Json::Int(HOST_PID)),
                ("tid".to_string(), Json::Int(0)),
                ("dur".to_string(), Json::Int((s.dur_ns / 1_000) as i128)),
            ]));
        }
        events
    }
}

/// Merge a host-time track into an existing Chrome trace JSON document
/// (as produced by [`crate::chrome_trace_json`]): the host spans land on
/// their own process (`pid 1`), and the combined event list is re-sorted
/// (metadata first, then by timestamp) so
/// [`crate::validate_chrome_trace`] still passes.
pub fn merge_host_track(chrome_json: &str, prof: &HostProfiler) -> Result<String, String> {
    let mut doc = Json::parse(chrome_json).map_err(|e| e.to_string())?;
    let Json::Obj(fields) = &mut doc else {
        return Err("chrome trace is not an object".to_string());
    };
    let events = fields
        .iter_mut()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents array")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    events.extend(prof.chrome_host_events());
    events.sort_by_key(|e| {
        let is_meta = e.get("ph").and_then(Json::as_str) == Some("M");
        let ts = e.get("ts").and_then(Json::as_int).unwrap_or(0);
        (!is_meta as u8, ts)
    });
    Ok(doc.to_string_compact())
}

/// Validate a [`HOSTPROF_SCHEMA`] document: schema tag, section shape,
/// and — the quarantine invariant — no wall-clock key inside the
/// deterministic section (no key there may start with `host` or end in
/// `_ns`), and nothing but timers/notes/spans inside `host`.
pub fn validate_hostprof_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(HOSTPROF_SCHEMA) {
        return Err(format!("schema is not {HOSTPROF_SCHEMA}"));
    }
    let det = doc.get("deterministic").ok_or("missing deterministic")?;
    let Some(Json::Obj(counters)) = det.get("counters") else {
        return Err("deterministic.counters missing or not an object".to_string());
    };
    for (k, v) in counters {
        if k.starts_with("host") || k.ends_with("_ns") {
            return Err(format!("wall-clock key `{k}` in deterministic section"));
        }
        if v.as_int().is_none() {
            return Err(format!("deterministic counter `{k}` is not an integer"));
        }
    }
    let Some(Json::Obj(hists)) = det.get("histograms") else {
        return Err("deterministic.histograms missing or not an object".to_string());
    };
    for (k, h) in hists {
        if k.starts_with("host") || k.ends_with("_ns") {
            return Err(format!("wall-clock key `{k}` in deterministic section"));
        }
        if Histogram::from_json(h).is_none() {
            return Err(format!("deterministic histogram `{k}` is malformed"));
        }
    }
    let host = doc.get("host").ok_or("missing host section")?;
    for section in ["timers", "notes", "spans"] {
        if host.get(section).is_none() {
            return Err(format!("host.{section} missing"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler_with_data() -> HostProfiler {
        let mut p = HostProfiler::new();
        p.count("win.fired", 3);
        p.count("win.veto.retire_bound", 2);
        p.sample("win.len", 64);
        p.sample("win.len", 128);
        p.time("phase.steady", 1_500);
        p.time("phase.steady", 500);
        p.time_slot("pool.worker_busy", 2, 40);
        p.note("pool.dispatches", 7);
        p.span("root", 100, 2_100);
        p
    }

    #[test]
    fn null_profiler_is_inert() {
        let mut n = NullHostProf;
        const { assert!(!NullHostProf::ACTIVE) };
        n.count("x", 1);
        n.time("x", 1);
        assert_eq!(n.now(), 0);
    }

    #[test]
    fn counters_and_timers_aggregate() {
        let p = profiler_with_data();
        assert_eq!(p.counter("win.fired"), 3);
        assert_eq!(p.counter("missing"), 0);
        assert_eq!(p.counter_prefix_sum("win.veto."), 2);
        assert_eq!(p.hist("win.len").unwrap().count(), 2);
        let t = p.timer("phase.steady").unwrap();
        assert_eq!((t.count, t.total_ns, t.max_ns), (2, 2_000, 1_500));
        assert!(p.timer("pool.worker_busy[2]").is_some());
    }

    #[test]
    fn json_validates_and_quarantines() {
        let p = profiler_with_data();
        let text = p.to_json_string();
        validate_hostprof_json(&text).unwrap();
        // The deterministic subset contains no `ns` anywhere.
        let det = p.deterministic_json().to_string_compact();
        assert!(!det.contains("_ns"), "wall-clock leaked: {det}");
        assert!(!det.contains("host"), "host section leaked: {det}");
    }

    #[test]
    fn validator_rejects_wall_clock_in_deterministic() {
        let bad = r#"{"schema":"hwgc-hostprof-v1",
            "deterministic":{"counters":{"host_tick_ns":5},"histograms":{}},
            "host":{"timers":{},"notes":{},"spans":[]}}"#;
        let err = validate_hostprof_json(bad).unwrap_err();
        assert!(err.contains("wall-clock"), "{err}");
    }

    #[test]
    fn folded_stacks_split_on_dots() {
        let p = profiler_with_data();
        let folded = p.folded().to_folded_string();
        assert!(folded.contains("host;phase;steady 2000"), "{folded}");
        assert!(folded.contains("host;pool;worker_busy[2] 40"), "{folded}");
    }

    #[test]
    fn host_track_merges_into_a_chrome_trace() {
        use crate::chrome::{chrome_trace_json, validate_chrome_trace, RunMeta};
        use crate::probe::Recording;
        let base = chrome_trace_json(
            &Recording::default(),
            &RunMeta {
                name: "t".to_string(),
                n_cores: 1,
                total_cycles: 10,
            },
        );
        let merged = merge_host_track(&base, &profiler_with_data()).unwrap();
        validate_chrome_trace(&merged, 1).unwrap();
        assert!(merged.contains("hwgc-host"));
        assert!(merged.contains("\"root\""));
    }
}
