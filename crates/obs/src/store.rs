//! The indexed ledger store: load/merge/dedupe JSONL ledgers into one
//! structure keyed by [`LedgerRecord::config_hash`] — the backbone that
//! the content-addressed result cache (`hwgc-check`), the `ledger_diff`
//! regression differ and the committed `BENCH_ledger.jsonl` canonicalizer
//! all share.
//!
//! Identity and integrity rules:
//!
//! * the **key** is the config hash — what was asked for, never what
//!   happened or how fast;
//! * two records with the same hash must agree on every deterministic
//!   output they both carry (`stats_digest`, `total_cycles`,
//!   `sb_fingerprint`, shared efficacy counters). A disagreement is a
//!   [`StoreError::Conflict`] and loading/merging **hard-fails** —
//!   last-write-wins would silently paper over exactly the stale-result
//!   corruption the store exists to catch;
//! * `host_*` fields are quarantined: they never participate in identity
//!   or conflict checks, and a merge keeps the first record's host fields
//!   (deterministic, and the canonical serialization stays stable);
//! * merging records with equal deterministic outputs *completes* the
//!   surviving record: a missing `total_cycles`, `sb_fingerprint`,
//!   `result` payload or empty `efficacy` set is filled in from the
//!   other side, so a digest-only ledger line and a payload-carrying
//!   cache line of the same run collapse into one maximal record.

use std::collections::HashMap;
use std::path::Path;

use crate::json::Json;
use crate::ledger::LedgerRecord;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The underlying file could not be read.
    Io(String),
    /// A JSONL line failed to parse (corrupted, truncated, tampered
    /// hash, or schema-version skew). `line` is 1-based.
    Parse { line: usize, msg: String },
    /// Two records with the same config hash disagree on a deterministic
    /// output field — the hard-fail case.
    Conflict {
        config_hash: u64,
        field: &'static str,
        have: String,
        incoming: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "{msg}"),
            StoreError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            StoreError::Conflict {
                config_hash,
                field,
                have,
                incoming,
            } => write!(
                f,
                "config_hash {config_hash:016x}: conflicting `{field}` \
                 (store has {have}, incoming record has {incoming}) — \
                 two runs of one configuration produced different \
                 simulation results"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`LedgerStore::insert`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// First record for its config hash.
    Inserted,
    /// A record for the hash existed; deterministic outputs agreed and
    /// the survivor was completed from the incoming record.
    Merged,
}

/// Diagnostics of a [`LedgerStore::load_tolerant`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Records accepted (inserted or merged).
    pub accepted: usize,
    /// Lines quarantined with their parse diagnostics (`line N: …`).
    /// Only *parse* failures are tolerated — output conflicts between
    /// well-formed records still hard-fail the load.
    pub quarantined: Vec<String>,
}

/// An indexed, deduplicated collection of ledger records keyed by config
/// hash.
#[derive(Debug, Clone, Default)]
pub struct LedgerStore {
    records: Vec<LedgerRecord>,
    index: HashMap<u64, usize>,
}

impl LedgerStore {
    /// An empty store.
    pub fn new() -> LedgerStore {
        LedgerStore::default()
    }

    /// Number of distinct config hashes held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `config_hash`, if any.
    pub fn get(&self, config_hash: u64) -> Option<&LedgerRecord> {
        self.index.get(&config_hash).map(|&i| &self.records[i])
    }

    /// Every record, in insertion order. [`LedgerStore::canonical_jsonl`]
    /// is the hash-sorted view.
    pub fn records(&self) -> &[LedgerRecord] {
        &self.records
    }

    /// Insert one record, deduping against any existing record with the
    /// same config hash. Deterministic outputs must agree
    /// ([`StoreError::Conflict`] otherwise — never last-write-wins); on
    /// agreement the stored record is completed with whatever the
    /// incoming one carries that it lacks. Host fields of the incoming
    /// record are quarantined: the stored record keeps its own.
    pub fn insert(&mut self, rec: LedgerRecord) -> Result<InsertOutcome, StoreError> {
        let hash = rec.config_hash();
        let Some(&slot) = self.index.get(&hash) else {
            self.index.insert(hash, self.records.len());
            self.records.push(rec);
            return Ok(InsertOutcome::Inserted);
        };
        let have = &mut self.records[slot];
        let conflict = |field: &'static str, have: String, incoming: String| {
            Err(StoreError::Conflict {
                config_hash: hash,
                field,
                have,
                incoming,
            })
        };
        if have.stats_digest != rec.stats_digest {
            return conflict(
                "stats_digest",
                format!("{:016x}", have.stats_digest),
                format!("{:016x}", rec.stats_digest),
            );
        }
        if let (Some(a), Some(b)) = (have.total_cycles, rec.total_cycles) {
            if a != b {
                return conflict("total_cycles", a.to_string(), b.to_string());
            }
        }
        if let (Some(a), Some(b)) = (have.sb_fingerprint, rec.sb_fingerprint) {
            if a != b {
                return conflict("sb_fingerprint", format!("{a:016x}"), format!("{b:016x}"));
            }
        }
        // Efficacy counters are deterministic: every counter present on
        // both sides must agree (a profiled and an unprofiled run of the
        // same config legitimately differ in *coverage*, never in value).
        for (k, a) in &have.efficacy {
            if let Some((_, b)) = rec.efficacy.iter().find(|(rk, _)| rk == k) {
                if a != b {
                    let (a, b) = (a.to_string(), b.to_string());
                    return Err(StoreError::Conflict {
                        config_hash: hash,
                        field: "efficacy",
                        have: format!("{k}={a}"),
                        incoming: format!("{k}={b}"),
                    });
                }
            }
        }
        // Agreement: complete the survivor.
        if have.total_cycles.is_none() {
            have.total_cycles = rec.total_cycles;
        }
        if have.sb_fingerprint.is_none() {
            have.sb_fingerprint = rec.sb_fingerprint;
        }
        if have.efficacy.is_empty() {
            have.efficacy = rec.efficacy;
        }
        if have.result.is_none() {
            have.result = rec.result;
        }
        Ok(InsertOutcome::Merged)
    }

    /// Insert every record of `other` (see [`LedgerStore::insert`]).
    /// Returns `(inserted, merged)` counts.
    pub fn merge(
        &mut self,
        other: impl IntoIterator<Item = LedgerRecord>,
    ) -> Result<(usize, usize), StoreError> {
        let (mut inserted, mut merged) = (0, 0);
        for rec in other {
            match self.insert(rec)? {
                InsertOutcome::Inserted => inserted += 1,
                InsertOutcome::Merged => merged += 1,
            }
        }
        Ok((inserted, merged))
    }

    /// Strict load of a JSONL ledger into a fresh store: any corrupted,
    /// truncated or schema-skewed line fails with its 1-based line
    /// number, and output conflicts between records hard-fail.
    pub fn load(path: &Path) -> Result<LedgerStore, StoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        let mut store = LedgerStore::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = LedgerRecord::from_json_str(line)
                .map_err(|msg| StoreError::Parse { line: i + 1, msg })?;
            store.insert(rec)?;
        }
        Ok(store)
    }

    /// Tolerant load for workspace cache files: lines that fail to
    /// *parse* (e.g. a line truncated by an interrupted writer) are
    /// quarantined into the report instead of failing the load. Output
    /// conflicts between well-formed records still hard-fail — a
    /// readable record with a wrong result is corruption, not noise.
    /// A missing file loads as an empty store.
    pub fn load_tolerant(path: &Path) -> Result<(LedgerStore, LoadReport), StoreError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
        };
        let mut store = LedgerStore::new();
        let mut report = LoadReport::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match LedgerRecord::from_json_str(line) {
                Ok(rec) => {
                    store.insert(rec)?;
                    report.accepted += 1;
                }
                Err(msg) => report.quarantined.push(format!("line {}: {msg}", i + 1)),
            }
        }
        Ok((store, report))
    }

    /// The canonical serialization: one line per config hash, stably
    /// sorted by hash (ties cannot occur — the hash is the key). This is
    /// the format the committed `BENCH_ledger.jsonl` is kept in, so
    /// re-running `bench_baseline` on an unchanged simulator produces a
    /// byte-identical file.
    pub fn canonical_jsonl(&self) -> String {
        let mut order: Vec<&LedgerRecord> = self.records.iter().collect();
        order.sort_by_key(|r| r.config_hash());
        let mut out = String::new();
        for rec in order {
            out.push_str(&rec.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Write [`LedgerStore::canonical_jsonl`] to `path` (parent
    /// directories created).
    pub fn write_canonical(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.canonical_jsonl())
    }

    /// Total simulated cycles summed over records that carry the field
    /// (a cheap headline for reports).
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().filter_map(|r| r.total_cycles).sum()
    }

    /// Hashes held, sorted (the join axis of `ledger_diff`).
    pub fn hashes(&self) -> Vec<u64> {
        let mut h: Vec<u64> = self.index.keys().copied().collect();
        h.sort_unstable();
        h
    }
}

/// Strip every `host_*` field from a parsed ledger JSON object — the
/// quarantine helper for consumers that compare records across machines.
pub fn strip_host_fields(doc: &Json) -> Json {
    match doc {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !k.starts_with("host_"))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, digest: u64) -> LedgerRecord {
        LedgerRecord {
            binary: "test".to_string(),
            workload: workload.to_string(),
            engine: "sparse".to_string(),
            backend: "fixed".to_string(),
            config: vec![("n_cores".to_string(), "4".to_string())],
            env: Vec::new(),
            stats_digest: digest,
            total_cycles: Some(1000),
            sb_fingerprint: None,
            efficacy: Vec::new(),
            result: None,
            host: vec![("wall_ns".to_string(), Json::Int(42))],
        }
    }

    #[test]
    fn insert_dedupes_and_completes() {
        let mut store = LedgerStore::new();
        assert_eq!(
            store.insert(record("a", 7)).unwrap(),
            InsertOutcome::Inserted
        );
        // Same config, same outputs, extra information: merged in.
        let mut richer = record("a", 7);
        richer.sb_fingerprint = Some(0xabc);
        richer.efficacy = vec![("win.fired".to_string(), 3)];
        richer.result = Some(Json::Int(1));
        richer.host = vec![("wall_ns".to_string(), Json::Int(99))];
        assert_eq!(store.insert(richer).unwrap(), InsertOutcome::Merged);
        assert_eq!(store.len(), 1);
        let survivor = store.get(record("a", 7).config_hash()).unwrap();
        assert_eq!(survivor.sb_fingerprint, Some(0xabc));
        assert_eq!(survivor.efficacy.len(), 1);
        assert!(survivor.result.is_some());
        // Host fields are quarantined: the first record's survive.
        assert_eq!(survivor.host, vec![("wall_ns".to_string(), Json::Int(42))]);
    }

    #[test]
    fn conflicting_digests_hard_fail() {
        let mut store = LedgerStore::new();
        store.insert(record("a", 7)).unwrap();
        let err = store.insert(record("a", 8)).unwrap_err();
        match err {
            StoreError::Conflict { field, .. } => assert_eq!(field, "stats_digest"),
            other => panic!("expected Conflict, got {other:?}"),
        }
        // The store is unchanged — no last-write-wins.
        assert_eq!(
            store
                .get(record("a", 7).config_hash())
                .unwrap()
                .stats_digest,
            7
        );
    }

    #[test]
    fn conflicting_shared_efficacy_hard_fails() {
        let mut store = LedgerStore::new();
        let mut a = record("a", 7);
        a.efficacy = vec![("win.fired".to_string(), 3)];
        store.insert(a).unwrap();
        let mut b = record("a", 7);
        b.efficacy = vec![("win.fired".to_string(), 4)];
        let err = store.insert(b).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Conflict {
                    field: "efficacy",
                    ..
                }
            ),
            "{err:?}"
        );
        // Disjoint coverage is fine (profiled vs unprofiled run).
        let mut c = record("a", 7);
        c.efficacy = Vec::new();
        assert_eq!(store.insert(c).unwrap(), InsertOutcome::Merged);
    }

    #[test]
    fn canonical_jsonl_is_sorted_and_stable() {
        let mut store = LedgerStore::new();
        store.insert(record("zzz", 1)).unwrap();
        store.insert(record("aaa", 2)).unwrap();
        store.insert(record("mmm", 3)).unwrap();
        let text = store.canonical_jsonl();
        // Parse back: same records, hash-sorted.
        let hashes: Vec<u64> = text
            .lines()
            .map(|l| LedgerRecord::from_json_str(l).unwrap().config_hash())
            .collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        assert_eq!(hashes, sorted);
        // Round trip is byte-stable.
        let mut store2 = LedgerStore::new();
        for line in text.lines() {
            store2
                .insert(LedgerRecord::from_json_str(line).unwrap())
                .unwrap();
        }
        assert_eq!(store2.canonical_jsonl(), text);
    }

    #[test]
    fn tolerant_load_quarantines_corrupt_lines() {
        let dir = std::env::temp_dir().join("hwgc_store_tolerant");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let good = record("a", 7).to_json().to_string_compact();
        let truncated = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}\nnot json at all\n{truncated}\n")).unwrap();
        let (store, report) = LedgerStore::load_tolerant(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined.len(), 2);
        assert!(report.quarantined[0].starts_with("line 2:"));
        assert!(report.quarantined[1].starts_with("line 3:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strict_load_rejects_corrupt_and_skewed_lines() {
        let dir = std::env::temp_dir().join("hwgc_store_strict");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        // Schema-version skew: a v2 record must be rejected with its
        // line number, not silently misread.
        let skewed = record("a", 7)
            .to_json()
            .to_string_compact()
            .replace("hwgc-ledger-v1", "hwgc-ledger-v2");
        std::fs::write(&path, format!("{skewed}\n")).unwrap();
        let err = LedgerStore::load(&path).unwrap_err();
        match &err {
            StoreError::Parse { line, msg } => {
                assert_eq!(*line, 1);
                assert!(msg.contains("schema"), "{msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        // Missing file: strict load is an Io error, tolerant load is an
        // empty store.
        assert!(matches!(
            LedgerStore::load(&dir.join("nope.jsonl")),
            Err(StoreError::Io(_))
        ));
        let (empty, report) = LedgerStore::load_tolerant(&dir.join("nope.jsonl")).unwrap();
        assert!(empty.is_empty());
        assert_eq!(report, LoadReport::default());
    }

    #[test]
    fn strip_host_quarantines() {
        let doc = record("a", 7).to_json();
        let stripped = strip_host_fields(&doc);
        let Json::Obj(fields) = &stripped else {
            panic!()
        };
        assert!(fields.iter().all(|(k, _)| !k.starts_with("host_")));
        assert!(stripped.get("stats_digest").is_some());
    }
}
