//! What-if bottleneck prediction: analytically estimate the speedup of
//! relaxing one synchronization resource, from the blame attribution
//! alone — no re-run.
//!
//! The model (assumptions and limits in DESIGN.md §7): relaxing a
//! resource deletes the stall cycles blamed on it. A deleted stall cycle
//! shortens the run only insofar as the stalled core was pacing the
//! collection, and with the worklist redistributing work the cores
//! finish near-simultaneously, so the wall-clock reduction is estimated
//! as the **mean per-core removed cycles**:
//!
//! ```text
//! predicted_cycles = total − mean_i(removed_i)
//! ```
//!
//! Removed cycles per resource:
//!
//! * **`multiport_sb`** — scan/free-lock stall cycles blamed on a
//!   *write-port conflict* (`write_port:*`). Extra write ports delete
//!   exactly those; cycles blamed on a genuine holder stay (the lock
//!   still enforces claim atomicity). Matches the engine's
//!   `GcConfig::multiport_sb` ablation.
//! * **`dram_bandwidth_plus_1`** — a `1/(b+1)` share of the cycles
//!   blamed on `dram.queue`: with `b` service slots a queued request
//!   waits `⌈pos/b⌉` service rounds, so one more slot scales queue waits
//!   by `b/(b+1)`. Matches re-running with `MemConfig.bandwidth + 1`.
//! * **`header_fifo_depth`** — cycles blamed on `fifo.overflow` (header
//!   stores that exist only because the FIFO was full) plus
//!   `fifo.reload` (gray-header re-loads in `ScanHeaderWait`, issued
//!   only on a FIFO miss), whether charged directly or at the end of a
//!   lock convoy's cause chain. A FIFO deep enough never to overflow
//!   has a 100% hit rate, so both vanish. On top of the direct match,
//!   each lock class's *residual* queueing cycles (`write_port:*`
//!   retries and `held:*` cycles whose chain does not end at a FIFO
//!   fault) are scaled down by the class's FIFO-chained share of holder
//!   blame: when the critical sections that built the convoy were
//!   mostly stretched by FIFO faults, the convoy's secondary queueing
//!   dissolves with them. Matches re-running with a large
//!   `MemConfig.header_fifo_capacity`.
//!
//! The predictor is validated against real ablation re-runs by
//! `crates/check`'s differential test (15% relative-error budget on the
//! predicted speedup).

use crate::attr::BlameReport;

/// Run facts the predictor needs beyond the blame matrix.
#[derive(Debug, Clone, Copy)]
pub struct WhatIfInputs {
    /// Wall-clock cycles of the analyzed run.
    pub total_cycles: u64,
    /// GC cores in the run.
    pub n_cores: usize,
    /// The DRAM's configured service slots per cycle
    /// (`MemConfig.bandwidth`).
    pub dram_bandwidth: u32,
}

/// One resource-relaxation estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Stable resource key (also the differential test's re-run label).
    pub resource: &'static str,
    /// Human-readable description of the relaxation.
    pub description: &'static str,
    /// Stall cycles the relaxation deletes, per core.
    pub removed_per_core: Vec<u64>,
    /// Estimated wall-clock cycles after the relaxation.
    pub predicted_cycles: u64,
    /// `total_cycles / predicted_cycles`.
    pub predicted_speedup: f64,
}

fn finish(
    inputs: &WhatIfInputs,
    resource: &'static str,
    description: &'static str,
    removed_per_core: Vec<u64>,
) -> Prediction {
    let n = removed_per_core.len().max(1);
    let reduction = removed_per_core.iter().sum::<u64>() / n as u64;
    let predicted_cycles = inputs.total_cycles.saturating_sub(reduction).max(1);
    Prediction {
        resource,
        description,
        removed_per_core,
        predicted_cycles,
        predicted_speedup: inputs.total_cycles as f64 / predicted_cycles as f64,
    }
}

fn predict_one(
    blame: &BlameReport,
    inputs: &WhatIfInputs,
    resource: &'static str,
    description: &'static str,
    matches: impl Fn(&str, &str) -> bool,
    fraction: f64,
) -> Prediction {
    let n = inputs.n_cores.max(1);
    let removed_per_core: Vec<u64> = (0..n)
        .map(|i| (blame.per_core_matching(i, &matches) as f64 * fraction).round() as u64)
        .collect();
    finish(inputs, resource, description, removed_per_core)
}

/// Lock classes whose queueing can convoy behind a FIFO-stretched
/// critical section.
const LOCK_CLASSES: [&str; 3] = ["scan_lock", "free_lock", "header_lock"];

/// Does this cause chain end at a FIFO fault (`fifo.overflow` /
/// `fifo.reload`), directly or through a `held:coreJ-><class>/...`
/// convoy?
fn is_fifo_cause(cause: &str) -> bool {
    cause
        .rsplit('/')
        .next()
        .is_some_and(|tail| tail.starts_with("fifo."))
}

fn split_key(key: &str) -> (&str, &str) {
    key.split_once('/').unwrap_or((key, ""))
}

fn predict_fifo(blame: &BlameReport, inputs: &WhatIfInputs) -> Prediction {
    let n = inputs.n_cores.max(1);
    // Per lock class, the FIFO-chained share of holder-attributed
    // blame: fifo-chained `held:*` cycles over all `held:*` cycles.
    let mut fifo_held = std::collections::BTreeMap::<&str, u64>::new();
    let mut all_held = std::collections::BTreeMap::<&str, u64>::new();
    for per_core in &blame.per_core {
        for (key, &cycles) in per_core {
            let (class, cause) = split_key(key);
            if LOCK_CLASSES.contains(&class) && cause.starts_with("held:") {
                *all_held.entry(class).or_default() += cycles;
                if is_fifo_cause(cause) {
                    *fifo_held.entry(class).or_default() += cycles;
                }
            }
        }
    }
    let frac = |class: &str| -> f64 {
        let all = all_held.get(class).copied().unwrap_or(0);
        if all == 0 {
            return 0.0;
        }
        fifo_held.get(class).copied().unwrap_or(0) as f64 / all as f64
    };
    let removed_per_core: Vec<u64> = (0..n)
        .map(|i| {
            let mut removed = 0.0;
            if let Some(per_core) = blame.per_core.get(i) {
                for (key, &cycles) in per_core {
                    let (class, cause) = split_key(key);
                    if is_fifo_cause(cause) {
                        removed += cycles as f64;
                    } else if LOCK_CLASSES.contains(&class)
                        && (cause.starts_with("held:") || cause.starts_with("write_port:"))
                    {
                        removed += cycles as f64 * frac(class);
                    }
                }
            }
            removed.round() as u64
        })
        .collect();
    finish(
        inputs,
        "header_fifo_depth",
        "header FIFO deep enough to never overflow",
        removed_per_core,
    )
}

/// Predict the speedup of relaxing each modeled resource. Order is
/// stable: `multiport_sb`, `dram_bandwidth_plus_1`, `header_fifo_depth`.
pub fn predict(blame: &BlameReport, inputs: &WhatIfInputs) -> Vec<Prediction> {
    let b = inputs.dram_bandwidth.max(1) as f64;
    vec![
        predict_one(
            blame,
            inputs,
            "multiport_sb",
            "scan/free register write port per core (no write-port conflicts)",
            |class, cause| {
                (class == "scan_lock" || class == "free_lock") && cause.starts_with("write_port")
            },
            1.0,
        ),
        predict_one(
            blame,
            inputs,
            "dram_bandwidth_plus_1",
            "one more DRAM service slot per cycle",
            |_, cause| cause == "dram.queue",
            1.0 / (b + 1.0),
        ),
        predict_fifo(blame, inputs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::ClassBlame;
    use std::collections::BTreeMap;

    fn blame(per_core: Vec<Vec<(&str, u64)>>) -> BlameReport {
        BlameReport {
            classes: Vec::<ClassBlame>::new(),
            edges: BTreeMap::new(),
            per_core: per_core
                .into_iter()
                .map(|m| {
                    m.into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect::<BTreeMap<_, _>>()
                })
                .collect(),
        }
    }

    fn inputs(total: u64, n: usize) -> WhatIfInputs {
        WhatIfInputs {
            total_cycles: total,
            n_cores: n,
            dram_bandwidth: 4,
        }
    }

    #[test]
    fn multiport_counts_only_write_port_conflicts() {
        let b = blame(vec![
            vec![
                ("scan_lock/write_port:core1", 100),
                ("scan_lock/held:core1", 400),
                ("free_lock/write_port:core1", 20),
            ],
            vec![("scan_lock/write_port:core0", 60)],
        ]);
        let preds = predict(&b, &inputs(1000, 2));
        let p = &preds[0];
        assert_eq!(p.resource, "multiport_sb");
        assert_eq!(p.removed_per_core, vec![120, 60]);
        // Mean removal: (120 + 60) / 2 = 90.
        assert_eq!(p.predicted_cycles, 910);
        assert!((p.predicted_speedup - 1000.0 / 910.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scales_queue_share() {
        let b = blame(vec![vec![
            ("body_load/dram.queue", 500),
            ("body_load/dram.latency", 300),
        ]]);
        let preds = predict(&b, &inputs(2000, 1));
        let p = &preds[1];
        assert_eq!(p.resource, "dram_bandwidth_plus_1");
        // 500 / (4 + 1) = 100 removed; latency cycles untouched.
        assert_eq!(p.removed_per_core, vec![100]);
        assert_eq!(p.predicted_cycles, 1900);
    }

    #[test]
    fn fifo_depth_removes_overflow_cycles() {
        let b = blame(vec![vec![
            ("header_store/fifo.overflow", 80),
            ("header_store/dram.latency", 40),
        ]]);
        let preds = predict(&b, &inputs(500, 1));
        let p = &preds[2];
        assert_eq!(p.resource, "header_fifo_depth");
        assert_eq!(p.removed_per_core, vec![80]);
        assert_eq!(p.predicted_cycles, 420);
    }

    #[test]
    fn fifo_depth_scales_convoyed_lock_queueing() {
        // 300 of 400 held cycles on the scan lock chain to a FIFO
        // fault (frac = 0.75), so 75% of the residual held/write-port
        // queueing dissolves with the convoy; the free lock has no
        // FIFO-chained holders and keeps its queueing.
        let b = blame(vec![vec![
            ("scan_lock/held:core1->header_load/fifo.reload", 300),
            ("scan_lock/held:core1", 100),
            ("scan_lock/write_port:core1", 80),
            ("free_lock/write_port:core1", 40),
            ("header_store/fifo.overflow", 50),
        ]]);
        let preds = predict(&b, &inputs(2000, 1));
        let p = &preds[2];
        assert_eq!(p.resource, "header_fifo_depth");
        // 300 + 50 direct, plus 0.75 * (100 + 80) = 135 convoy share.
        assert_eq!(p.removed_per_core, vec![485]);
        assert_eq!(p.predicted_cycles, 2000 - 485);
    }

    #[test]
    fn empty_blame_predicts_no_change() {
        let b = blame(vec![vec![], vec![]]);
        for p in predict(&b, &inputs(100, 2)) {
            assert_eq!(p.predicted_cycles, 100);
            assert!((p.predicted_speedup - 1.0).abs() < 1e-12);
        }
    }
}
