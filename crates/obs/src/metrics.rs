//! The metrics registry: counters, gauges and log2-bucketed histograms
//! with a stable JSON snapshot schema.

use std::collections::BTreeMap;

use crate::json::{Json, JsonError};

/// Snapshot schema identifier. Bump when the JSON layout changes shape
/// (adding new metrics does not require a bump; consumers key by name).
pub const SCHEMA: &str = "hwgc-metrics-v1";

/// Number of log2 buckets. Bucket `i` holds values `v` with
/// `floor(log2(v)) == i - 1` for `v >= 1` (bucket 0 holds `v == 0`), so
/// 65 buckets cover the whole `u64` range.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
///
/// All totals saturate: a hostile `record_n(u64::MAX, u64::MAX)` pins
/// `count`/`sum` at `u64::MAX` instead of wrapping, so derived means are
/// merely clipped rather than garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 1 + v.ilog2() as usize,
        }
    }

    /// Lower bound of bucket `i` (the smallest value it can hold).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical observations (bulk add, e.g. a fast-forward
    /// window replicating `n` stalled cycles). Saturating throughout.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another histogram into this one (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(n);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the observed values, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate of the `p`-quantile (`0.0 < p <= 1.0`), if any values
    /// were observed.
    ///
    /// The estimate is the **upper edge** of the log2 bucket holding the
    /// rank-`⌈p·count⌉` observation (rank at least 1), clamped into
    /// `[min, max]`. Being an edge it never lies below the true
    /// quantile, and the clamp keeps one-bucket histograms exact, so for
    /// any single-valued distribution every percentile equals that
    /// value.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // Upper edge of bucket i = lower edge of bucket i+1,
                // minus 1 (bucket 64's edge is u64::MAX itself).
                let hi = if i + 1 < BUCKETS {
                    Self::bucket_lo(i + 1) - 1
                } else {
                    u64::MAX
                };
                return Some(hi.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median estimate ([`Self::percentile`] at 0.5).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.5)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Occupied buckets as `(bucket_lo, count)` pairs, sparse.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_lo(i), n))
    }

    pub(crate) fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .map(|(lo, n)| Json::Arr(vec![Json::Int(lo as i128), Json::Int(n as i128)]))
            .collect();
        let mut fields = vec![
            ("count".into(), Json::Int(self.count as i128)),
            ("sum".into(), Json::Int(self.sum as i128)),
        ];
        if self.count > 0 {
            fields.push(("min".into(), Json::Int(self.min as i128)));
            fields.push(("max".into(), Json::Int(self.max as i128)));
        }
        fields.push(("buckets".into(), Json::Arr(buckets)));
        Json::Obj(fields)
    }

    pub(crate) fn from_json(v: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = u64::try_from(v.get("count")?.as_int()?).ok()?;
        h.sum = u64::try_from(v.get("sum")?.as_int()?).ok()?;
        if h.count > 0 {
            h.min = u64::try_from(v.get("min")?.as_int()?).ok()?;
            h.max = u64::try_from(v.get("max")?.as_int()?).ok()?;
        }
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let lo = u64::try_from(pair.first()?.as_int()?).ok()?;
            let n = u64::try_from(pair.get(1)?.as_int()?).ok()?;
            h.buckets[Self::bucket_of(lo)] = n;
        }
        Some(h)
    }
}

/// A named collection of counters, gauges and histograms with a stable,
/// deterministic (sorted-key) JSON snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to the named counter (saturating), creating it at zero.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Set the named gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The named histogram, created empty on first touch.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// The named counter's value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if it exists.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|s| s.as_str())
    }

    /// Snapshot as a JSON value (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i128)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Float(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Snapshot as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parse a snapshot previously produced by [`Self::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<MetricsRegistry, JsonError> {
        let v = Json::parse(text)?;
        let bad = |message| JsonError { offset: 0, message };
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(bad("unknown metrics schema"));
        }
        let mut reg = MetricsRegistry::new();
        if let Some(Json::Obj(fields)) = v.get("counters") {
            for (k, c) in fields {
                let c = c
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or(bad("bad counter"))?;
                reg.counters.insert(k.clone(), c);
            }
        }
        if let Some(Json::Obj(fields)) = v.get("gauges") {
            for (k, g) in fields {
                reg.gauges
                    .insert(k.clone(), g.as_f64().ok_or(bad("bad gauge"))?);
            }
        }
        if let Some(Json::Obj(fields)) = v.get("histograms") {
            for (k, h) in fields {
                reg.histograms.insert(
                    k.clone(),
                    Histogram::from_json(h).ok_or(bad("bad histogram"))?,
                );
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(i)), i);
        }
    }

    #[test]
    fn zero_observation_snapshot() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn single_bucket_saturation() {
        let mut h = Histogram::new();
        // Everything lands in the value==5 bucket; the bucket count must
        // pin at u64::MAX, not wrap.
        h.record_n(5, u64::MAX);
        h.record_n(5, u64::MAX);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(4, u64::MAX)]);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn record_n_overflow_guard() {
        let mut h = Histogram::new();
        h.record_n(u64::MAX, u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.count(), u64::MAX, "count saturates");
        h.record(1);
        assert_eq!(h.sum(), u64::MAX);
        let mut other = Histogram::new();
        other.record_n(2, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX, "merge saturates");
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn percentiles_on_single_valued_histograms_are_exact() {
        let mut h = Histogram::new();
        h.record_n(37, 1000);
        // One bucket: the clamp into [min, max] makes every percentile
        // the exact value, not the bucket edge (63).
        for p in [0.001, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(37), "p={p}");
        }
    }

    #[test]
    fn percentile_rank_rounding_edges() {
        let mut h = Histogram::new();
        // 100 observations: 50 in bucket(1), 50 in bucket(4..=7).
        h.record_n(1, 50);
        h.record_n(5, 50);
        // p=0.5 → rank exactly 50 (ceil(50.0)=50): still in the first
        // bucket, whose upper edge is 1.
        assert_eq!(h.p50(), Some(1));
        // Nudging past the boundary crosses into the 4..=7 bucket; its
        // upper edge (7) is clamped to the observed max (5).
        assert_eq!(h.percentile(0.501), Some(5));
        assert_eq!(h.p95(), Some(5));
        assert_eq!(h.p99(), Some(5));
        // With a larger value recorded, the bucket edge itself reports.
        h.record(40); // bucket 32..=63
        assert_eq!(
            h.percentile(0.6),
            Some(7),
            "edge of 4..=7, max no longer clamps"
        );
        // A tiny p still ranks at least 1 (never rank 0).
        assert_eq!(h.percentile(1e-9), Some(1));
    }

    #[test]
    fn percentile_clamps_to_observed_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(100); // bucket 64..=127, upper edge 127
        assert_eq!(h.p50(), Some(0), "rank 1 of 2, zero bucket");
        // Upper edge 127 exceeds max: clamp to 100.
        assert_eq!(h.p99(), Some(100));
        assert_eq!(h.percentile(1.0), Some(100));
        assert_eq!(Histogram::new().p50(), None, "empty histogram");
    }

    #[test]
    fn registry_json_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("mem.port.header_load.issued", 42);
        reg.counter_add("mem.port.header_load.issued", u64::MAX);
        reg.gauge_set("run.total_cycles", 123456.0);
        reg.histogram("lock.scan.wait_cycles").record_n(7, 3);
        reg.histogram("lock.scan.wait_cycles").record(0);
        reg.histogram("lock.header.hold_cycles"); // empty but present
        let text = reg.to_json_string();
        let back = MetricsRegistry::from_json_str(&text).unwrap();
        assert_eq!(back, reg);
        assert_eq!(back.counter("mem.port.header_load.issued"), Some(u64::MAX));
        assert_eq!(
            back.histogram_ref("lock.scan.wait_cycles").unwrap().count(),
            4
        );
        assert_eq!(
            back.histogram_ref("lock.header.hold_cycles")
                .unwrap()
                .count(),
            0
        );
        // Round-trip of the round-trip is byte-identical (stable schema).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(MetricsRegistry::from_json_str("{\"schema\":\"other\"}").is_err());
        assert!(MetricsRegistry::from_json_str("not json").is_err());
    }
}
