//! Per-run bottleneck report: blame matrix + critical path + what-if
//! predictions, rendered as markdown (for humans) and JSON (for CI and
//! the differential tests).
//!
//! [`RunReport::analyze`] is the one-call entry point the `gc_report`
//! binary uses: replay the recording into a [`RunModel`], attribute
//! every stall cycle, walk the critical path, and run the what-if
//! predictor. [`RunReport::validate`] re-checks the two exactness
//! invariants (blame rows sum to class totals; critical-path classes
//! partition the run).

use crate::attr::{attribute, BlameReport, RunModel};
use crate::chrome::RunMeta;
use crate::critpath::{critical_path, CritPath};
use crate::host::HostProfiler;
use crate::json::Json;
use crate::probe::Recording;
use crate::whatif::{predict, Prediction, WhatIfInputs};

/// JSON schema tag of [`render_report_json`].
pub const REPORT_SCHEMA: &str = "hwgc-report-v1";

/// Host-performance section of a report: the window-engine funnel and
/// engine loop counters from a hostprof run of the same workload, with
/// wall-clock quantities kept strictly apart from the deterministic
/// counters (only the latter may appear in goldens).
#[derive(Debug, Clone, Default)]
pub struct HostSection {
    /// Deterministic counters (sorted by key): `win.*`, `engine.*`.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock timers as `(key, count, total_ns)` — nondeterministic.
    pub timers: Vec<(String, u64, u64)>,
    /// Machine-dependent notes (pool dispatch decisions etc.).
    pub notes: Vec<(String, u64)>,
}

impl HostSection {
    /// Snapshot a profiler into the report-facing form.
    pub fn from_profiler(prof: &HostProfiler) -> HostSection {
        HostSection {
            counters: prof.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            timers: prof
                .timers()
                .map(|(k, t)| (k.to_string(), t.count, t.total_ns))
                .collect(),
            notes: prof.notes().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// The named deterministic counter (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |&(_, v)| v)
    }

    /// The `win.veto.*` rows, heaviest first.
    pub fn vetoes(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("win.veto."))
            .map(|(k, n)| (k.as_str(), *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// One-sentence window-engine verdict: why windows did (not) open on
    /// this workload. This is the committed answer to "why does javac/16c
    /// fire zero windows": the veto counters name the binding constraint.
    pub fn window_explanation(&self) -> String {
        let attempted = self.counter("win.attempted");
        let fired = self.counter("win.fired");
        if fired > 0 {
            return format!(
                "the window engine fired {fired} of {attempted} attempted windows \
                 (median and total lengths in the win.len histogram)."
            );
        }
        if attempted == 0 {
            return "the window engine never found an eligible instant: no all-parked \
                    moment had a core parked on a body load inside a pure copy run \
                    with two or more words left, so no plan was ever attempted."
                .to_string();
        }
        match self.vetoes().first() {
            Some(&(reason, n)) => format!(
                "the window engine attempted {attempted} windows and fired none; the \
                 dominant veto was {reason} ({n} of {attempted}), i.e. {}",
                veto_gloss(reason)
            ),
            None => format!(
                "the window engine attempted {attempted} windows and fired none, \
                 with no veto recorded (unexpected — counters may be incomplete)."
            ),
        }
    }
}

/// Human gloss for a `win.veto.*` counter key.
fn veto_gloss(key: &str) -> &'static str {
    match key {
        "win.veto.no_bandwidth" => "the memory model has zero bandwidth, so windows never open.",
        "win.veto.mem_not_ready" => {
            "the memory system was never in plain flight at an all-parked instant \
             (queued, completed or blocked transactions pin the cycle-by-cycle loop)."
        }
        "win.veto.retire_bound" => {
            "a non-kernel core's imminent transaction retirement kept capping the \
             window below the minimum length — other cores wake too soon for a \
             safe horizon to exist."
        }
        "win.veto.no_kernels" => {
            "no parked core qualified as a pure copy-stream kernel (header ports \
             busy, or the copy run too short)."
        }
        "win.veto.stream_bound" => {
            "the copy streams themselves were too short: the final word's consume \
             capped the window below the minimum length."
        }
        "win.veto.clean_cut" => {
            "feasibility truncation and the clean-cut walk left less than the \
             minimum window length."
        }
        "win.veto.no_words" => "no stream completed a single word inside the legal window.",
        _ => "an unrecognized veto reason.",
    }
}

/// The complete analysis of one recorded run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload / preset label.
    pub name: String,
    /// GC cores in the run.
    pub n_cores: usize,
    /// Wall-clock cycles.
    pub total_cycles: u64,
    /// Blame attribution (per-class cause rows, contention edges).
    pub blame: BlameReport,
    /// Critical-path partition of the run.
    pub path: CritPath,
    /// What-if resource-relaxation estimates.
    pub predictions: Vec<Prediction>,
    /// Host-performance section (window funnel, engine loop, host time),
    /// present when the harness also ran the workload under a hostprof.
    pub host: Option<HostSection>,
}

impl RunReport {
    /// Analyze a recording end to end. `dram_bandwidth` is the run's
    /// `MemConfig.bandwidth` (the what-if predictor needs it).
    pub fn analyze(recording: &Recording, meta: &RunMeta, dram_bandwidth: u32) -> RunReport {
        let model = RunModel::build(recording, meta);
        let blame = attribute(&model);
        let path = critical_path(&model);
        let predictions = predict(
            &blame,
            &WhatIfInputs {
                total_cycles: meta.total_cycles,
                n_cores: meta.n_cores,
                dram_bandwidth,
            },
        );
        RunReport {
            name: meta.name.clone(),
            n_cores: meta.n_cores,
            total_cycles: meta.total_cycles,
            blame,
            path,
            predictions,
            host: None,
        }
    }

    /// Attach the host-performance section from a hostprof run of the
    /// same workload.
    pub fn with_host(mut self, host: HostSection) -> RunReport {
        self.host = Some(host);
        self
    }

    /// Re-check the exactness invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.blame.validate()?;
        self.path.validate()
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Render the report as markdown.
pub fn render_report_markdown(r: &RunReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Bottleneck report: {} ({} cores, {} cycles)\n",
        r.name, r.n_cores, r.total_cycles
    );

    let _ = writeln!(out, "## Stall blame matrix\n");
    let _ = writeln!(out, "| class | cycles | causes |");
    let _ = writeln!(out, "|---|---:|---|");
    for class in &r.blame.classes {
        let mut causes: Vec<(&String, &u64)> = class.causes.iter().collect();
        causes.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let cells: Vec<String> = causes
            .iter()
            .map(|(cause, n)| format!("{cause} {n} ({:.1}%)", pct(**n, class.total)))
            .collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            class.name,
            class.total,
            cells.join(", ")
        );
    }

    let _ = writeln!(out, "\n## Core contention graph\n");
    if r.blame.edges.is_empty() {
        let _ = writeln!(out, "(no lock contention recorded)");
    } else {
        let _ = writeln!(out, "| waiter | blocker | cycles |");
        let _ = writeln!(out, "|---:|---:|---:|");
        let mut edges: Vec<(&(u32, u32), &u64)> = r.blame.edges.iter().collect();
        edges.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (&(i, j), n) in edges {
            let _ = writeln!(out, "| core{i} | core{j} | {n} |");
        }
    }

    let _ = writeln!(out, "\n## Critical path ({} hops)\n", r.path.hops);
    let _ = writeln!(out, "| class | cycles | % of run |");
    let _ = writeln!(out, "|---|---:|---:|");
    let mut classes: Vec<(&String, &u64)> = r.path.classes.iter().collect();
    classes.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    for (class, n) in classes {
        let _ = writeln!(out, "| {class} | {n} | {:.1}% |", pct(*n, r.path.total));
    }

    let _ = writeln!(out, "\n## What-if predictions\n");
    let _ = writeln!(
        out,
        "| resource | removed cycles (mean/core) | predicted cycles | predicted speedup |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|");
    for p in &r.predictions {
        let n = p.removed_per_core.len().max(1) as u64;
        let mean = p.removed_per_core.iter().sum::<u64>() / n;
        let _ = writeln!(
            out,
            "| {} | {mean} | {} | {:.4}× |",
            p.resource, p.predicted_cycles, p.predicted_speedup
        );
    }

    if let Some(host) = &r.host {
        let _ = writeln!(out, "\n## Host performance\n");
        let _ = writeln!(out, "{}\n", host.window_explanation());
        let _ = writeln!(out, "### Window funnel (deterministic)\n");
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---:|");
        for (k, v) in &host.counters {
            if k.starts_with("win.") {
                let _ = writeln!(out, "| {k} | {v} |");
            }
        }
        let _ = writeln!(out, "\n### Engine loop (deterministic)\n");
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---:|");
        for (k, v) in &host.counters {
            if !k.starts_with("win.") {
                let _ = writeln!(out, "| {k} | {v} |");
            }
        }
        if !host.timers.is_empty() {
            let _ = writeln!(
                out,
                "\n### Host time (wall clock — not comparable across runs)\n"
            );
            let _ = writeln!(out, "| timer | count | total |");
            let _ = writeln!(out, "|---|---:|---:|");
            for (k, count, total_ns) in &host.timers {
                let _ = writeln!(out, "| {k} | {count} | {:.3} ms |", *total_ns as f64 / 1e6);
            }
        }
        if !host.notes.is_empty() {
            let _ = writeln!(out, "\n### Pool notes (machine-dependent)\n");
            let _ = writeln!(out, "| note | value |");
            let _ = writeln!(out, "|---|---:|");
            for (k, v) in &host.notes {
                let _ = writeln!(out, "| {k} | {v} |");
            }
        }
    }
    out
}

/// Render the report as deterministic JSON (`hwgc-report-v1`).
pub fn render_report_json(r: &RunReport) -> String {
    let classes = r
        .blame
        .classes
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(c.name.to_string())),
                ("total".to_string(), Json::Int(c.total as i128)),
                (
                    "causes".to_string(),
                    Json::Obj(
                        c.causes
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let edges = r
        .blame
        .edges
        .iter()
        .map(|(&(i, j), &n)| {
            Json::Obj(vec![
                ("waiter".to_string(), Json::Int(i as i128)),
                ("blocker".to_string(), Json::Int(j as i128)),
                ("cycles".to_string(), Json::Int(n as i128)),
            ])
        })
        .collect();
    let path_classes = r
        .path
        .classes
        .iter()
        .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
        .collect();
    let predictions = r
        .predictions
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("resource".to_string(), Json::Str(p.resource.to_string())),
                (
                    "description".to_string(),
                    Json::Str(p.description.to_string()),
                ),
                (
                    "removed_per_core".to_string(),
                    Json::Arr(
                        p.removed_per_core
                            .iter()
                            .map(|&n| Json::Int(n as i128))
                            .collect(),
                    ),
                ),
                (
                    "predicted_cycles".to_string(),
                    Json::Int(p.predicted_cycles as i128),
                ),
                (
                    "predicted_speedup".to_string(),
                    Json::Float(p.predicted_speedup),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".to_string(), Json::Str(REPORT_SCHEMA.to_string())),
        ("name".to_string(), Json::Str(r.name.clone())),
        ("n_cores".to_string(), Json::Int(r.n_cores as i128)),
        (
            "total_cycles".to_string(),
            Json::Int(r.total_cycles as i128),
        ),
        (
            "blame".to_string(),
            Json::Obj(vec![
                ("classes".to_string(), Json::Arr(classes)),
                ("edges".to_string(), Json::Arr(edges)),
            ]),
        ),
        (
            "critical_path".to_string(),
            Json::Obj(vec![
                ("classes".to_string(), Json::Obj(path_classes)),
                ("hops".to_string(), Json::Int(r.path.hops as i128)),
                ("total".to_string(), Json::Int(r.path.total as i128)),
            ]),
        ),
        ("whatif".to_string(), Json::Arr(predictions)),
    ];
    if let Some(host) = &r.host {
        // The deterministic counters and the wall-clock quantities stay in
        // separate sub-objects; anything under "host_time" must never be
        // compared across runs or committed as a golden.
        fields.push((
            "host".to_string(),
            Json::Obj(vec![
                (
                    "explanation".to_string(),
                    Json::Str(host.window_explanation()),
                ),
                (
                    "counters".to_string(),
                    Json::Obj(
                        host.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                            .collect(),
                    ),
                ),
                (
                    "host_time".to_string(),
                    Json::Obj(vec![
                        (
                            "timers".to_string(),
                            Json::Obj(
                                host.timers
                                    .iter()
                                    .map(|(k, count, total_ns)| {
                                        (
                                            k.clone(),
                                            Json::Obj(vec![
                                                ("count".to_string(), Json::Int(*count as i128)),
                                                (
                                                    "total_ns".to_string(),
                                                    Json::Int(*total_ns as i128),
                                                ),
                                            ]),
                                        )
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "notes".to_string(),
                            Json::Obj(
                                host.notes
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            ]),
        ));
    }
    Json::Obj(fields).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::reason_idx;
    use crate::event::OwnedEvent;
    use hwgc_sync::{SbEvent, SbEventRecord};

    fn recording() -> Recording {
        let sb = |cycle, event| (cycle, OwnedEvent::Sb(SbEventRecord { cycle, event }));
        Recording {
            events: vec![
                (
                    2,
                    OwnedEvent::Phase {
                        name: "scan",
                        begin: true,
                    },
                ),
                (
                    3,
                    OwnedEvent::CoreState {
                        core: 0,
                        state: 0,
                        name: "Poll",
                    },
                ),
                (
                    3,
                    OwnedEvent::CoreState {
                        core: 1,
                        state: 0,
                        name: "Poll",
                    },
                ),
                sb(10, SbEvent::AcquireScan { core: 0 }),
                sb(11, SbEvent::FailScan { core: 1 }),
                sb(12, SbEvent::FailScan { core: 1 }),
                sb(13, SbEvent::ReleaseScan { core: 0 }),
                (
                    12,
                    OwnedEvent::StallSpan {
                        core: 1,
                        reason: reason_idx::SCAN_LOCK,
                        name: "scan_lock",
                        since: 11,
                        len: 2,
                    },
                ),
                (
                    18,
                    OwnedEvent::CoreState {
                        core: 0,
                        state: 14,
                        name: "Done",
                    },
                ),
                (
                    20,
                    OwnedEvent::CoreState {
                        core: 1,
                        state: 14,
                        name: "Done",
                    },
                ),
            ],
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            name: "unit".to_string(),
            n_cores: 2,
            total_cycles: 20,
        }
    }

    #[test]
    fn analyze_produces_valid_report() {
        let report = RunReport::analyze(&recording(), &meta(), 10);
        report.validate().unwrap();
        assert_eq!(report.blame.class_total("scan_lock"), 2);
        assert_eq!(report.path.total, 20);
        assert_eq!(report.predictions.len(), 3);
    }

    #[test]
    fn markdown_contains_all_sections() {
        let report = RunReport::analyze(&recording(), &meta(), 10);
        let md = render_report_markdown(&report);
        for section in [
            "# Bottleneck report: unit (2 cores, 20 cycles)",
            "## Stall blame matrix",
            "## Core contention graph",
            "## Critical path",
            "## What-if predictions",
            "scan_lock",
            "multiport_sb",
            "dram_bandwidth_plus_1",
            "header_fifo_depth",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
    }

    #[test]
    fn json_round_trips_and_carries_schema() {
        let report = RunReport::analyze(&recording(), &meta(), 10);
        let text = render_report_json(&report);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(doc.get("total_cycles").and_then(Json::as_int), Some(20));
        let classes = doc
            .get("blame")
            .and_then(|b| b.get("classes"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!classes.is_empty());
        // Row sums are exact in the serialized form too.
        for class in classes {
            let total = class.get("total").and_then(Json::as_int).unwrap();
            let causes = match class.get("causes") {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(_, v)| v.as_int().unwrap())
                    .sum::<i128>(),
                _ => panic!("causes must be an object"),
            };
            assert_eq!(total, causes);
        }
        let whatif = doc.get("whatif").and_then(Json::as_arr).unwrap();
        assert_eq!(whatif.len(), 3);
    }

    #[test]
    fn host_section_renders_and_explains_zero_windows() {
        let host = HostSection {
            counters: vec![
                ("engine.cycles_executed".to_string(), 1234),
                ("win.attempted".to_string(), 40),
                ("win.veto.mem_not_ready".to_string(), 5),
                ("win.veto.retire_bound".to_string(), 35),
            ],
            timers: vec![("phase.steady".to_string(), 1, 2_500_000)],
            notes: vec![("pool.dispatches".to_string(), 0)],
        };
        // Zero fired: the explanation names the dominant veto.
        let expl = host.window_explanation();
        assert!(expl.contains("win.veto.retire_bound"), "{expl}");
        assert!(expl.contains("fired none"), "{expl}");
        let report = RunReport::analyze(&recording(), &meta(), 10).with_host(host);
        let md = render_report_markdown(&report);
        for section in [
            "## Host performance",
            "### Window funnel (deterministic)",
            "win.veto.retire_bound",
            "### Engine loop (deterministic)",
            "engine.cycles_executed",
            "### Host time (wall clock",
            "phase.steady",
            "pool.dispatches",
        ] {
            assert!(md.contains(section), "missing {section:?} in:\n{md}");
        }
        let doc = Json::parse(&render_report_json(&report)).unwrap();
        let host_doc = doc.get("host").unwrap();
        assert_eq!(
            host_doc
                .get("counters")
                .and_then(|c| c.get("win.attempted"))
                .and_then(Json::as_int),
            Some(40)
        );
        // Wall clock lives only under host_time.
        assert!(host_doc.get("host_time").is_some());
        assert!(host_doc
            .get("counters")
            .and_then(|c| c.get("phase.steady"))
            .is_none());
    }

    #[test]
    fn fired_windows_change_the_explanation() {
        let host = HostSection {
            counters: vec![
                ("win.attempted".to_string(), 10),
                ("win.fired".to_string(), 7),
            ],
            ..HostSection::default()
        };
        let expl = host.window_explanation();
        assert!(expl.contains("fired 7 of 10"), "{expl}");
        // Never-eligible runs are distinguished from vetoed runs.
        let idle = HostSection::default();
        assert!(idle
            .window_explanation()
            .contains("never found an eligible instant"));
    }

    #[test]
    fn empty_recording_reports_cleanly() {
        let report = RunReport::analyze(
            &Recording::default(),
            &RunMeta {
                name: "empty".to_string(),
                n_cores: 1,
                total_cycles: 0,
            },
            10,
        );
        report.validate().unwrap();
        let md = render_report_markdown(&report);
        assert!(md.contains("no lock contention recorded"));
        let _ = render_report_json(&report);
    }
}
