//! The structured run ledger: one JSONL record per simulation, the
//! provenance substrate the ROADMAP's content-addressed result cache and
//! autopilot key on.
//!
//! Every harness binary can append a [`LedgerRecord`] per run: which
//! binary ran which workload under which configuration (engine, backend,
//! env knobs), a digest of the resulting `GcStats`, optionally the SB
//! event-stream fingerprint, the deterministic efficacy counters from
//! `hostprof`, and — clearly separated — nondeterministic host timings.
//!
//! The **config hash** ([`LedgerRecord::config_hash`]) is the
//! content-address: FNV-1a over the *sorted* configuration key/value
//! pairs plus workload, engine and backend. Field order never matters
//! (pairs are sorted inside the hash), and no output or wall-clock field
//! participates — two runs of the same configuration hash identically no
//! matter how long they took or what they produced. Host-timing fields
//! are quarantined by construction: they live in
//! [`LedgerRecord::host`] and serialize under keys prefixed `host_`.

use std::io::Write as _;
use std::path::Path;

use crate::json::{Json, JsonError};

/// JSON schema tag of [`LedgerRecord::to_json`].
pub const LEDGER_SCHEMA: &str = "hwgc-ledger-v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One run's provenance record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerRecord {
    /// Harness binary that produced the run (`bench_baseline`, …).
    pub binary: String,
    /// Workload / preset label.
    pub workload: String,
    /// Engine kind actually run (`naive` / `sparse` / `par`).
    pub engine: String,
    /// Memory backend kind (`fixed` / `dram`).
    pub backend: String,
    /// Configuration key/value pairs (hashed sorted; order-free).
    pub config: Vec<(String, String)>,
    /// Environment knobs in effect (`HWGC_*`; hashed sorted).
    pub env: Vec<(String, String)>,
    /// Digest of the run's `GcStats` (an *output*; not hashed).
    pub stats_digest: u64,
    /// Total simulated cycles — the one-number summary `ledger_diff`
    /// renders deltas of (an *output*; not hashed). `None` on records
    /// written before the field existed.
    pub total_cycles: Option<u64>,
    /// SB event-stream FNV fingerprint, when the run logged SB events.
    pub sb_fingerprint: Option<u64>,
    /// Deterministic efficacy counters (windows fired, veto reasons,
    /// wake counts, ff jumps, …) — golden-testable, not hashed.
    pub efficacy: Vec<(String, u64)>,
    /// Full result payload for the content-addressed cache (the complete
    /// `GcStats` plus allocation frontier, serialized by `hwgc-check`'s
    /// cache layer). Deterministic, not hashed, and absent from the
    /// committed digest-only ledger — only workspace cache files carry
    /// it.
    pub result: Option<Json>,
    /// Nondeterministic host fields. Serialized with a `host_` prefix;
    /// excluded from the config hash by construction.
    pub host: Vec<(String, Json)>,
}

impl LedgerRecord {
    /// The content-address of this run's *configuration*: FNV-1a over
    /// workload, engine, backend and the sorted config and env pairs.
    /// Outputs (`stats_digest`, fingerprint, efficacy) and every `host`
    /// field are excluded — the hash identifies what was asked for, not
    /// what happened or how fast.
    pub fn config_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut eat = |s: &str| {
            for &b in s.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
            // Field separator: no byte of a UTF-8 string is 0xFF.
            h = (h ^ 0xFF).wrapping_mul(FNV_PRIME);
        };
        eat(&self.workload);
        eat(&self.engine);
        eat(&self.backend);
        let mut pairs: Vec<(&str, &str, &str)> = self
            .config
            .iter()
            .map(|(k, v)| ("config", k.as_str(), v.as_str()))
            .chain(
                self.env
                    .iter()
                    .map(|(k, v)| ("env", k.as_str(), v.as_str())),
            )
            .collect();
        pairs.sort_unstable();
        for (section, k, v) in pairs {
            eat(section);
            eat(k);
            eat(v);
        }
        h
    }

    /// Serialize as one [`LEDGER_SCHEMA`] JSON object. Deterministic
    /// fields come first; every nondeterministic field is prefixed
    /// `host_` so a reader (or a test) can split the record without a
    /// schema in hand.
    pub fn to_json(&self) -> Json {
        let hex = |v: u64| Json::Str(format!("{v:016x}"));
        let mut config = self.config.clone();
        config.sort();
        let mut env = self.env.clone();
        env.sort();
        let mut fields = vec![
            ("schema".to_string(), Json::Str(LEDGER_SCHEMA.to_string())),
            ("binary".to_string(), Json::Str(self.binary.clone())),
            ("workload".to_string(), Json::Str(self.workload.clone())),
            ("engine".to_string(), Json::Str(self.engine.clone())),
            ("backend".to_string(), Json::Str(self.backend.clone())),
            ("config_hash".to_string(), hex(self.config_hash())),
            (
                "config".to_string(),
                Json::Obj(
                    config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "env".to_string(),
                Json::Obj(
                    env.iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("stats_digest".to_string(), hex(self.stats_digest)),
        ];
        if let Some(tc) = self.total_cycles {
            fields.push(("total_cycles".to_string(), Json::Int(i128::from(tc))));
        }
        if let Some(fp) = self.sb_fingerprint {
            fields.push(("sb_fingerprint".to_string(), hex(fp)));
        }
        fields.push((
            "efficacy".to_string(),
            Json::Obj(
                self.efficacy
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(i128::from(*v))))
                    .collect(),
            ),
        ));
        if let Some(result) = &self.result {
            fields.push(("result".to_string(), result.clone()));
        }
        for (k, v) in &self.host {
            fields.push((format!("host_{k}"), v.clone()));
        }
        Json::Obj(fields)
    }

    /// Parse a record previously produced by [`LedgerRecord::to_json`].
    pub fn from_json_str(text: &str) -> Result<LedgerRecord, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        if v.get("schema").and_then(Json::as_str) != Some(LEDGER_SCHEMA) {
            return Err(format!("schema is not {LEDGER_SCHEMA}"));
        }
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let hex = |key: &str| -> Result<u64, String> {
            let raw = s(key)?;
            u64::from_str_radix(&raw, 16).map_err(|e| format!("bad hex in `{key}`: {e}"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, String)>, String> {
            match v.get(key) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, val)| {
                        val.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("`{key}.{k}` is not a string"))
                    })
                    .collect(),
                _ => Err(format!("missing object field `{key}`")),
            }
        };
        let efficacy = match v.get("efficacy") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_int()
                        .and_then(|i| u64::try_from(i).ok())
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("`efficacy.{k}` is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing object field `efficacy`".to_string()),
        };
        let host = match &v {
            Json::Obj(fields) => fields
                .iter()
                .filter_map(|(k, val)| {
                    k.strip_prefix("host_")
                        .map(|tail| (tail.to_string(), val.clone()))
                })
                .collect(),
            _ => Vec::new(),
        };
        let rec = LedgerRecord {
            binary: s("binary")?,
            workload: s("workload")?,
            engine: s("engine")?,
            backend: s("backend")?,
            config: pairs("config")?,
            env: pairs("env")?,
            stats_digest: hex("stats_digest")?,
            total_cycles: match v.get("total_cycles") {
                Some(tc) => Some(
                    tc.as_int()
                        .and_then(|i| u64::try_from(i).ok())
                        .ok_or("`total_cycles` is not a u64")?,
                ),
                None => None,
            },
            sb_fingerprint: match v.get("sb_fingerprint") {
                Some(_) => Some(hex("sb_fingerprint")?),
                None => None,
            },
            efficacy,
            result: v.get("result").cloned(),
            host,
        };
        let recorded = hex("config_hash")?;
        if recorded != rec.config_hash() {
            return Err(format!(
                "config_hash mismatch: recorded {recorded:016x}, computed {:016x}",
                rec.config_hash()
            ));
        }
        Ok(rec)
    }

    /// Append this record as one line to the JSONL file at `path`
    /// (created, with parent directories, on first use).
    pub fn append_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json().to_string_compact())
    }
}

/// Parse every record of a JSONL ledger file (blank lines skipped).
pub fn read_jsonl(path: &Path) -> Result<Vec<LedgerRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            LedgerRecord::from_json_str(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> LedgerRecord {
        LedgerRecord {
            binary: "bench_baseline".to_string(),
            workload: "compress".to_string(),
            engine: "par".to_string(),
            backend: "fixed".to_string(),
            config: vec![
                ("n_cores".to_string(), "16".to_string()),
                ("extra_latency".to_string(), "20".to_string()),
            ],
            env: vec![("HWGC_HOST_THREADS".to_string(), "1".to_string())],
            stats_digest: 0xdead_beef,
            total_cycles: Some(124_483),
            sb_fingerprint: Some(0x1234),
            efficacy: vec![
                ("win.fired".to_string(), 120),
                ("win.veto.retire_bound".to_string(), 4),
            ],
            result: Some(Json::Obj(vec![("free".to_string(), Json::Int(0x1000))])),
            host: vec![
                ("wall_ns".to_string(), Json::Int(31_500_000)),
                (
                    "timers".to_string(),
                    Json::Obj(vec![("mem.tick".to_string(), Json::Int(9000))]),
                ),
            ],
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join("hwgc_ledger_test");
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = record();
        rec.append_jsonl(&path).unwrap();
        rec.append_jsonl(&path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 2);
        // Serialization sorts the config/env pairs, so compare canonical
        // forms: a parsed record re-serializes byte-identically.
        assert_eq!(
            back[0].to_json().to_string_compact(),
            rec.to_json().to_string_compact()
        );
        assert_eq!(back[0].config_hash(), rec.config_hash());
        assert_eq!(back[0].efficacy, rec.efficacy);
        assert_eq!(back[0].host, rec.host);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_hash_ignores_field_order() {
        let a = record();
        let mut b = record();
        b.config.reverse();
        b.env.reverse();
        assert_eq!(a.config_hash(), b.config_hash());
        // But a changed value changes the hash.
        let mut c = record();
        c.config[0].1 = "8".to_string();
        assert_ne!(a.config_hash(), c.config_hash());
        // Separator soundness: ("ab","c") must not collide with ("a","bc").
        let mut d = record();
        d.config[0] = ("n_cores1".to_string(), "6".to_string());
        assert_ne!(a.config_hash(), d.config_hash());
    }

    #[test]
    fn host_fields_do_not_participate_in_the_hash() {
        let a = record();
        let mut b = record();
        b.host.clear();
        let mut c = record();
        c.host
            .push(("extra".to_string(), Json::Str("slow run".to_string())));
        assert_eq!(a.config_hash(), b.config_hash());
        assert_eq!(a.config_hash(), c.config_hash());
        // Outputs do not participate either (a cache key must not depend
        // on what it caches).
        let mut d = record();
        d.stats_digest = 1;
        d.total_cycles = None;
        d.sb_fingerprint = None;
        d.efficacy.clear();
        d.result = None;
        assert_eq!(a.config_hash(), d.config_hash());
    }

    #[test]
    fn nondeterministic_fields_carry_the_host_prefix() {
        let text = record().to_json().to_string_compact();
        let doc = Json::parse(&text).unwrap();
        let Json::Obj(fields) = doc else { panic!() };
        let deterministic = [
            "schema",
            "binary",
            "workload",
            "engine",
            "backend",
            "config_hash",
            "config",
            "env",
            "stats_digest",
            "total_cycles",
            "sb_fingerprint",
            "efficacy",
            "result",
        ];
        for (k, _) in &fields {
            assert!(
                deterministic.contains(&k.as_str()) || k.starts_with("host_"),
                "field `{k}` is neither deterministic nor host_-prefixed"
            );
        }
        assert!(fields.iter().any(|(k, _)| k == "host_wall_ns"));
    }

    #[test]
    fn parser_rejects_tampered_hash() {
        let mut text = record().to_json().to_string_compact();
        let hash = format!("{:016x}", record().config_hash());
        text = text.replace(&hash, "0000000000000000");
        let err = LedgerRecord::from_json_str(&text).unwrap_err();
        assert!(err.contains("config_hash mismatch"), "{err}");
    }
}
