//! Derive a [`MetricsRegistry`] from a recorded event stream.
//!
//! One pass over the [`Recording`] reconstructs the durations the
//! hardware-unit logs only record as point transitions:
//!
//! * **lock wait time** per [`LockKind`]: from a core's first `Fail*`
//!   until its `Acquire*`/`Lock*` (0-cycle waits are recorded too, so the
//!   histograms also count uncontended acquisitions);
//! * **lock hold time** per kind: `Acquire*` → `Release*` / `Lock*` →
//!   `Unlock*`;
//! * **header-lock contention per core pair**: each `FailHeader` is
//!   charged to the `(failing core, holding core)` pair;
//! * **worklist depth** (gray words, sampled at every `scan`/`free`
//!   write), **FIFO occupancy** and **comparator block time**;
//! * per-port issue/retire counters and DRAM service cycles;
//! * software-collector steal and work-packet counters.

use std::collections::HashMap;

use hwgc_memsim::MemEvent;
use hwgc_sync::{LockKind, SbEvent};

use crate::chrome::{port_track_name, RunMeta};
use crate::event::OwnedEvent;
use crate::metrics::MetricsRegistry;
use crate::probe::Recording;

fn kind_name(kind: LockKind) -> &'static str {
    match kind {
        LockKind::Scan => "scan",
        LockKind::Free => "free",
        LockKind::Header => "header",
    }
}

/// Per-(core, lock-kind) wait/hold bookkeeping.
#[derive(Default)]
struct LockTracker {
    /// Cycle of the first failed attempt of the ongoing wait, per core.
    first_fail: HashMap<usize, u64>,
    /// Acquisition cycle, per core.
    acquired_at: HashMap<usize, u64>,
}

impl LockTracker {
    fn fail(&mut self, core: usize, cycle: u64) {
        self.first_fail.entry(core).or_insert(cycle);
    }

    fn acquire(&mut self, reg: &mut MetricsRegistry, kind: LockKind, core: usize, cycle: u64) {
        let started = self.first_fail.remove(&core).unwrap_or(cycle);
        reg.histogram(&format!("lock.{}.wait_cycles", kind_name(kind)))
            .record(cycle - started);
        self.acquired_at.insert(core, cycle);
    }

    fn release(&mut self, reg: &mut MetricsRegistry, kind: LockKind, core: usize, cycle: u64) {
        if let Some(acquired) = self.acquired_at.remove(&core) {
            reg.histogram(&format!("lock.{}.hold_cycles", kind_name(kind)))
                .record(cycle - acquired);
        }
    }
}

/// Fold a recording into a metrics registry (see the module docs for the
/// derived metric families). Also always creates the three lock wait-time
/// histograms, so consumers can rely on their presence even for runs
/// without SB traffic.
pub fn derive_metrics(recording: &Recording, meta: &RunMeta) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.gauge_set("run.total_cycles", meta.total_cycles as f64);
    reg.gauge_set("run.n_cores", meta.n_cores as f64);
    for kind in [LockKind::Scan, LockKind::Free, LockKind::Header] {
        reg.histogram(&format!("lock.{}.wait_cycles", kind_name(kind)));
        reg.histogram(&format!("lock.{}.hold_cycles", kind_name(kind)));
    }

    let mut scan_lock = LockTracker::default();
    let mut free_lock = LockTracker::default();
    let mut header_lock = LockTracker::default();
    // Header address → holding core, for contention pair attribution.
    let mut header_holder: HashMap<u32, usize> = HashMap::new();
    // Worklist registers replayed from the SB stream.
    let (mut scan, mut free) = (0u32, 0u32);
    // Comparator block start per (core, addr).
    let mut blocked_at: HashMap<(u32, u32), u64> = HashMap::new();

    for &(ts, ref event) in &recording.events {
        match *event {
            OwnedEvent::Sb(rec) => {
                let cycle = rec.cycle;
                match rec.event {
                    SbEvent::Init { scan: s, free: f } => {
                        scan = s;
                        free = f;
                    }
                    SbEvent::FailScan { core } => scan_lock.fail(core, cycle),
                    SbEvent::AcquireScan { core } => {
                        scan_lock.acquire(&mut reg, LockKind::Scan, core, cycle)
                    }
                    SbEvent::ReleaseScan { core } => {
                        scan_lock.release(&mut reg, LockKind::Scan, core, cycle)
                    }
                    SbEvent::FailFree { core } => free_lock.fail(core, cycle),
                    SbEvent::AcquireFree { core } => {
                        free_lock.acquire(&mut reg, LockKind::Free, core, cycle)
                    }
                    SbEvent::ReleaseFree { core } => {
                        free_lock.release(&mut reg, LockKind::Free, core, cycle)
                    }
                    SbEvent::SetScan { to, .. } => {
                        scan = to;
                        reg.histogram("worklist.gray_words")
                            .record(free.saturating_sub(scan) as u64);
                    }
                    SbEvent::SetFree { to, .. } => {
                        free = to;
                        reg.histogram("worklist.gray_words")
                            .record(free.saturating_sub(scan) as u64);
                    }
                    SbEvent::FailHeader { core, addr } => {
                        header_lock.fail(core, cycle);
                        if let Some(&holder) = header_holder.get(&addr) {
                            reg.counter_add(
                                &format!("contention.header.core{core}_vs_core{holder}"),
                                1,
                            );
                        }
                    }
                    SbEvent::LockHeader { core, addr } => {
                        header_lock.acquire(&mut reg, LockKind::Header, core, cycle);
                        header_holder.insert(addr, core);
                    }
                    SbEvent::UnlockHeader { core, addr } => {
                        header_lock.release(&mut reg, LockKind::Header, core, cycle);
                        header_holder.remove(&addr);
                    }
                    SbEvent::SetBusy { .. }
                    | SbEvent::ClearBusy { .. }
                    | SbEvent::Termination { .. } => {}
                }
            }
            OwnedEvent::Mem(rec) => match rec.event {
                MemEvent::Issue { port, .. } => {
                    reg.counter_add(&format!("mem.{}.issued", port_track_name(port)), 1);
                }
                MemEvent::Retire { port, .. } => {
                    reg.counter_add(&format!("mem.{}.retired", port_track_name(port)), 1);
                }
                MemEvent::ServiceStart { port, latency, .. } => {
                    reg.counter_add(
                        &format!("mem.{}.service_cycles", port_track_name(port)),
                        latency as u64,
                    );
                    if latency == 0 {
                        reg.counter_add(&format!("mem.{}.burst_hits", port_track_name(port)), 1);
                    }
                }
                MemEvent::CompBlocked { core, addr } => {
                    blocked_at.insert((core, addr), rec.cycle);
                }
                MemEvent::CompUnblocked { core, addr } => {
                    if let Some(start) = blocked_at.remove(&(core, addr)) {
                        reg.histogram("mem.comparator.block_cycles")
                            .record(rec.cycle - start);
                    }
                }
                MemEvent::CacheHit { .. } => {
                    reg.counter_add("mem.header_cache.hits", 1);
                }
                MemEvent::DramAccess {
                    bank,
                    outcome,
                    bank_queue,
                    ..
                } => {
                    reg.counter_add(&format!("mem.dram.row_{}", outcome.name()), 1);
                    reg.counter_add(&format!("mem.dram.bank{bank}.accesses"), 1);
                    reg.histogram("mem.dram.bank_queue_depth")
                        .record(bank_queue as u64);
                }
                MemEvent::Consume { .. } => {}
            },
            OwnedEvent::FifoDepth { depth } => {
                reg.histogram("fifo.occupancy").record(depth as u64);
            }
            OwnedEvent::Sample {
                gray_words,
                busy_cores,
                queue_depth,
                ..
            } => {
                reg.histogram("sample.gray_words").record(gray_words as u64);
                reg.histogram("sample.busy_cores").record(busy_cores as u64);
                reg.histogram("sample.queue_depth")
                    .record(queue_depth as u64);
            }
            OwnedEvent::WorklistClaim { core, from, to } => {
                reg.counter_add(&format!("core{core}.claims"), 1);
                reg.counter_add(&format!("core{core}.claimed_words"), (to - from) as u64);
            }
            OwnedEvent::Steal { success, .. } => {
                reg.counter_add("sw.steal.attempts", 1);
                if success {
                    reg.counter_add("sw.steal.hits", 1);
                }
            }
            OwnedEvent::PacketHandoff { refs, .. } => {
                reg.counter_add("sw.packets.handoffs", 1);
                reg.histogram("sw.packets.refs").record(refs as u64);
            }
            OwnedEvent::Phase { name, begin } => {
                if begin {
                    reg.counter_add(&format!("phase.{name}.count"), 1);
                } else {
                    // Phase end: nothing durable beyond the count; the
                    // Chrome exporter renders the span itself.
                    let _ = ts;
                }
            }
            OwnedEvent::StallSpan {
                core, name, len, ..
            } => {
                reg.histogram(&format!("stall.{name}.span_cycles"))
                    .record(len);
                reg.counter_add(&format!("core{core}.stall.{name}.cycles"), len);
            }
            OwnedEvent::CoreState { .. } => {}
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_memsim::{MemEventRecord, Port};
    use hwgc_sync::SbEventRecord;

    fn meta() -> RunMeta {
        RunMeta {
            name: "t".to_string(),
            n_cores: 2,
            total_cycles: 50,
        }
    }

    fn sb(cycle: u64, event: SbEvent) -> (u64, OwnedEvent) {
        (cycle, OwnedEvent::Sb(SbEventRecord { cycle, event }))
    }

    #[test]
    fn empty_recording_still_has_lock_histograms() {
        let reg = derive_metrics(&Recording::default(), &meta());
        for kind in ["scan", "free", "header"] {
            let h = reg
                .histogram_ref(&format!("lock.{kind}.wait_cycles"))
                .unwrap();
            assert_eq!(h.count(), 0);
        }
        assert_eq!(reg.gauge("run.total_cycles"), Some(50.0));
    }

    #[test]
    fn zero_event_run_yields_only_static_families() {
        // A probe-on run that emitted nothing (e.g. an already-empty
        // heap): the registry must still carry the run gauges and the
        // always-created lock histograms, and nothing else.
        let reg = derive_metrics(&Recording::default(), &meta());
        let json = reg.to_json_string();
        let reparsed = MetricsRegistry::from_json_str(&json).unwrap();
        assert_eq!(reparsed.gauge("run.n_cores"), Some(2.0));
        assert_eq!(reg.counter("sw.steal.attempts"), None);
        assert!(reg.histogram_ref("worklist.gray_words").is_none());
    }

    #[test]
    fn single_core_run_has_no_contention_families() {
        // One core, lock traffic but no adversary: every acquisition is
        // a 0-cycle wait and no contention pair counter can appear.
        let rec = Recording {
            events: vec![
                sb(1, SbEvent::AcquireScan { core: 0 }),
                sb(2, SbEvent::ReleaseScan { core: 0 }),
                sb(3, SbEvent::LockHeader { core: 0, addr: 8 }),
                sb(4, SbEvent::UnlockHeader { core: 0, addr: 8 }),
                (
                    5,
                    OwnedEvent::WorklistClaim {
                        core: 0,
                        from: 0,
                        to: 2,
                    },
                ),
            ],
        };
        let meta = RunMeta {
            name: "t".to_string(),
            n_cores: 1,
            total_cycles: 10,
        };
        let reg = derive_metrics(&rec, &meta);
        let wait = reg.histogram_ref("lock.scan.wait_cycles").unwrap();
        assert_eq!((wait.count(), wait.max()), (1, Some(0)));
        assert_eq!(reg.counter("core0.claims"), Some(1));
        assert!(
            !reg.to_json_string().contains("contention.header"),
            "no pair counters on a single-core run"
        );
    }

    #[test]
    fn stall_span_flushed_at_run_end_is_fully_counted() {
        // A run that ends inside a fast-forward window: the engine
        // flushes the still-open stall as a span stamped at the run's
        // last cycle. The derived histogram and per-core counter must
        // carry the full length — no truncation at the last event
        // before the window.
        let total = 40;
        let rec = Recording {
            events: vec![(
                total,
                OwnedEvent::StallSpan {
                    core: 1,
                    reason: 3,
                    name: "body_load",
                    since: total - 11,
                    len: 12,
                },
            )],
        };
        let meta = RunMeta {
            name: "t".to_string(),
            n_cores: 2,
            total_cycles: total,
        };
        let reg = derive_metrics(&rec, &meta);
        let spans = reg.histogram_ref("stall.body_load.span_cycles").unwrap();
        assert_eq!((spans.count(), spans.max()), (1, Some(12)));
        assert_eq!(reg.counter("core1.stall.body_load.cycles"), Some(12));
    }

    #[test]
    fn wait_time_spans_fail_streak() {
        let rec = Recording {
            events: vec![
                sb(10, SbEvent::FailScan { core: 1 }),
                sb(11, SbEvent::FailScan { core: 1 }),
                sb(12, SbEvent::AcquireScan { core: 1 }),
                sb(15, SbEvent::ReleaseScan { core: 1 }),
                // Uncontended acquisition: 0-cycle wait.
                sb(20, SbEvent::AcquireScan { core: 0 }),
                sb(21, SbEvent::ReleaseScan { core: 0 }),
            ],
        };
        let reg = derive_metrics(&rec, &meta());
        let wait = reg.histogram_ref("lock.scan.wait_cycles").unwrap();
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.max(), Some(2));
        assert_eq!(wait.min(), Some(0));
        let hold = reg.histogram_ref("lock.scan.hold_cycles").unwrap();
        assert_eq!(hold.count(), 2);
        assert_eq!(hold.max(), Some(3));
    }

    #[test]
    fn header_contention_is_attributed_to_the_holder() {
        let rec = Recording {
            events: vec![
                sb(5, SbEvent::LockHeader { core: 0, addr: 64 }),
                sb(6, SbEvent::FailHeader { core: 1, addr: 64 }),
                sb(7, SbEvent::FailHeader { core: 1, addr: 64 }),
                sb(8, SbEvent::UnlockHeader { core: 0, addr: 64 }),
                sb(9, SbEvent::LockHeader { core: 1, addr: 64 }),
                sb(10, SbEvent::UnlockHeader { core: 1, addr: 64 }),
            ],
        };
        let reg = derive_metrics(&rec, &meta());
        assert_eq!(reg.counter("contention.header.core1_vs_core0"), Some(2));
        let wait = reg.histogram_ref("lock.header.wait_cycles").unwrap();
        // core 0: 0-cycle wait; core 1: failed at 6, locked at 9.
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.max(), Some(3));
    }

    #[test]
    fn worklist_depth_follows_register_writes() {
        let rec = Recording {
            events: vec![
                sb(
                    0,
                    SbEvent::Init {
                        scan: 100,
                        free: 100,
                    },
                ),
                sb(
                    1,
                    SbEvent::SetFree {
                        core: 0,
                        from: 100,
                        to: 110,
                    },
                ),
                sb(
                    2,
                    SbEvent::SetScan {
                        core: 1,
                        from: 100,
                        to: 104,
                    },
                ),
            ],
        };
        let reg = derive_metrics(&rec, &meta());
        let h = reg.histogram_ref("worklist.gray_words").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.min(), Some(6));
    }

    #[test]
    fn mem_counters_and_comparator_blocks() {
        let mem = |cycle, event| (cycle, OwnedEvent::Mem(MemEventRecord { cycle, event }));
        let rec = Recording {
            events: vec![
                mem(
                    1,
                    MemEvent::Issue {
                        core: 0,
                        port: Port::HeaderLoad,
                        addr: 8,
                    },
                ),
                mem(1, MemEvent::CompBlocked { core: 0, addr: 8 }),
                mem(7, MemEvent::CompUnblocked { core: 0, addr: 8 }),
                mem(
                    8,
                    MemEvent::ServiceStart {
                        core: 0,
                        port: Port::HeaderLoad,
                        latency: 5,
                    },
                ),
                mem(
                    13,
                    MemEvent::Retire {
                        core: 0,
                        port: Port::HeaderLoad,
                    },
                ),
            ],
        };
        let reg = derive_metrics(&rec, &meta());
        assert_eq!(reg.counter("mem.port.HeaderLoad.issued"), Some(1));
        assert_eq!(reg.counter("mem.port.HeaderLoad.retired"), Some(1));
        assert_eq!(reg.counter("mem.port.HeaderLoad.service_cycles"), Some(5));
        let blocks = reg.histogram_ref("mem.comparator.block_cycles").unwrap();
        assert_eq!(blocks.count(), 1);
        assert_eq!(blocks.max(), Some(6));
    }

    #[test]
    fn steals_and_packets_counted() {
        let rec = Recording {
            events: vec![
                (
                    0,
                    OwnedEvent::Steal {
                        thief: 1,
                        victim: 0,
                        success: false,
                    },
                ),
                (
                    1,
                    OwnedEvent::Steal {
                        thief: 1,
                        victim: 0,
                        success: true,
                    },
                ),
                (
                    2,
                    OwnedEvent::PacketHandoff {
                        thread: 0,
                        refs: 12,
                    },
                ),
            ],
        };
        let reg = derive_metrics(&rec, &meta());
        assert_eq!(reg.counter("sw.steal.attempts"), Some(2));
        assert_eq!(reg.counter("sw.steal.hits"), Some(1));
        assert_eq!(reg.counter("sw.packets.handoffs"), Some(1));
        assert_eq!(
            reg.histogram_ref("sw.packets.refs").unwrap().max(),
            Some(12)
        );
    }
}
