//! Cross-run regression diffing: join two ledger stores on
//! `config_hash` and classify every configuration as identical, changed
//! or present on one side only — the engine behind the `ledger_diff`
//! binary and the CI regression gate.
//!
//! Classification is purely over **deterministic** fields:
//!
//! * `stats_digest` — the ground truth: a differing digest is always
//!   `Changed`;
//! * `sb_fingerprint` — compared when both sides carry it (a run that
//!   didn't log SB events is *less covered*, not different);
//! * efficacy counters — every counter present on both sides must agree;
//!   window-funnel counters (`win.*`) that drift are reported separately
//!   because funnel shape is the paper's efficacy story;
//! * `total_cycles` — rendered as a delta headline when both sides carry
//!   it (it is implied by the digest, but a number beats a hash in a
//!   report).
//!
//! `host_*` fields never classify: host-time movement between two runs
//! of an identical config is rendered as an informational trend line
//! only. `--check` semantics: only `Changed` entries fail the gate —
//! one-sided configs mean the sweeps covered different configurations
//! (a perturbation shows up as an `only_left`/`only_right` *pair*), not
//! that the simulator changed behaviour.

use crate::json::Json;
use crate::ledger::LedgerRecord;
use crate::store::LedgerStore;

/// JSON schema tag of [`LedgerDiff::to_json`].
pub const DIFF_SCHEMA: &str = "hwgc-ledger-diff-v1";

/// How one configuration compares across the two ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Present on both sides with agreeing deterministic outputs.
    Identical,
    /// Present on both sides with a differing digest, fingerprint or
    /// shared efficacy counter — a simulation-result change.
    Changed,
    /// Only the left ledger holds this configuration.
    OnlyLeft,
    /// Only the right ledger holds this configuration.
    OnlyRight,
}

impl DiffStatus {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Identical => "identical",
            DiffStatus::Changed => "changed",
            DiffStatus::OnlyLeft => "only_left",
            DiffStatus::OnlyRight => "only_right",
        }
    }
}

/// One configuration's comparison.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// The join key.
    pub config_hash: u64,
    /// Human label: `workload/engine/backend (binary)`.
    pub label: String,
    /// Classification.
    pub status: DiffStatus,
    /// `total_cycles` on each side, when carried.
    pub cycles: (Option<u64>, Option<u64>),
    /// Why the entry is `Changed` (empty otherwise).
    pub reasons: Vec<String>,
    /// Window-funnel counters (`win.*`) present on both sides with
    /// differing values: `(counter, left, right)`.
    pub funnel_drift: Vec<(String, u64, u64)>,
    /// Informational host-time trend: summed `*.total_ns` host timer
    /// fields on each side, when both carry any.
    pub host_ns: Option<(u64, u64)>,
}

/// The full join of two ledgers.
#[derive(Debug, Clone, Default)]
pub struct LedgerDiff {
    /// Entries sorted by config hash.
    pub entries: Vec<DiffEntry>,
}

fn record_label(rec: &LedgerRecord) -> String {
    format!(
        "{}/{}/{} ({})",
        rec.workload, rec.engine, rec.backend, rec.binary
    )
}

fn host_total_ns(rec: &LedgerRecord) -> Option<u64> {
    let mut total = 0u64;
    let mut any = false;
    for (k, v) in &rec.host {
        if k == "wall_ns" || k.ends_with(".total_ns") || k.ends_with("_total_ns") {
            if let Some(ns) = v.as_int().and_then(|i| u64::try_from(i).ok()) {
                total += ns;
                any = true;
            }
        }
    }
    any.then_some(total)
}

fn compare(hash: u64, left: &LedgerRecord, right: &LedgerRecord) -> DiffEntry {
    let mut reasons = Vec::new();
    if left.stats_digest != right.stats_digest {
        reasons.push(format!(
            "stats_digest {:016x} -> {:016x}",
            left.stats_digest, right.stats_digest
        ));
    }
    if let (Some(a), Some(b)) = (left.sb_fingerprint, right.sb_fingerprint) {
        if a != b {
            reasons.push(format!("sb_fingerprint {a:016x} -> {b:016x}"));
        }
    }
    let mut funnel_drift = Vec::new();
    for (k, a) in &left.efficacy {
        if let Some((_, b)) = right.efficacy.iter().find(|(rk, _)| rk == k) {
            if a != b {
                if k.starts_with("win.") {
                    funnel_drift.push((k.clone(), *a, *b));
                } else {
                    reasons.push(format!("efficacy {k} {a} -> {b}"));
                }
            }
        }
    }
    if !funnel_drift.is_empty() {
        reasons.push(format!(
            "window funnel drifted on {} counter(s)",
            funnel_drift.len()
        ));
    }
    if let (Some(a), Some(b)) = (left.total_cycles, right.total_cycles) {
        if a != b && !reasons.iter().any(|r| r.starts_with("stats_digest")) {
            // A cycle delta without a digest delta means a corrupt record
            // somewhere — surface it rather than masking it.
            reasons.push(format!("total_cycles {a} -> {b} with equal digests"));
        }
    }
    let status = if reasons.is_empty() {
        DiffStatus::Identical
    } else {
        DiffStatus::Changed
    };
    let host_ns = match (host_total_ns(left), host_total_ns(right)) {
        (Some(a), Some(b)) => Some((a, b)),
        _ => None,
    };
    DiffEntry {
        config_hash: hash,
        label: record_label(left),
        status,
        cycles: (left.total_cycles, right.total_cycles),
        reasons,
        funnel_drift,
        host_ns,
    }
}

impl LedgerDiff {
    /// Join `left` and `right` on config hash and classify every entry.
    pub fn between(left: &LedgerStore, right: &LedgerStore) -> LedgerDiff {
        let mut hashes = left.hashes();
        for h in right.hashes() {
            if left.get(h).is_none() {
                hashes.push(h);
            }
        }
        hashes.sort_unstable();
        let entries = hashes
            .into_iter()
            .map(|hash| match (left.get(hash), right.get(hash)) {
                (Some(a), Some(b)) => compare(hash, a, b),
                (Some(a), None) => DiffEntry {
                    config_hash: hash,
                    label: record_label(a),
                    status: DiffStatus::OnlyLeft,
                    cycles: (a.total_cycles, None),
                    reasons: Vec::new(),
                    funnel_drift: Vec::new(),
                    host_ns: None,
                },
                (None, Some(b)) => DiffEntry {
                    config_hash: hash,
                    label: record_label(b),
                    status: DiffStatus::OnlyRight,
                    cycles: (None, b.total_cycles),
                    reasons: Vec::new(),
                    funnel_drift: Vec::new(),
                    host_ns: None,
                },
                (None, None) => unreachable!("hash came from one of the stores"),
            })
            .collect();
        LedgerDiff { entries }
    }

    /// `(identical, changed, only_left, only_right)` counts.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for e in &self.entries {
            match e.status {
                DiffStatus::Identical => c.0 += 1,
                DiffStatus::Changed => c.1 += 1,
                DiffStatus::OnlyLeft => c.2 += 1,
                DiffStatus::OnlyRight => c.3 += 1,
            }
        }
        c
    }

    /// The entries that fail `--check`.
    pub fn changed(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.status == DiffStatus::Changed)
    }

    /// Machine-readable report.
    pub fn to_json(&self, left_name: &str, right_name: &str) -> Json {
        let (identical, changed, only_left, only_right) = self.counts();
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    (
                        "config_hash".to_string(),
                        Json::Str(format!("{:016x}", e.config_hash)),
                    ),
                    ("label".to_string(), Json::Str(e.label.clone())),
                    (
                        "status".to_string(),
                        Json::Str(e.status.label().to_string()),
                    ),
                ];
                if let Some(c) = e.cycles.0 {
                    fields.push(("cycles_left".to_string(), Json::Int(i128::from(c))));
                }
                if let Some(c) = e.cycles.1 {
                    fields.push(("cycles_right".to_string(), Json::Int(i128::from(c))));
                }
                if !e.reasons.is_empty() {
                    fields.push((
                        "reasons".to_string(),
                        Json::Arr(e.reasons.iter().map(|r| Json::Str(r.clone())).collect()),
                    ));
                }
                if !e.funnel_drift.is_empty() {
                    fields.push((
                        "funnel_drift".to_string(),
                        Json::Obj(
                            e.funnel_drift
                                .iter()
                                .map(|(k, a, b)| {
                                    (
                                        k.clone(),
                                        Json::Arr(vec![
                                            Json::Int(i128::from(*a)),
                                            Json::Int(i128::from(*b)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ));
                }
                if let Some((a, b)) = e.host_ns {
                    fields.push((
                        "host_ns".to_string(),
                        Json::Arr(vec![Json::Int(i128::from(a)), Json::Int(i128::from(b))]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(DIFF_SCHEMA.to_string())),
            ("left".to_string(), Json::Str(left_name.to_string())),
            ("right".to_string(), Json::Str(right_name.to_string())),
            ("identical".to_string(), Json::Int(identical as i128)),
            ("changed".to_string(), Json::Int(changed as i128)),
            ("only_left".to_string(), Json::Int(only_left as i128)),
            ("only_right".to_string(), Json::Int(only_right as i128)),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Human-readable report.
    pub fn render_markdown(&self, left_name: &str, right_name: &str) -> String {
        use std::fmt::Write as _;
        let (identical, changed, only_left, only_right) = self.counts();
        let mut out = String::new();
        let _ = writeln!(out, "# Ledger diff");
        let _ = writeln!(out);
        let _ = writeln!(out, "- left:  `{left_name}`");
        let _ = writeln!(out, "- right: `{right_name}`");
        let _ = writeln!(
            out,
            "- {identical} identical, **{changed} changed**, \
             {only_left} only-left, {only_right} only-right"
        );
        if changed > 0 {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Changed configurations");
            let _ = writeln!(out);
            let _ = writeln!(out, "| config | hash | cycles | why |");
            let _ = writeln!(out, "|---|---|---|---|");
            for e in self.changed() {
                let cycles = match e.cycles {
                    (Some(a), Some(b)) => {
                        let delta = b as i128 - a as i128;
                        format!("{a} -> {b} ({delta:+})")
                    }
                    _ => "—".to_string(),
                };
                let _ = writeln!(
                    out,
                    "| {} | `{:016x}` | {} | {} |",
                    e.label,
                    e.config_hash,
                    cycles,
                    e.reasons.join("; ")
                );
            }
            for e in self.changed() {
                if e.funnel_drift.is_empty() {
                    continue;
                }
                let _ = writeln!(out);
                let _ = writeln!(out, "### Window-funnel drift — {}", e.label);
                let _ = writeln!(out);
                let _ = writeln!(out, "| counter | left | right |");
                let _ = writeln!(out, "|---|---|---|");
                for (k, a, b) in &e.funnel_drift {
                    let _ = writeln!(out, "| `{k}` | {a} | {b} |");
                }
            }
        }
        let one_sided: Vec<&DiffEntry> = self
            .entries
            .iter()
            .filter(|e| matches!(e.status, DiffStatus::OnlyLeft | DiffStatus::OnlyRight))
            .collect();
        if !one_sided.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## One-sided configurations");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "Configurations covered by only one sweep (a config \
                 perturbation moves a record's hash, producing an \
                 only-left/only-right pair):"
            );
            let _ = writeln!(out);
            for e in &one_sided {
                let _ = writeln!(
                    out,
                    "- `{:016x}` {} — {}",
                    e.config_hash,
                    e.label,
                    e.status.label()
                );
            }
        }
        let trends: Vec<&DiffEntry> = self
            .entries
            .iter()
            .filter(|e| e.status == DiffStatus::Identical && e.host_ns.is_some())
            .collect();
        if !trends.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Host-time trend (informational)");
            let _ = writeln!(out);
            let _ = writeln!(out, "| config | left (ms) | right (ms) | ratio |");
            let _ = writeln!(out, "|---|---|---|---|");
            for e in &trends {
                let (a, b) = e.host_ns.unwrap();
                let ratio = if a == 0 {
                    "—".to_string()
                } else {
                    format!("{:.2}x", b as f64 / a as f64)
                };
                let _ = writeln!(
                    out,
                    "| {} | {:.2} | {:.2} | {} |",
                    e.label,
                    a as f64 / 1e6,
                    b as f64 / 1e6,
                    ratio
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, digest: u64, cycles: u64) -> LedgerRecord {
        LedgerRecord {
            binary: "test".to_string(),
            workload: workload.to_string(),
            engine: "sparse".to_string(),
            backend: "fixed".to_string(),
            config: vec![("n_cores".to_string(), "4".to_string())],
            env: Vec::new(),
            stats_digest: digest,
            total_cycles: Some(cycles),
            sb_fingerprint: None,
            efficacy: vec![("win.fired".to_string(), 10), ("ff.jumps".to_string(), 2)],
            result: None,
            host: vec![("wall_ns".to_string(), Json::Int(1_000_000))],
        }
    }

    fn store(records: Vec<LedgerRecord>) -> LedgerStore {
        let mut s = LedgerStore::new();
        s.merge(records).unwrap();
        s
    }

    #[test]
    fn clean_runs_diff_identical() {
        let left = store(vec![record("a", 7, 100), record("b", 9, 200)]);
        let mut r1 = record("a", 7, 100);
        r1.host = vec![("wall_ns".to_string(), Json::Int(9_999_999))];
        let right = store(vec![r1, record("b", 9, 200)]);
        let diff = LedgerDiff::between(&left, &right);
        assert_eq!(diff.counts(), (2, 0, 0, 0));
        assert_eq!(diff.changed().count(), 0);
        // Host time moved but is informational only.
        let a = &diff.entries[if diff.entries[0].label.contains("a/") {
            0
        } else {
            1
        }];
        assert_eq!(a.status, DiffStatus::Identical);
        assert!(a.host_ns.is_some());
    }

    #[test]
    fn digest_and_funnel_changes_classify_as_changed() {
        let left = store(vec![record("a", 7, 100)]);
        let mut r = record("a", 8, 120);
        r.efficacy = vec![("win.fired".to_string(), 4), ("ff.jumps".to_string(), 2)];
        let right = store(vec![r]);
        let diff = LedgerDiff::between(&left, &right);
        assert_eq!(diff.counts(), (0, 1, 0, 0));
        let e = diff.changed().next().unwrap();
        assert!(e.reasons.iter().any(|r| r.contains("stats_digest")));
        assert_eq!(e.funnel_drift, vec![("win.fired".to_string(), 10, 4)]);
        assert_eq!(e.cycles, (Some(100), Some(120)));
        let md = diff.render_markdown("L", "R");
        assert!(md.contains("100 -> 120 (+20)"), "{md}");
        assert!(md.contains("win.fired"), "{md}");
    }

    #[test]
    fn perturbation_reports_exactly_the_perturbed_hashes() {
        // A deliberate config perturbation: same workload, one knob
        // changed. The hash moves, so the diff must report exactly the
        // old hash as only-left and the new one as only-right — and
        // nothing as changed.
        let shared = record("shared", 5, 50);
        let base = record("a", 7, 100);
        let mut perturbed = record("a", 7, 100);
        perturbed.config[0].1 = "8".to_string();
        let (old_hash, new_hash) = (base.config_hash(), perturbed.config_hash());
        assert_ne!(old_hash, new_hash);
        let left = store(vec![shared.clone(), base]);
        let right = store(vec![shared, perturbed]);
        let diff = LedgerDiff::between(&left, &right);
        assert_eq!(diff.counts(), (1, 0, 1, 1));
        let only_left: Vec<u64> = diff
            .entries
            .iter()
            .filter(|e| e.status == DiffStatus::OnlyLeft)
            .map(|e| e.config_hash)
            .collect();
        let only_right: Vec<u64> = diff
            .entries
            .iter()
            .filter(|e| e.status == DiffStatus::OnlyRight)
            .map(|e| e.config_hash)
            .collect();
        assert_eq!(only_left, vec![old_hash]);
        assert_eq!(only_right, vec![new_hash]);
    }

    #[test]
    fn missing_coverage_is_not_a_change() {
        // Right side lacks the fingerprint and half the efficacy
        // counters: less covered, not different.
        let mut full = record("a", 7, 100);
        full.sb_fingerprint = Some(0xbeef);
        let mut thin = record("a", 7, 100);
        thin.sb_fingerprint = None;
        thin.efficacy = Vec::new();
        let diff = LedgerDiff::between(&store(vec![full]), &store(vec![thin]));
        assert_eq!(diff.counts(), (1, 0, 0, 0));
    }

    #[test]
    fn json_report_carries_counts_and_schema() {
        let left = store(vec![record("a", 7, 100)]);
        let right = store(vec![record("a", 8, 110)]);
        let doc = LedgerDiff::between(&left, &right).to_json("L", "R");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(DIFF_SCHEMA));
        assert_eq!(doc.get("changed").and_then(Json::as_int), Some(1));
        assert_eq!(doc.get("identical").and_then(Json::as_int), Some(0));
    }
}
