//! Blame attribution: every core-stall cycle gets a cause.
//!
//! The [`RunModel`] replays a [`Recording`] once into queryable form —
//! stall spans, lock-failure causes, per-port memory-transaction phases,
//! worklist writes and core-state timelines. [`attribute`] then folds the
//! spans into a [`BlameReport`]:
//!
//! * **per-class rows** — one row per stall class (`scan_lock`,
//!   `body_load`, …) whose cause cells sum *exactly* to the class's total
//!   stall cycles (an explicit `unattributed` cell absorbs whatever the
//!   replay cannot explain, so the reconciliation against the engine's
//!   `StallBreakdown` counters is an equality, not an inequality);
//! * **cause chains**, depth-capped at three hops: a lock-stall cycle is
//!   blamed on the core holding the lock, extended by what that holder
//!   was doing at that moment (`held:core2->header_load/dram.latency` —
//!   the scan-lock convoy made visible), or on the register's write port
//!   (`write_port:core3`) when no one held the lock but it was written
//!   this cycle (paper Section V-C's one-write-per-cycle limit);
//! * a **core×core contention graph** — `edges[(i, j)]` counts the cycles
//!   core `i` waited on a lock held (or a port written) by core `j`;
//! * **per-core cause tallies** (`class/cause` keyed), the what-if
//!   predictor's input.
//!
//! Memory-stall cycles are split by intersecting the span with the
//! transaction phases of the core's port: comparator-blocked cycles
//! (`mem.comparator`), queued-behind-DRAM cycles (`dram.queue`) and
//! in-service cycles (`dram.latency`). A `header_store` span that begins
//! in the `ChildEvacOverflow` microprogram state is blamed on the header
//! FIFO instead (`fifo.overflow`): the store only exists because the FIFO
//! was full and the gray header had to take the memory path.
//!
//! Lock-failure causes rely on the SB event log being 1:1 with lock-stall
//! cycles, which the engine guarantees whenever the log is on (per-cycle
//! `Fail*` events pin the fast-forward). Within a cycle, bus order equals
//! operation order, so a plain replay reconstructs the exact owner at
//! each failure.

use std::collections::{BTreeMap, HashMap};

use hwgc_memsim::MemEvent;
use hwgc_sync::SbEvent;

use crate::chrome::RunMeta;
use crate::event::OwnedEvent;
use crate::probe::Recording;

/// Cause cell absorbing stall cycles the replay cannot explain. Keeps
/// every row's sum exact by construction.
pub const UNATTRIBUTED: &str = "unattributed";

/// One maximal run of consecutive stalled cycles of one core with one
/// cause, reconstructed from [`OwnedEvent::StallSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub core: u32,
    /// Stall-reason bus index (the core crate's `StallReason::index`).
    pub reason: u8,
    /// Stall-reason display name (`"scan_lock"`, `"body_load"`, …).
    pub name: &'static str,
    /// First stalled cycle.
    pub since: u64,
    /// Number of stalled cycles; the span covers `[since, since + len)`.
    pub len: u64,
}

impl Span {
    /// Last stalled cycle of the span (inclusive).
    pub fn last(&self) -> u64 {
        self.since + self.len - 1
    }
}

/// Why a lock acquisition failed in one specific cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockCause {
    /// The core holding the lock, if one did.
    pub holder: Option<u32>,
    /// The core whose same-cycle register write armed the write port
    /// (the cause when no one held the lock).
    pub writer: Option<u32>,
}

/// Half-open cycle intervals `[start, end)` of one phase of one
/// (core, port) transaction stream.
#[derive(Debug, Clone, Default)]
struct PortPhases {
    /// Comparator-blocked (a matching in-flight transaction exists).
    blocked: Vec<(u64, u64)>,
    /// In DRAM service.
    service: Vec<(u64, u64)>,
    /// Queued, waiting for DRAM bandwidth.
    queued: Vec<(u64, u64)>,
}

/// A [`Recording`] replayed once into queryable form. Built by
/// [`RunModel::build`]; shared by the blame attribution and the
/// critical-path walk.
#[derive(Debug)]
pub struct RunModel {
    /// Number of GC cores.
    pub n_cores: usize,
    /// Total cycles of the run (from [`RunMeta`]).
    pub total: u64,
    /// Engine cycle at which the parallel scan phase began (the root
    /// phase's length); 0 if the recording carries no phase marker.
    pub phase_start: u64,
    /// All stall spans, in recording order.
    pub spans: Vec<Span>,
    /// Indices into `spans` per core, ordered by `since`.
    per_core_spans: Vec<Vec<usize>>,
    /// Exact cause of each lock-acquisition failure, keyed by
    /// (failing core, cycle).
    lock_cause: HashMap<(u32, u64), LockCause>,
    /// Every `SetFree` write as (cycle, writing core), in order.
    set_free: Vec<(u64, u32)>,
    /// Memory-transaction phases per (core, port index).
    phases: HashMap<(u32, u8), PortPhases>,
    /// Comparator-blocked intervals per core (the events carry no port).
    blocked: HashMap<u32, Vec<(u64, u64)>>,
    /// Core-state timelines: (transition cycle, state name), in order.
    states: Vec<Vec<(u64, &'static str)>>,
}

/// Stall-reason bus indices, mirroring the core crate's
/// `StallReason::index` (the obs crate cannot depend on it).
pub(crate) mod reason_idx {
    pub const SCAN_LOCK: u8 = 0;
    pub const FREE_LOCK: u8 = 1;
    pub const HEADER_LOCK: u8 = 2;
    pub const BODY_LOAD: u8 = 3;
    pub const BODY_STORE: u8 = 4;
    pub const HEADER_LOAD: u8 = 5;
    pub const HEADER_STORE: u8 = 6;
    pub const EMPTY_SPIN: u8 = 7;
    #[allow(dead_code)] // completes the index mirror; exercised in tests
    pub const DRAIN: u8 = 8;
}

/// The memory port index a stall reason waits on, if it is a memory
/// stall (matches `hwgc_memsim::Port as u8`).
pub(crate) fn port_of_reason(reason: u8) -> Option<u8> {
    match reason {
        reason_idx::HEADER_LOAD => Some(0),
        reason_idx::HEADER_STORE => Some(1),
        reason_idx::BODY_LOAD => Some(2),
        reason_idx::BODY_STORE => Some(3),
        _ => None,
    }
}

pub(crate) fn is_lock_reason(reason: u8) -> bool {
    matches!(
        reason,
        reason_idx::SCAN_LOCK | reason_idx::FREE_LOCK | reason_idx::HEADER_LOCK
    )
}

impl RunModel {
    /// Replay `recording` into a queryable model.
    pub fn build(recording: &Recording, meta: &RunMeta) -> RunModel {
        let n_cores = meta.n_cores;
        let mut model = RunModel {
            n_cores,
            total: meta.total_cycles,
            phase_start: 0,
            spans: Vec::new(),
            per_core_spans: vec![Vec::new(); n_cores],
            lock_cause: HashMap::new(),
            set_free: Vec::new(),
            phases: HashMap::new(),
            blocked: HashMap::new(),
            states: vec![Vec::new(); n_cores],
        };

        // SB register/lock state, replayed in stream order (within a
        // cycle, bus order equals operation order).
        let mut scan_owner: Option<u32> = None;
        let mut free_owner: Option<u32> = None;
        let mut header_holder: HashMap<u32, u32> = HashMap::new();
        // Last register write this cycle, as (cycle, core).
        let mut scan_write: Option<(u64, u32)> = None;
        let mut free_write: Option<(u64, u32)> = None;

        // Open memory transactions: issue/service-start cycles pending
        // their matching service-start/retire, FIFO per (core, port).
        let mut open_queued: HashMap<(u32, u8), Vec<u64>> = HashMap::new();
        let mut open_service: HashMap<(u32, u8), Vec<u64>> = HashMap::new();
        let mut open_blocked: HashMap<(u32, u32), u64> = HashMap::new();

        for &(ts, ref event) in &recording.events {
            match *event {
                OwnedEvent::Phase {
                    name: "scan",
                    begin: true,
                } => {
                    model.phase_start = ts;
                }
                OwnedEvent::StallSpan {
                    core,
                    reason,
                    name,
                    since,
                    len,
                } => {
                    let idx = model.spans.len();
                    model.spans.push(Span {
                        core,
                        reason,
                        name,
                        since,
                        len,
                    });
                    if let Some(list) = model.per_core_spans.get_mut(core as usize) {
                        list.push(idx);
                    }
                }
                OwnedEvent::CoreState { core, name, .. } => {
                    if let Some(tl) = model.states.get_mut(core as usize) {
                        tl.push((ts, name));
                    }
                }
                OwnedEvent::Sb(rec) => {
                    let cycle = rec.cycle;
                    match rec.event {
                        SbEvent::FailScan { core } => {
                            model.lock_cause.insert(
                                (core as u32, cycle),
                                LockCause {
                                    holder: scan_owner,
                                    writer: scan_write.filter(|&(c, _)| c == cycle).map(|(_, w)| w),
                                },
                            );
                        }
                        SbEvent::AcquireScan { core } => scan_owner = Some(core as u32),
                        SbEvent::ReleaseScan { .. } => scan_owner = None,
                        SbEvent::SetScan { core, .. } => scan_write = Some((cycle, core as u32)),
                        SbEvent::FailFree { core } => {
                            model.lock_cause.insert(
                                (core as u32, cycle),
                                LockCause {
                                    holder: free_owner,
                                    writer: free_write.filter(|&(c, _)| c == cycle).map(|(_, w)| w),
                                },
                            );
                        }
                        SbEvent::AcquireFree { core } => free_owner = Some(core as u32),
                        SbEvent::ReleaseFree { .. } => free_owner = None,
                        SbEvent::SetFree { core, .. } => {
                            free_write = Some((cycle, core as u32));
                            model.set_free.push((cycle, core as u32));
                        }
                        SbEvent::FailHeader { core, addr } => {
                            model.lock_cause.insert(
                                (core as u32, cycle),
                                LockCause {
                                    holder: header_holder.get(&addr).copied(),
                                    writer: None,
                                },
                            );
                        }
                        SbEvent::LockHeader { core, addr } => {
                            header_holder.insert(addr, core as u32);
                        }
                        SbEvent::UnlockHeader { addr, .. } => {
                            header_holder.remove(&addr);
                        }
                        SbEvent::Init { .. }
                        | SbEvent::SetBusy { .. }
                        | SbEvent::ClearBusy { .. }
                        | SbEvent::Termination { .. } => {}
                    }
                }
                OwnedEvent::Mem(rec) => {
                    let cycle = rec.cycle;
                    match rec.event {
                        MemEvent::Issue { core, port, .. } => {
                            open_queued
                                .entry((core, port as u8))
                                .or_default()
                                .push(cycle);
                        }
                        MemEvent::ServiceStart { core, port, .. } => {
                            let key = (core, port as u8);
                            if let Some(issued) = open_queued
                                .get_mut(&key)
                                .and_then(|q| (!q.is_empty()).then(|| q.remove(0)))
                            {
                                if cycle > issued {
                                    model
                                        .phases
                                        .entry(key)
                                        .or_default()
                                        .queued
                                        .push((issued, cycle));
                                }
                            }
                            open_service.entry(key).or_default().push(cycle);
                        }
                        MemEvent::Retire { core, port } => {
                            let key = (core, port as u8);
                            if let Some(started) = open_service
                                .get_mut(&key)
                                .and_then(|q| (!q.is_empty()).then(|| q.remove(0)))
                            {
                                if cycle > started {
                                    model
                                        .phases
                                        .entry(key)
                                        .or_default()
                                        .service
                                        .push((started, cycle));
                                }
                            }
                        }
                        MemEvent::CompBlocked { core, addr } => {
                            open_blocked.insert((core, addr), cycle);
                        }
                        MemEvent::CompUnblocked { core, addr } => {
                            if let Some(start) = open_blocked.remove(&(core, addr)) {
                                if cycle > start {
                                    model.blocked.entry(core).or_default().push((start, cycle));
                                }
                            }
                        }
                        MemEvent::CacheHit { .. }
                        | MemEvent::Consume { .. }
                        | MemEvent::DramAccess { .. } => {}
                    }
                }
                _ => {}
            }
        }
        for (&(core, port), phases) in &mut model.phases {
            // A request still open at the end of the run stays unpaired;
            // its cycles fall into `unattributed` (should not happen — the
            // engine drains memory before terminating).
            let _ = (core, port);
            phases.blocked.sort_unstable();
            phases.service.sort_unstable();
            phases.queued.sort_unstable();
        }
        for list in model.blocked.values_mut() {
            list.sort_unstable();
        }
        model
    }

    /// The lock-failure cause recorded for `core` at `cycle`, if any.
    pub fn lock_cause(&self, core: u32, cycle: u64) -> Option<LockCause> {
        self.lock_cause.get(&(core, cycle)).copied()
    }

    /// The stall span of `core` covering `cycle`, if any.
    pub fn span_at(&self, core: u32, cycle: u64) -> Option<&Span> {
        let list = self.per_core_spans.get(core as usize)?;
        // Spans are emitted in resolution order, which is also `since`
        // order per core; binary search the last span starting <= cycle.
        let pos = list.partition_point(|&i| self.spans[i].since <= cycle);
        if pos == 0 {
            return None;
        }
        let span = &self.spans[list[pos - 1]];
        (cycle <= span.last()).then_some(span)
    }

    /// The previous stall span of `core` ending strictly before `cycle`.
    pub fn span_before(&self, core: u32, cycle: u64) -> Option<&Span> {
        let list = self.per_core_spans.get(core as usize)?;
        let pos = list.partition_point(|&i| self.spans[i].since < cycle);
        list[..pos]
            .iter()
            .rev()
            .map(|&i| &self.spans[i])
            .find(|s| s.last() < cycle)
    }

    /// The microprogram state `core` was in at `cycle` (the latest
    /// transition stamped at or before it).
    pub fn state_at(&self, core: u32, cycle: u64) -> Option<&'static str> {
        let tl = self.states.get(core as usize)?;
        let pos = tl.partition_point(|&(c, _)| c <= cycle);
        (pos > 0).then(|| tl[pos - 1].1)
    }

    /// The last `SetFree` write at or before `cycle`, as
    /// (cycle, writing core).
    pub fn last_set_free_at(&self, cycle: u64) -> Option<(u64, u32)> {
        let pos = self.set_free.partition_point(|&(c, _)| c <= cycle);
        (pos > 0).then(|| self.set_free[pos - 1])
    }

    /// The core whose final transition to `Done` carries the largest
    /// stamp — the core that finished last (falls back to core 0 for
    /// state-free recordings).
    pub fn last_to_finish(&self) -> u32 {
        let mut best = (0u64, 0u32);
        for (core, tl) in self.states.iter().enumerate() {
            if let Some(&(c, _)) = tl.iter().rev().find(|&&(_, n)| n == "Done") {
                if c >= best.0 {
                    best = (c, core as u32);
                }
            }
        }
        best.1
    }

    /// Split the stalled interval `[lo, hi]` (inclusive cycles) of a
    /// memory stall on `port` into sub-cause cycle counts:
    /// (comparator, service, queued). The remainder up to `hi - lo + 1`
    /// is the caller's plain-class share.
    pub(crate) fn mem_split(&self, core: u32, port: u8, lo: u64, hi: u64) -> (u64, u64, u64) {
        let overlap = |ivs: &[(u64, u64)], mut lo: u64, hi: u64, out: &mut Vec<(u64, u64)>| {
            let mut n = 0;
            for &(a, b) in ivs {
                // Interval [a, b) against inclusive [lo, hi].
                let s = a.max(lo);
                let e = b.min(hi + 1);
                if s < e {
                    n += e - s;
                    out.push((s, e));
                    lo = lo.max(e);
                }
            }
            n
        };
        // Priority: comparator > service > queued; later classes only
        // count cycles not already claimed. The phase intervals of one
        // (core, port) stream are disjoint within a class but can overlap
        // across classes only through comparator blocks, which precede
        // queuing — subtracting claimed cycles keeps the split exact.
        let mut claimed: Vec<(u64, u64)> = Vec::new();
        let blocked = self
            .blocked
            .get(&core)
            .map_or(0, |ivs| overlap(ivs, lo, hi, &mut claimed));
        let unclaimed = |ivs: &[(u64, u64)], claimed: &[(u64, u64)]| {
            let mut n = 0u64;
            for &(a, b) in ivs {
                let s = a.max(lo);
                let e = b.min(hi + 1);
                if s >= e {
                    continue;
                }
                let mut span = e - s;
                for &(ca, cb) in claimed {
                    let os = ca.max(s);
                    let oe = cb.min(e);
                    if os < oe {
                        span = span.saturating_sub(oe - os);
                    }
                }
                n += span;
            }
            n
        };
        let key = (core, port);
        let (service, queued) = match self.phases.get(&key) {
            Some(p) => (
                unclaimed(&p.service, &claimed),
                unclaimed(&p.queued, &claimed),
            ),
            None => (0, 0),
        };
        // Service and queued phases of one FIFO stream never overlap, so
        // only the comparator subtraction above is needed.
        let width = hi - lo + 1;
        let service = service.min(width - blocked.min(width));
        let queued = queued.min(width - blocked - service);
        (blocked, service, queued)
    }
}

/// One stall class's blame row. `causes` sums exactly to `total`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassBlame {
    /// Stall-class display name (`"scan_lock"`, `"body_load"`, …).
    pub name: &'static str,
    /// Total stall cycles of the class across all cores (sum of span
    /// lengths — identical to the engine's `StallBreakdown` counter).
    pub total: u64,
    /// Cause cells; values sum to `total`.
    pub causes: BTreeMap<String, u64>,
}

/// The blame attribution of one recorded run.
#[derive(Debug, Clone, Default)]
pub struct BlameReport {
    /// One row per stall class that occurred, ordered by descending
    /// total.
    pub classes: Vec<ClassBlame>,
    /// Core×core contention graph: `edges[(i, j)]` counts cycles core
    /// `i` waited on a lock held (or a register port written) by `j`.
    pub edges: BTreeMap<(u32, u32), u64>,
    /// Per-core cause tallies keyed `"class/cause"`.
    pub per_core: Vec<BTreeMap<String, u64>>,
}

impl BlameReport {
    /// Total attributed cycles of class `name` (0 when absent).
    pub fn class_total(&self, name: &str) -> u64 {
        self.classes
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }

    /// Sum the per-core tally of `core` over all `"class/cause"` keys
    /// accepted by `pred(class, cause)`.
    pub fn per_core_matching(&self, core: usize, pred: impl Fn(&str, &str) -> bool) -> u64 {
        self.per_core.get(core).map_or(0, |m| {
            m.iter()
                .filter(|(k, _)| {
                    let (class, cause) = k.split_once('/').unwrap_or((k, ""));
                    pred(class, cause)
                })
                .map(|(_, v)| v)
                .sum()
        })
    }

    /// Check that every row's cause cells sum exactly to its total.
    pub fn validate(&self) -> Result<(), String> {
        for class in &self.classes {
            let sum: u64 = class.causes.values().sum();
            if sum != class.total {
                return Err(format!(
                    "class {}: causes sum to {sum}, total is {}",
                    class.name, class.total
                ));
            }
        }
        Ok(())
    }
}

/// Chain label for a lock-stall cycle blamed on `holder`, extended by
/// what the holder was doing at that cycle (depth ≤ 3).
/// FIFO-fault designation for a memory-stall span: the cause cell when
/// the transaction only exists because the header FIFO was full.
///
/// * a `header_store` span beginning in `ChildEvacOverflow` is the gray
///   header taking the memory path on overflow (`fifo.overflow`);
/// * a `header_load` span beginning in `ScanHeaderWait` is the gray
///   header being *re-loaded* inside the scan critical section after a
///   FIFO miss (`fifo.reload`) — the engine only issues that load when
///   `fifo.peek` missed, and a never-overflowing FIFO has a 100% hit
///   rate, so these loads vanish with the overflow (the paper's `cup`
///   pathology: overflow lengthens the scan critical section).
pub(crate) fn fifo_fault(model: &RunModel, core: u32, span: &Span) -> Option<&'static str> {
    match (span.reason, model.state_at(core, span.since)) {
        (reason_idx::HEADER_STORE, Some("ChildEvacOverflow")) => Some("fifo.overflow"),
        (reason_idx::HEADER_LOAD, Some("ScanHeaderWait")) => Some("fifo.reload"),
        _ => None,
    }
}

fn holder_chain(model: &RunModel, holder: u32, cycle: u64) -> String {
    match model.span_at(holder, cycle) {
        None => format!("held:core{holder}"),
        Some(span) => match port_of_reason(span.reason) {
            None => format!("held:core{holder}->{}", span.name),
            Some(port) => {
                // Same designation rule as the direct charge: a
                // FIFO-fault transaction is the FIFO's fault even two
                // hops up the chain — the what-if FIFO model counts on
                // seeing convoyed waiters.
                if let Some(cause) = fifo_fault(model, holder, span) {
                    return format!("held:core{holder}->{}/{cause}", span.name);
                }
                // Third hop: what was the holder's memory stall waiting
                // on at this exact cycle?
                let (blocked, service, queued) = model.mem_split(holder, port, cycle, cycle);
                let sub = if blocked > 0 {
                    "mem.comparator"
                } else if service > 0 {
                    "dram.latency"
                } else if queued > 0 {
                    "dram.queue"
                } else {
                    UNATTRIBUTED
                };
                format!("held:core{holder}->{}/{sub}", span.name)
            }
        },
    }
}

/// Attribute every stall cycle of the recording to a cause. See the
/// module docs for the rules. `BlameReport::validate` holds by
/// construction; callers reconcile `classes[..].total` against the
/// engine's stall counters for the conservative-completeness check.
pub fn attribute(model: &RunModel) -> BlameReport {
    let mut report = BlameReport {
        per_core: vec![BTreeMap::new(); model.n_cores],
        ..BlameReport::default()
    };
    let mut rows: BTreeMap<&'static str, ClassBlame> = BTreeMap::new();

    let mut charge = |name: &'static str,
                      core: u32,
                      cause: String,
                      n: u64,
                      per_core: &mut Vec<BTreeMap<String, u64>>| {
        if n == 0 {
            return;
        }
        let row = rows.entry(name).or_insert_with(|| ClassBlame {
            name,
            total: 0,
            causes: BTreeMap::new(),
        });
        row.total += n;
        if let Some(m) = per_core.get_mut(core as usize) {
            *m.entry(format!("{name}/{cause}")).or_default() += n;
        }
        *row.causes.entry(cause).or_default() += n;
    };

    for span in &model.spans {
        let core = span.core;
        if is_lock_reason(span.reason) {
            // Per-cycle causes from the SB replay (Fail events are 1:1
            // with lock-stall cycles while the log is on). Identical
            // consecutive causes fold into one charge.
            let mut run: Option<(String, Option<u32>, u64)> = None;
            for cycle in span.since..=span.last() {
                let (cause, blocker) = match model.lock_cause(core, cycle) {
                    Some(LockCause {
                        holder: Some(j), ..
                    }) => (holder_chain(model, j, cycle), Some(j)),
                    Some(LockCause {
                        writer: Some(j), ..
                    }) => (format!("write_port:core{j}"), Some(j)),
                    _ => (UNATTRIBUTED.to_string(), None),
                };
                if let Some(j) = blocker {
                    *report.edges.entry((core, j)).or_default() += 1;
                }
                match &mut run {
                    Some((c, _, n)) if *c == cause => *n += 1,
                    _ => {
                        if let Some((c, _, n)) = run.take() {
                            charge(span.name, core, c, n, &mut report.per_core);
                        }
                        run = Some((cause, blocker, 1));
                    }
                }
            }
            if let Some((c, _, n)) = run {
                charge(span.name, core, c, n, &mut report.per_core);
            }
        } else if let Some(port) = port_of_reason(span.reason) {
            if let Some(cause) = fifo_fault(model, core, span) {
                // The transaction only exists because the FIFO was full:
                // blame the FIFO, not the memory path (see `fifo_fault`).
                charge(
                    span.name,
                    core,
                    cause.to_string(),
                    span.len,
                    &mut report.per_core,
                );
                continue;
            }
            let (blocked, service, queued) = model.mem_split(core, port, span.since, span.last());
            let rest = span.len - blocked - service - queued;
            charge(
                span.name,
                core,
                "mem.comparator".into(),
                blocked,
                &mut report.per_core,
            );
            charge(
                span.name,
                core,
                "dram.latency".into(),
                service,
                &mut report.per_core,
            );
            charge(
                span.name,
                core,
                "dram.queue".into(),
                queued,
                &mut report.per_core,
            );
            charge(
                span.name,
                core,
                UNATTRIBUTED.into(),
                rest,
                &mut report.per_core,
            );
        } else if span.reason == reason_idx::EMPTY_SPIN {
            // The spin is over a worklist no one is refilling; blame the
            // producer side as a whole.
            charge(
                span.name,
                core,
                "worklist.empty".to_string(),
                span.len,
                &mut report.per_core,
            );
        } else {
            // Drain (and any future reason): self-inflicted.
            charge(
                span.name,
                core,
                span.name.to_string(),
                span.len,
                &mut report.per_core,
            );
        }
    }

    report.classes = rows.into_values().collect();
    report.classes.sort_by_key(|c| std::cmp::Reverse(c.total));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_memsim::{MemEventRecord, Port};
    use hwgc_sync::SbEventRecord;

    fn meta(n_cores: usize, total: u64) -> RunMeta {
        RunMeta {
            name: "t".to_string(),
            n_cores,
            total_cycles: total,
        }
    }

    fn sb(cycle: u64, event: SbEvent) -> (u64, OwnedEvent) {
        (cycle, OwnedEvent::Sb(SbEventRecord { cycle, event }))
    }

    fn mem(cycle: u64, event: MemEvent) -> (u64, OwnedEvent) {
        (cycle, OwnedEvent::Mem(MemEventRecord { cycle, event }))
    }

    fn span(core: u32, reason: u8, name: &'static str, since: u64, len: u64) -> (u64, OwnedEvent) {
        (
            since + len - 1,
            OwnedEvent::StallSpan {
                core,
                reason,
                name,
                since,
                len,
            },
        )
    }

    #[test]
    fn lock_stall_blamed_on_holder_with_edge() {
        let rec = Recording {
            events: vec![
                sb(10, SbEvent::AcquireScan { core: 0 }),
                sb(11, SbEvent::FailScan { core: 1 }),
                sb(12, SbEvent::FailScan { core: 1 }),
                sb(13, SbEvent::FailScan { core: 1 }),
                sb(14, SbEvent::ReleaseScan { core: 0 }),
                span(1, reason_idx::SCAN_LOCK, "scan_lock", 11, 3),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 20));
        let report = attribute(&model);
        report.validate().unwrap();
        assert_eq!(report.class_total("scan_lock"), 3);
        let row = &report.classes[0];
        assert_eq!(row.causes.get("held:core0"), Some(&3));
        assert_eq!(report.edges.get(&(1, 0)), Some(&3));
        assert_eq!(
            report.per_core_matching(1, |class, cause| class == "scan_lock"
                && cause.starts_with("held:")),
            3
        );
    }

    #[test]
    fn write_port_conflict_blamed_on_writer() {
        // Core 0 acquires, writes and releases within cycle 5; core 1's
        // failure in the same cycle is a write-port conflict.
        let rec = Recording {
            events: vec![
                sb(5, SbEvent::AcquireFree { core: 0 }),
                sb(
                    5,
                    SbEvent::SetFree {
                        core: 0,
                        from: 0,
                        to: 8,
                    },
                ),
                sb(5, SbEvent::ReleaseFree { core: 0 }),
                sb(5, SbEvent::FailFree { core: 1 }),
                span(1, reason_idx::FREE_LOCK, "free_lock", 5, 1),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 10));
        let report = attribute(&model);
        report.validate().unwrap();
        assert_eq!(report.classes[0].causes.get("write_port:core0"), Some(&1));
        assert_eq!(report.edges.get(&(1, 0)), Some(&1));
    }

    #[test]
    fn convoy_chain_extends_to_the_holders_stall() {
        // Core 0 holds the scan lock across a header load (the FIFO-miss
        // convoy); core 1's wait is chained to that load.
        let rec = Recording {
            events: vec![
                sb(10, SbEvent::AcquireScan { core: 0 }),
                sb(11, SbEvent::FailScan { core: 1 }),
                sb(12, SbEvent::FailScan { core: 1 }),
                span(0, reason_idx::HEADER_LOAD, "header_load", 10, 4),
                span(1, reason_idx::SCAN_LOCK, "scan_lock", 11, 2),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 20));
        let report = attribute(&model);
        report.validate().unwrap();
        let scan_row = report
            .classes
            .iter()
            .find(|c| c.name == "scan_lock")
            .unwrap();
        assert_eq!(
            scan_row.causes.get("held:core0->header_load/unattributed"),
            Some(&2)
        );
    }

    #[test]
    fn memory_stall_splits_into_phases() {
        // Issue at 10, service starts at 14, retires at 19: a stall span
        // covering 11..=18 splits into 4 queued + 4 in-service cycles.
        let rec = Recording {
            events: vec![
                mem(
                    10,
                    MemEvent::Issue {
                        core: 0,
                        port: Port::BodyLoad,
                        addr: 64,
                    },
                ),
                mem(
                    14,
                    MemEvent::ServiceStart {
                        core: 0,
                        port: Port::BodyLoad,
                        latency: 5,
                    },
                ),
                mem(
                    19,
                    MemEvent::Retire {
                        core: 0,
                        port: Port::BodyLoad,
                    },
                ),
                span(0, reason_idx::BODY_LOAD, "body_load", 11, 8),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 30));
        let report = attribute(&model);
        report.validate().unwrap();
        let row = &report.classes[0];
        assert_eq!(row.total, 8);
        assert_eq!(row.causes.get("dram.queue"), Some(&3)); // 11..14
        assert_eq!(row.causes.get("dram.latency"), Some(&5)); // 14..19
    }

    #[test]
    fn comparator_block_takes_priority() {
        let rec = Recording {
            events: vec![
                mem(
                    10,
                    MemEvent::Issue {
                        core: 0,
                        port: Port::HeaderLoad,
                        addr: 8,
                    },
                ),
                mem(10, MemEvent::CompBlocked { core: 0, addr: 8 }),
                mem(16, MemEvent::CompUnblocked { core: 0, addr: 8 }),
                mem(
                    16,
                    MemEvent::ServiceStart {
                        core: 0,
                        port: Port::HeaderLoad,
                        latency: 2,
                    },
                ),
                mem(
                    18,
                    MemEvent::Retire {
                        core: 0,
                        port: Port::HeaderLoad,
                    },
                ),
                span(0, reason_idx::HEADER_LOAD, "header_load", 11, 7),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 30));
        let report = attribute(&model);
        report.validate().unwrap();
        let row = &report.classes[0];
        assert_eq!(row.causes.get("mem.comparator"), Some(&5)); // 11..16
        assert_eq!(row.causes.get("dram.latency"), Some(&2)); // 16..18
    }

    #[test]
    fn unexplained_cycles_land_in_unattributed() {
        let rec = Recording {
            events: vec![span(0, reason_idx::BODY_STORE, "body_store", 5, 4)],
        };
        let model = RunModel::build(&rec, &meta(1, 20));
        let report = attribute(&model);
        report.validate().unwrap();
        assert_eq!(report.classes[0].causes.get(UNATTRIBUTED), Some(&4));
        assert_eq!(report.class_total("body_store"), 4);
    }

    #[test]
    fn overflow_store_blamed_on_the_fifo() {
        let rec = Recording {
            events: vec![
                (
                    9,
                    OwnedEvent::CoreState {
                        core: 0,
                        state: 11,
                        name: "ChildEvacOverflow",
                    },
                ),
                span(0, reason_idx::HEADER_STORE, "header_store", 10, 6),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 30));
        let report = attribute(&model);
        report.validate().unwrap();
        assert_eq!(report.classes[0].causes.get("fifo.overflow"), Some(&6));
        assert_eq!(
            report.per_core_matching(0, |_, cause| cause == "fifo.overflow"),
            6
        );
    }

    #[test]
    fn empty_spin_and_drain_rows() {
        let rec = Recording {
            events: vec![
                span(0, reason_idx::EMPTY_SPIN, "empty_spin", 3, 7),
                span(0, reason_idx::DRAIN, "drain", 20, 2),
            ],
        };
        let model = RunModel::build(&rec, &meta(1, 30));
        let report = attribute(&model);
        report.validate().unwrap();
        assert_eq!(report.class_total("empty_spin"), 7);
        assert_eq!(report.class_total("drain"), 2);
    }

    #[test]
    fn model_lookups() {
        let rec = Recording {
            events: vec![
                (
                    0,
                    OwnedEvent::Phase {
                        name: "scan",
                        begin: true,
                    },
                ),
                (
                    4,
                    OwnedEvent::CoreState {
                        core: 0,
                        state: 1,
                        name: "Poll",
                    },
                ),
                sb(
                    6,
                    SbEvent::SetFree {
                        core: 1,
                        from: 0,
                        to: 4,
                    },
                ),
                span(0, reason_idx::BODY_LOAD, "body_load", 5, 3),
                span(0, reason_idx::EMPTY_SPIN, "empty_spin", 12, 2),
            ],
        };
        let model = RunModel::build(&rec, &meta(2, 20));
        assert_eq!(model.span_at(0, 6).map(|s| s.name), Some("body_load"));
        assert_eq!(model.span_at(0, 8), None);
        assert_eq!(model.span_at(0, 13).map(|s| s.name), Some("empty_spin"));
        assert_eq!(model.span_before(0, 12).map(|s| s.name), Some("body_load"));
        assert_eq!(model.span_before(0, 5), None);
        assert_eq!(model.state_at(0, 10), Some("Poll"));
        assert_eq!(model.state_at(0, 3), None);
        assert_eq!(model.last_set_free_at(7), Some((6, 1)));
        assert_eq!(model.last_set_free_at(5), None);
    }
}
