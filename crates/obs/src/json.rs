//! A minimal JSON value, writer and parser.
//!
//! The build environment has no registry access, so the exporters and
//! their round-trip/validation tests use this self-contained
//! implementation instead of serde. Integers are kept exact (`i128`), so
//! `u64` metric counts survive a serialize → parse → serialize cycle bit
//! for bit; floats use the shortest `{:?}` form, which Rust guarantees to
//! round-trip.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer (exact; covers all `u64`/`i64` metric values).
    Int(i128),
    /// Non-integer number.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved — snapshots are deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let chunk = std::str::from_utf8(chunk).map_err(|_| self.err("bad UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("bad number"))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',', "expected , or ]")?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',', "expected , or }")?;
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Int(u64::MAX as i128)),
            ("b".into(), Json::Float(0.125)),
            (
                "c".into(),
                Json::Arr(vec![
                    Json::Null,
                    Json::Bool(true),
                    Json::Str("x\"y\n".into()),
                ]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_max_is_exact() {
        let text = format!("{}", u64::MAX);
        assert_eq!(Json::parse(&text).unwrap().as_int(), Some(u64::MAX as i128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = Json::parse("{\"a\":1}").unwrap();
        assert!(v.get("missing").is_none());
        assert!(v.as_arr().is_none());
        assert!(v.get("a").unwrap().as_str().is_none());
    }
}
