//! The event bus: the [`Probe`] trait and its standard implementations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, OwnedEvent};

/// An event-bus subscriber. The engine is generic over its probe, and the
/// default [`NullProbe`] has `ACTIVE == false`, so every emission site —
/// guarded by `if P::ACTIVE` — compiles away entirely in the probe-less
/// configuration: zero overhead when disabled, by construction.
pub trait Probe {
    /// Statically known subscription flag. Emission sites are guarded by
    /// this constant; `false` removes them at compile time.
    const ACTIVE: bool = true;

    /// Receive one cycle-stamped event.
    fn record(&mut self, cycle: u64, event: &Event<'_>);

    /// The next cycle `>= from` at which this probe wants an
    /// [`Event::Sample`], or `None` for never. The engine also uses this
    /// to cap event-horizon fast-forward jumps so no wanted sample is
    /// skipped (the same rule `SignalTrace` always imposed).
    fn next_sample(&self, _from: u64) -> Option<u64> {
        None
    }

    /// Should the engine enable the SB's complete operation log and
    /// bridge it onto the bus? Enabling it pins per-cycle lock-failure
    /// events, which the fast-forward path already honors bit-exactly.
    fn wants_sb_events(&self) -> bool {
        Self::ACTIVE
    }

    /// Should the engine enable the memory system's transition log and
    /// bridge it onto the bus?
    fn wants_mem_events(&self) -> bool {
        Self::ACTIVE
    }
}

/// The default probe: subscribes to nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _event: &Event<'_>) {}
}

/// A recorded event stream: what a [`Recorder`] saw, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// `(bus cycle stamp, event)` in emission order.
    pub events: Vec<(u64, OwnedEvent)>,
}

impl Recording {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the recording empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The SB operation records in the stream, in order.
    pub fn sb_events(&self) -> impl Iterator<Item = &hwgc_sync::SbEventRecord> {
        self.events.iter().filter_map(|(_, e)| match e {
            OwnedEvent::Sb(rec) => Some(rec),
            _ => None,
        })
    }

    /// The memory-system records in the stream, in order.
    pub fn mem_events(&self) -> impl Iterator<Item = &hwgc_memsim::MemEventRecord> {
        self.events.iter().filter_map(|(_, e)| match e {
            OwnedEvent::Mem(rec) => Some(rec),
            _ => None,
        })
    }
}

/// A probe that records every event it sees, with an optional sample
/// period (like `SignalTrace::new(sample_every)`).
#[derive(Debug, Default)]
pub struct Recorder {
    recording: Recording,
    /// `Some(n)`: request a [`Event::Sample`] every `n` cycles.
    pub sample_every: Option<u64>,
}

impl Recorder {
    /// Recorder with no sampling (transition events only).
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Recorder that additionally samples every `sample_every` cycles.
    pub fn sampling(sample_every: u64) -> Recorder {
        assert!(sample_every >= 1);
        Recorder {
            recording: Recording::default(),
            sample_every: Some(sample_every),
        }
    }

    /// The recorded stream.
    pub fn recording(&self) -> &Recording {
        &self.recording
    }

    /// Consume the recorder, yielding the stream.
    pub fn into_recording(self) -> Recording {
        self.recording
    }
}

impl Probe for Recorder {
    fn record(&mut self, cycle: u64, event: &Event<'_>) {
        self.recording.events.push((cycle, event.to_owned()));
    }

    fn next_sample(&self, from: u64) -> Option<u64> {
        let n = self.sample_every?;
        Some(from.div_ceil(n) * n)
    }
}

/// Broadcast to two probes. `ACTIVE` if either side is; `next_sample` is
/// the earlier of the two requests.
pub struct Fanout<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: Probe, B: Probe> Probe for Fanout<'_, A, B> {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    fn record(&mut self, cycle: u64, event: &Event<'_>) {
        if A::ACTIVE {
            self.0.record(cycle, event);
        }
        if B::ACTIVE {
            self.1.record(cycle, event);
        }
    }

    fn next_sample(&self, from: u64) -> Option<u64> {
        match (self.0.next_sample(from), self.1.next_sample(from)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn wants_sb_events(&self) -> bool {
        self.0.wants_sb_events() || self.1.wants_sb_events()
    }

    fn wants_mem_events(&self) -> bool {
        self.0.wants_mem_events() || self.1.wants_mem_events()
    }
}

/// A thread-safe, cloneable bus endpoint for the software collectors,
/// whose worker threads have no simulated clock: events are stamped with
/// a global operation sequence number instead. Cheap when unused — the
/// collectors take `Option<&SharedProbe>` and skip the lock entirely on
/// `None`.
#[derive(Debug, Clone, Default)]
pub struct SharedProbe {
    events: Arc<Mutex<Vec<(u64, OwnedEvent)>>>,
    seq: Arc<AtomicU64>,
}

impl SharedProbe {
    /// Empty shared bus endpoint.
    pub fn new() -> SharedProbe {
        SharedProbe::default()
    }

    /// Record one event, stamped with the next global sequence number.
    pub fn record(&self, event: &Event<'_>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events
            .lock()
            .expect("probe poisoned")
            .push((seq, event.to_owned()));
    }

    /// Drain everything recorded so far into a [`Recording`].
    pub fn take_recording(&self) -> Recording {
        Recording {
            events: std::mem::take(&mut *self.events.lock().expect("probe poisoned")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_inactive() {
        const { assert!(!NullProbe::ACTIVE) };
        let mut p = NullProbe;
        p.record(
            0,
            &Event::Phase {
                name: "root",
                begin: true,
            },
        );
        assert_eq!(p.next_sample(0), None);
        assert!(!p.wants_sb_events());
    }

    #[test]
    fn recorder_records_in_order_and_samples() {
        let mut r = Recorder::sampling(4);
        assert_eq!(r.next_sample(0), Some(0));
        assert_eq!(r.next_sample(1), Some(4));
        assert_eq!(r.next_sample(4), Some(4));
        assert_eq!(r.next_sample(5), Some(8));
        r.record(3, &Event::FifoDepth { depth: 2 });
        r.record(5, &Event::FifoDepth { depth: 1 });
        let rec = r.into_recording();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events[0], (3, OwnedEvent::FifoDepth { depth: 2 }));
    }

    #[test]
    fn fanout_is_active_if_either_side_is() {
        const { assert!(<Fanout<'static, NullProbe, Recorder> as Probe>::ACTIVE) };
        const { assert!(!<Fanout<'static, NullProbe, NullProbe> as Probe>::ACTIVE) };
        let mut a = NullProbe;
        let mut b = Recorder::sampling(2);
        let mut f = Fanout(&mut a, &mut b);
        f.record(1, &Event::FifoDepth { depth: 7 });
        assert_eq!(f.next_sample(1), Some(2));
        assert!(f.wants_sb_events());
        assert_eq!(b.recording().len(), 1);
    }

    #[test]
    fn fanout_delivers_left_then_right_per_event() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct TagProbe {
            tag: &'static str,
            log: Rc<RefCell<Vec<(&'static str, u64)>>>,
        }
        impl Probe for TagProbe {
            fn record(&mut self, cycle: u64, _event: &Event<'_>) {
                self.log.borrow_mut().push((self.tag, cycle));
            }
        }

        let log = Rc::new(RefCell::new(Vec::new()));
        let mut a = TagProbe {
            tag: "left",
            log: log.clone(),
        };
        let mut b = TagProbe {
            tag: "right",
            log: log.clone(),
        };
        let mut f = Fanout(&mut a, &mut b);
        f.record(3, &Event::FifoDepth { depth: 1 });
        f.record(7, &Event::FifoDepth { depth: 2 });
        // Both sides see every event, interleaved per event in tuple
        // order — never batched per side. Consumers (e.g. a live tracer
        // fanned out with a recorder) rely on this relative order.
        assert_eq!(
            *log.borrow(),
            vec![("left", 3), ("right", 3), ("left", 7), ("right", 7)]
        );
    }

    #[test]
    fn fanout_next_sample_is_the_earlier_request() {
        let mut a = Recorder::sampling(6);
        let mut b = Recorder::sampling(4);
        let f = Fanout(&mut a, &mut b);
        assert_eq!(f.next_sample(1), Some(4), "b's request comes first");
        assert_eq!(f.next_sample(5), Some(6), "a's request comes first");
        let mut n = NullProbe;
        let mut c = Recorder::sampling(4);
        let g = Fanout(&mut n, &mut c);
        assert_eq!(g.next_sample(1), Some(4), "None side defers to Some");
    }

    #[test]
    fn shared_probe_stamps_with_sequence_numbers() {
        let p = SharedProbe::new();
        let p2 = p.clone();
        p.record(&Event::Steal {
            thief: 1,
            victim: 0,
            success: true,
        });
        p2.record(&Event::PacketHandoff { thread: 2, refs: 8 });
        let rec = p.take_recording();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events[0].0, 0);
        assert_eq!(rec.events[1].0, 1);
        assert!(p.take_recording().is_empty(), "drained");
    }
}
