//! Unified observability layer for the whole simulator.
//!
//! Every subsystem reports into one **event bus**: the engine emits typed,
//! cycle-stamped [`Event`]s (core state transitions, worklist claims,
//! phase boundaries, signal samples), and the hardware-unit models keep
//! cheap opt-in logs — the synchronization block's [`hwgc_sync::SbEvent`]
//! and the memory system's [`hwgc_memsim::MemEvent`] — that the engine
//! bridges onto the bus with stamps unified on the *engine* clock.
//!
//! The bus is a [`Probe`]: a statically-dispatched trait whose default
//! implementation, [`NullProbe`], compiles to nothing. The engine's
//! steady-state loop guards every emission with `P::ACTIVE` (an associated
//! `const`), so a probe-less run keeps its allocation-free hot loop and
//! event-horizon fast-forward at their current cycle costs — verified by
//! the existing counting-allocator and differential tests.
//!
//! On top of the bus sit:
//!
//! * a **metrics registry** ([`MetricsRegistry`]) of counters, gauges and
//!   log2-bucketed histograms with a stable JSON snapshot schema
//!   ([`metrics::SCHEMA`]), derived from a recorded event stream by
//!   [`derive::derive_metrics`];
//! * **exporters**: Chrome trace-event / Perfetto JSON
//!   ([`chrome::chrome_trace_json`]) with one track per GC core and one
//!   per memory port, and a flamegraph-ready folded-stacks dump
//!   ([`FoldedStacks`]).
//!
//! Fast-forward interaction rule (see DESIGN.md §6): every event on the
//! bus is a *transition* — something changed — and fast-forward windows
//! are by construction transition-free for the cores, the FIFO and the SB
//! registers, so probe-on and probe-off runs produce identical `GcStats`
//! and identical event streams. Per-cycle lock-failure events are pinned
//! exactly as the SB event log already pins them (`bulk_fail` is illegal
//! while a log is enabled), and sampled rows cap the skip at the next
//! wanted sample via [`Probe::next_sample`].

pub mod attr;
pub mod chrome;
pub mod critpath;
pub mod derive;
pub mod diff;
pub mod event;
pub mod folded;
pub mod host;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod probe;
pub mod report;
pub mod store;
pub mod telemetry;
pub mod whatif;

pub use attr::{attribute, BlameReport, ClassBlame, RunModel};
pub use chrome::{chrome_trace_json, validate_chrome_trace, ChromeSummary, RunMeta};
pub use critpath::{critical_path, CritPath};
pub use derive::derive_metrics;
pub use diff::{DiffEntry, DiffStatus, LedgerDiff, DIFF_SCHEMA};
pub use event::{Event, OwnedEvent, SampleRec};
pub use folded::FoldedStacks;
pub use host::{
    merge_host_track, validate_hostprof_json, HostProf, HostProfiler, NullHostProf, TimerAgg,
    HOSTPROF_SCHEMA,
};
pub use json::Json;
pub use ledger::{read_jsonl, LedgerRecord, LEDGER_SCHEMA};
pub use metrics::{Histogram, MetricsRegistry};
pub use probe::{Fanout, NullProbe, Probe, Recorder, Recording, SharedProbe};
pub use report::{render_report_json, render_report_markdown, HostSection, RunReport};
pub use store::{strip_host_fields, InsertOutcome, LedgerStore, LoadReport, StoreError};
pub use telemetry::{
    validate_telemetry_jsonl, JobOutcome, SweepProgress, SweepSummary, TELEMETRY_SCHEMA,
};
pub use whatif::{predict, Prediction};
