//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library provides the common
//! plumbing: running a preset through the simulated collector with
//! verification, formatting the paper-style tables, and writing CSV files
//! under `target/experiments/`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use hwgc_core::{GcConfig, GcOutcome, SimCollector};
use hwgc_heap::{verify_collection, Heap, Snapshot};
use hwgc_workloads::{Preset, WorkloadSpec};

/// The core counts evaluated in the paper (Figures 5/6, Table I).
pub const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Run one verified collection of `spec` under `cfg` and return the
/// outcome.
///
/// # Panics
/// Panics if the collected heap fails verification — experiment numbers
/// from an incorrect collection would be meaningless.
pub fn run_verified(spec: &WorkloadSpec, cfg: GcConfig) -> GcOutcome {
    let mut heap = spec.build();
    let snap = Snapshot::capture(&heap);
    let out = SimCollector::new(cfg).collect(&mut heap);
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", spec.preset));
    out
}

/// Run a pre-built heap (caller keeps ownership of workload construction).
pub fn run_verified_heap(heap: &mut Heap, cfg: GcConfig, label: &str) -> GcOutcome {
    let snap = Snapshot::capture(heap);
    let out = SimCollector::new(cfg).collect(heap);
    verify_collection(heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    out
}

/// Default workload spec for a preset (seed fixed for reproducibility).
pub fn spec(preset: Preset) -> WorkloadSpec {
    WorkloadSpec::new(preset, 42)
}

/// Directory that experiment CSV files are written to.
pub fn experiments_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Write `rows` (already comma-joined) to `target/experiments/<name>.csv`
/// with the given header, and tell the user where it went.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("\n[csv] {}", path.display());
}

/// Format a fraction as the paper prints it: `12.34 %`.
pub fn pct(fraction: f64) -> String {
    format!("{:.2} %", fraction * 100.0)
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}
