//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library provides the common
//! plumbing: running a preset through the simulated collector with
//! verification, formatting the paper-style tables, and writing CSV files
//! under `target/experiments/`.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use hwgc_check::{cache_path_from_env, ResultCache};
use hwgc_core::{GcConfig, GcOutcome, GcStats, SignalTrace, SimCollector, StallReason};
use hwgc_heap::{verify_collection, Heap, Snapshot};
use hwgc_jobs::ArtifactStore;
use hwgc_obs::{
    chrome_trace_json, derive_metrics, Fanout, FoldedStacks, HostProfiler, Json, LedgerRecord,
    MetricsRegistry, Recorder, Recording, RunMeta, RunReport, SweepProgress, SweepSummary,
};
use hwgc_workloads::{Preset, WorkloadSpec};

// The ledger key builders and the sweep job layer's entry points live in
// `hwgc-jobs` since the unified sweep layer (PR 10); re-exported here so
// the experiment binaries keep one import surface.
pub use hwgc_jobs::{
    backend_label, engine_label, ledger_config_pairs, ledger_env_pairs, workload_key,
};

/// The core counts evaluated in the paper (Figures 5/6, Table I).
pub const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Run one verified collection of `spec` under `cfg` and return the
/// outcome. Rides the content-addressed result cache: the workload key
/// is derived from the full spec ([`workload_key`]), so a cache hit is
/// guaranteed to describe the identical heap.
///
/// # Panics
/// Panics if the collected heap fails verification — experiment numbers
/// from an incorrect collection would be meaningless — or on a cache
/// integrity violation (a recorded digest disagreeing with a fresh
/// simulation).
pub fn run_verified(spec: &WorkloadSpec, cfg: GcConfig) -> GcOutcome {
    run_cached(&workload_key(spec), &cfg, || {
        let mut heap = spec.build();
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(cfg).collect(&mut heap);
        verify_collection(&heap, out.free, &snap)
            .unwrap_or_else(|e| panic!("{} failed verification: {e}", spec.preset));
        out
    })
}

/// Run a pre-built heap (caller keeps ownership of workload construction).
/// Uncached: a display label does not identify heap *contents*, so this
/// path never consults the result cache — see
/// [`run_verified_heap_keyed`] for callers whose key does.
pub fn run_verified_heap(heap: &mut Heap, cfg: GcConfig, label: &str) -> GcOutcome {
    let snap = Snapshot::capture(heap);
    let out = SimCollector::new(cfg).collect(heap);
    verify_collection(heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    out
}

/// [`run_verified_heap`] through the result cache. `workload_key` is a
/// cache identity, not a display label: the caller guarantees that every
/// heap ever run under this key (across binaries and sessions) is
/// byte-identical. A violated guarantee cannot corrupt results — the
/// digest cross-check hard-fails — but it will abort sweeps.
pub fn run_verified_heap_keyed(heap: &mut Heap, cfg: GcConfig, workload_key: &str) -> GcOutcome {
    run_cached(workload_key, &cfg, move || {
        run_verified_heap(heap, cfg, workload_key)
    })
}

/// Default workload spec for a preset (seed fixed for reproducibility).
pub fn spec(preset: Preset) -> WorkloadSpec {
    WorkloadSpec::new(preset, 42)
}

// ---------------------------------------------------------------------------
// Sweep observatory: result cache + fleet telemetry (PR 9)
// ---------------------------------------------------------------------------

/// One sweep's shared observability state: the content-addressed result
/// cache and the telemetry reporter.
pub struct SweepSession {
    /// The `HWGC_CACHE`-configured result cache.
    pub cache: ResultCache,
    /// The live progress reporter (stderr + `HWGC_TELEMETRY` stream).
    pub progress: SweepProgress,
}

static SWEEP: OnceLock<SweepSession> = OnceLock::new();

/// The committed digest-only ledger the default `ro` cache mode checks
/// against: `HWGC_CACHE_LEDGER` when set, else `BENCH_ledger.jsonl` in
/// the working directory, else relative to the workspace root (so
/// `cargo run` works from anywhere in the tree).
pub fn committed_ledger_path() -> PathBuf {
    if let Some(p) = std::env::var_os("HWGC_CACHE_LEDGER") {
        return PathBuf::from(p);
    }
    let cwd = PathBuf::from("BENCH_ledger.jsonl");
    if cwd.exists() {
        return cwd;
    }
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../../BENCH_ledger.jsonl"),
        None => cwd,
    }
}

/// The telemetry JSONL stream requested via `HWGC_TELEMETRY`, if any.
pub fn telemetry_path() -> Option<PathBuf> {
    std::env::var("HWGC_TELEMETRY")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// The running experiment binary's name (ledger provenance; never part
/// of the config hash).
pub fn binary_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(Path::file_stem)
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "hwgc".to_string())
}

/// Begin (or join) the process-wide sweep session. The first caller
/// names the sweep and announces its job total; later calls — including
/// the lazy one inside [`run_verified`] — return the existing session
/// unchanged. Opens the result cache per `HWGC_CACHE` (committed ledger
/// read-only; workspace cache file from `HWGC_CACHE_PATH` in writable
/// modes) and the telemetry stream per `HWGC_TELEMETRY`.
///
/// # Panics
/// Panics when a cache source is corrupt or holds conflicting digests —
/// a sweep must not start over a cache it cannot trust.
pub fn sweep_begin(name: &str, total: usize) -> &'static SweepSession {
    SWEEP.get_or_init(|| {
        // Sweeps default to `rw` (not the one-off `ro`): resumption and
        // cross-binary dedupe both need payload records on disk.
        let mode = hwgc_jobs::sweep_cache_mode();
        let committed = committed_ledger_path();
        let rw = cache_path_from_env();
        let cache = ResultCache::open(mode, &[&committed], Some(&rw))
            .unwrap_or_else(|e| panic!("result cache failed to open: {e}"));
        let progress = SweepProgress::new(name, total, telemetry_path().as_deref(), false);
        SweepSession { cache, progress }
    })
}

/// The current sweep session, lazily begun with the binary's own name
/// and an open-ended job total.
pub fn sweep_session() -> &'static SweepSession {
    match SWEEP.get() {
        Some(s) => s,
        None => sweep_begin(&binary_name(), 0),
    }
}

/// Emit the telemetry summary line and return the final counters.
/// No-op `None` when no job ever ran through the session.
pub fn sweep_finish() -> Option<SweepSummary> {
    SWEEP.get().map(|s| s.progress.finish())
}

/// Run a declared [`hwgc_jobs::JobSet`] through the session observatory:
/// the shared result cache, fleet telemetry, `HWGC_WORKERS` process
/// fleet sizing and the `HWGC_JOURNAL` resumption journal. Outcomes come
/// back in job-set order regardless of execution engine, so callers can
/// rebuild their tables deterministically.
///
/// # Panics
/// Panics on cache/journal integrity violations and on worker-fleet
/// failures (the journal then holds exactly the completed jobs — rerun
/// the binary to resume).
pub fn sweep_jobset(name: &str, set: &hwgc_jobs::JobSet) -> hwgc_jobs::ExecReport {
    let session = sweep_begin(name, set.len());
    let journal = hwgc_jobs::journal_path_from_env().map(|p| {
        let j = hwgc_jobs::Journal::open(&p, name, set)
            .unwrap_or_else(|e| panic!("resumption journal: {e}"));
        if j.resumed() > 0 {
            eprintln!(
                "[journal] {}: resuming, {} of {} jobs already done",
                j.path().display(),
                j.resumed(),
                set.len()
            );
        }
        j
    });
    hwgc_jobs::run_jobset(
        set,
        &hwgc_jobs::ExecOptions {
            binary: binary_name(),
            cache: &session.cache,
            progress: Some(&session.progress),
            workers: hwgc_jobs::workers(),
            journal: journal.as_ref(),
        },
    )
    .unwrap_or_else(|e| panic!("{name} sweep failed: {e}"))
}

/// The ledger identity of one cacheable job (outputs empty — the cache
/// layer fills them on a miss).
pub fn cache_key(workload: &str, cfg: &GcConfig) -> LedgerRecord {
    LedgerRecord {
        binary: binary_name(),
        workload: workload.to_string(),
        engine: engine_label(cfg).to_string(),
        backend: backend_label(cfg).to_string(),
        config: ledger_config_pairs(cfg),
        env: ledger_env_pairs(),
        ..LedgerRecord::default()
    }
}

/// Satisfy one job through the session cache and report it to telemetry.
fn run_cached(workload: &str, cfg: &GcConfig, sim: impl FnOnce() -> GcOutcome) -> GcOutcome {
    let session = sweep_session();
    let key = cache_key(workload, cfg);
    let started = Instant::now();
    match session.cache.run_cached(&key, sim) {
        Ok((out, how)) => {
            session.progress.job(
                &format!("{workload}@{}c/{}", cfg.n_cores, engine_label(cfg)),
                how,
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            out
        }
        Err(e) => panic!("content-addressed cache integrity failure: {e}"),
    }
}

/// The typed artifact store every experiment binary writes into
/// (`HWGC_ARTIFACTS`, default `target/experiments/`).
pub fn artifacts() -> ArtifactStore {
    ArtifactStore::open_default()
}

/// Directory that experiment CSV files are written to.
pub fn experiments_dir() -> PathBuf {
    artifacts().root().to_path_buf()
}

/// Write `rows` (already comma-joined) to `target/experiments/<name>.csv`
/// with the given header, and tell the user where it went.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = artifacts().csv(name, header, rows);
    println!("\n[csv] {}", path.display());
}

/// Format a fraction as the paper prints it: `12.34 %`.
pub fn pct(fraction: f64) -> String {
    format!("{:.2} %", fraction * 100.0)
}

/// The paper's seven Table II stall columns, in column order, with the
/// snake_case names the CSV and metrics JSON use.
pub const STALL_COLUMNS: [(&str, StallReason); 7] = [
    ("scan_lock", StallReason::ScanLock),
    ("free_lock", StallReason::FreeLock),
    ("header_lock", StallReason::HeaderLock),
    ("body_load", StallReason::BodyLoad),
    ("body_store", StallReason::BodyStore),
    ("header_load", StallReason::HeaderLoad),
    ("header_store", StallReason::HeaderStore),
];

/// One verified collection with the full event bus attached: the classic
/// [`SignalTrace`] (rows + SB event log for the CSV view) and an
/// [`hwgc_obs::Recorder`] (the complete typed stream for the Chrome
/// exporter and the metrics deriver) fan out from a *single* probed run,
/// so every export of the run describes the same collection.
pub fn run_probed_heap(
    heap: &mut Heap,
    cfg: GcConfig,
    label: &str,
    sample_every: u64,
) -> (GcOutcome, SignalTrace, Recording) {
    let snap = Snapshot::capture(heap);
    let mut trace = SignalTrace::with_events(sample_every);
    let mut recorder = Recorder::new();
    let out = {
        let mut trace_probe = trace.as_probe();
        let mut fan = Fanout(&mut trace_probe, &mut recorder);
        SimCollector::new(cfg).collect_probed(heap, &mut fan)
    };
    verify_collection(heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    (out, trace, recorder.into_recording())
}

/// [`run_probed_heap`] on a preset workload.
pub fn run_probed(
    spec: &WorkloadSpec,
    cfg: GcConfig,
    sample_every: u64,
) -> (GcOutcome, SignalTrace, Recording) {
    let mut heap = spec.build();
    run_probed_heap(&mut heap, cfg, &spec.preset.to_string(), sample_every)
}

/// Exporter context for a run.
pub fn run_meta(name: &str, n_cores: usize, out: &GcOutcome) -> RunMeta {
    RunMeta {
        name: name.to_string(),
        n_cores,
        total_cycles: out.stats.total_cycles,
    }
}

/// The classic `trace_dump` text report: headline numbers plus a coarse
/// 40-bucket timeline of the gray population (`#`) and busy cores (`*`),
/// and latency percentiles (p50/p95/p99) of the run's wait and
/// stall-span histograms from `metrics`.
pub fn render_trace_summary(
    label: &str,
    cores: usize,
    out: &GcOutcome,
    trace: &SignalTrace,
    metrics: &MetricsRegistry,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "total cycles: {}", out.stats.total_cycles);
    let _ = writeln!(s, "peak gray population: {} words", trace.peak_gray_words());
    let _ = writeln!(
        s,
        "mean busy cores: {:.2} / {cores}",
        trace.mean_busy_cores()
    );
    let percentiled: Vec<&str> = metrics
        .histogram_names()
        .filter(|n| n.ends_with(".wait_cycles") || n.ends_with(".span_cycles"))
        .filter(|n| metrics.histogram_ref(n).is_some_and(|h| h.count() > 0))
        .collect();
    if !percentiled.is_empty() {
        let _ = writeln!(s, "\n  latency percentiles (cycles)");
        let _ = writeln!(
            s,
            "  {:<28} {:>8} {:>6} {:>6} {:>6}",
            "histogram", "count", "p50", "p95", "p99"
        );
        for name in percentiled {
            let h = metrics.histogram_ref(name).unwrap();
            let _ = writeln!(
                s,
                "  {:<28} {:>8} {:>6} {:>6} {:>6}",
                name,
                h.count(),
                h.p50().unwrap(),
                h.p95().unwrap(),
                h.p99().unwrap()
            );
        }
    }
    let rows = trace.rows();
    let buckets = 40.min(rows.len());
    if buckets > 0 {
        let peak = trace.peak_gray_words().max(1);
        let _ = writeln!(s, "\n  t%   gray-words (#) and busy cores (*)");
        for b in 0..buckets {
            let idx = b * rows.len() / buckets;
            let r = &rows[idx];
            let gbar = (r.gray_words as usize * 30 / peak as usize).min(30);
            let bbar = r.busy_cores as usize * 30 / cores;
            let _ = writeln!(
                s,
                "{:4} {:<31} {:<31}",
                b * 100 / buckets,
                "#".repeat(gbar.max(usize::from(r.gray_words > 0))),
                "*".repeat(bbar)
            );
        }
    }
    let _ = label;
    s
}

/// The signal-trace CSV as a string (one row per sample).
pub fn trace_csv(trace: &SignalTrace) -> String {
    let mut buf = Vec::new();
    trace.write_csv(&mut buf).expect("csv into memory");
    String::from_utf8(buf).expect("csv is utf-8")
}

/// Chrome trace-event / Perfetto JSON for a probed run.
pub fn chrome_trace(name: &str, cores: usize, out: &GcOutcome, recording: &Recording) -> String {
    chrome_trace_json(recording, &run_meta(name, cores, out))
}

/// Per-core stall cycles as flamegraph-ready folded stacks
/// (`core3;HeaderLock 1845`), one frame per Table II stall cause plus the
/// idle causes (`EmptySpin`, `Drain`).
pub fn stall_folded(stats: &GcStats) -> FoldedStacks {
    let mut folded = FoldedStacks::new();
    for (i, core) in stats.per_core.iter().enumerate() {
        let frame = format!("core{i}");
        for (name, cycles) in [
            ("ScanLock", core.scan_lock),
            ("FreeLock", core.free_lock),
            ("HeaderLock", core.header_lock),
            ("BodyLoad", core.body_load),
            ("BodyStore", core.body_store),
            ("HeaderLoad", core.header_load),
            ("HeaderStore", core.header_store),
            ("EmptySpin", core.empty_spin),
            ("Drain", core.drain),
        ] {
            folded.add(&[&frame, name], cycles);
        }
    }
    folded
}

/// Fold the engine's [`GcStats`] counters into `reg` under `prefix`:
/// total/stall-cycle counters plus the per-cause stall *fractions* as
/// gauges (what `gen_stall_tables` renders). This is the bridge for
/// consumers that have statistics but no recorded event stream.
pub fn record_stats(reg: &mut MetricsRegistry, prefix: &str, stats: &GcStats) {
    reg.counter_add(&format!("{prefix}.total_cycles"), stats.total_cycles);
    reg.gauge_set(&format!("{prefix}.n_cores"), stats.per_core.len() as f64);
    for (name, reason) in STALL_COLUMNS {
        reg.counter_add(
            &format!("{prefix}.stall.{name}"),
            match reason {
                StallReason::ScanLock => stats.stall.scan_lock,
                StallReason::FreeLock => stats.stall.free_lock,
                StallReason::HeaderLock => stats.stall.header_lock,
                StallReason::BodyLoad => stats.stall.body_load,
                StallReason::BodyStore => stats.stall.body_store,
                StallReason::HeaderLoad => stats.stall.header_load,
                StallReason::HeaderStore => stats.stall.header_store,
                StallReason::EmptySpin | StallReason::Drain => unreachable!(),
            },
        );
        reg.gauge_set(
            &format!("{prefix}.stall_frac.{name}"),
            stats.stall_fraction(reason),
        );
    }
}

/// The full metrics registry for a probed run: everything
/// [`derive_metrics`] reconstructs from the event stream (lock wait/hold
/// histograms per kind, contention pairs, port counters, …) plus the
/// engine's own statistics under `stats.`.
pub fn metrics_for_run(
    name: &str,
    cores: usize,
    out: &GcOutcome,
    recording: &Recording,
) -> MetricsRegistry {
    let mut reg = derive_metrics(recording, &run_meta(name, cores, out));
    record_stats(&mut reg, "stats", &out.stats);
    reg
}

/// The full bottleneck report (blame matrix, critical path, what-if
/// predictions) of a probed run. `dram_bandwidth` must be the run's
/// `MemConfig.bandwidth` — the what-if predictor's queue model needs it.
pub fn report_for_run(
    name: &str,
    cores: usize,
    out: &GcOutcome,
    recording: &Recording,
    dram_bandwidth: u32,
) -> RunReport {
    RunReport::analyze(recording, &run_meta(name, cores, out), dram_bandwidth)
}

/// Assert the blame matrix is *conservative-complete* against the
/// engine's own stall counters: for every stall class, the attributed
/// cycles (the blame row total, and its per-core slices) equal the
/// corresponding `GcStats` counter exactly — every stall cycle is
/// attributed once, none invented. Also re-checks the report's internal
/// invariants (rows sum to class totals; the critical path partitions
/// the run).
///
/// # Panics
/// Panics with a per-class diagnostic on any mismatch.
pub fn assert_blame_reconciles(report: &RunReport, stats: &GcStats) {
    report.validate().unwrap_or_else(|e| panic!("{e}"));
    for reason in StallReason::ALL {
        let name = reason.name();
        let attributed = report.blame.class_total(name);
        let counted = stats.stall.get(reason);
        assert_eq!(
            attributed, counted,
            "blame row `{name}` has {attributed} cycles, engine counted {counted}"
        );
        for (i, core) in stats.per_core.iter().enumerate() {
            let attributed = report.blame.per_core_matching(i, |class, _| class == name);
            let counted = core.get(reason);
            assert_eq!(
                attributed, counted,
                "core{i} blame `{name}` has {attributed} cycles, engine counted {counted}"
            );
        }
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

// ---------------------------------------------------------------------------
// Host self-profiling + run ledger (PR 8)
// ---------------------------------------------------------------------------

/// Is host self-profiling requested? `HWGC_HOSTPROF=1|true|on` turns the
/// [`HostProfiler`] on in the binaries that honour it; anything else (or
/// unset) keeps the zero-overhead [`hwgc_obs::NullHostProf`] path.
pub fn hostprof_enabled() -> bool {
    hostprof_from(std::env::var("HWGC_HOSTPROF").ok().as_deref())
}

/// Parse an `HWGC_HOSTPROF`-style value (separated from the env read for
/// testability).
pub fn hostprof_from(var: Option<&str>) -> bool {
    matches!(
        var.map(str::trim),
        Some("1") | Some("true") | Some("on") | Some("yes")
    )
}

/// One verified collection with the host profiler attached. The profiler
/// never influences the simulation — `collect_hostprof` produces
/// bit-identical [`GcStats`] to `collect` (enforced by the
/// `hostprof_differential` test) — so callers may substitute this for
/// [`run_verified_heap`] freely.
pub fn run_hostprof_heap(heap: &mut Heap, cfg: GcConfig, label: &str) -> (GcOutcome, HostProfiler) {
    let snap = Snapshot::capture(heap);
    let mut prof = HostProfiler::new();
    let out = SimCollector::new(cfg).collect_hostprof(heap, &mut prof);
    verify_collection(heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    (out, prof)
}

/// [`run_hostprof_heap`] on a preset workload.
pub fn run_hostprof(spec: &WorkloadSpec, cfg: GcConfig) -> (GcOutcome, HostProfiler) {
    let mut heap = spec.build();
    run_hostprof_heap(&mut heap, cfg, &spec.preset.to_string())
}

/// Build one [`LedgerRecord`] for a finished run. Deterministic efficacy
/// counters come from the profiler's counter map; wall-clock timers and
/// machine-dependent notes are quarantined into the record's `host`
/// fields (serialized with a `host_` prefix so downstream tooling can
/// strip them before diffing records across machines).
pub fn ledger_record(
    binary: &str,
    workload: &str,
    cfg: &GcConfig,
    stats: &GcStats,
    sb_fingerprint: Option<u64>,
    prof: Option<&HostProfiler>,
) -> LedgerRecord {
    let mut rec = LedgerRecord {
        binary: binary.to_string(),
        workload: workload.to_string(),
        engine: engine_label(cfg).to_string(),
        backend: backend_label(cfg).to_string(),
        config: ledger_config_pairs(cfg),
        env: ledger_env_pairs(),
        stats_digest: stats.digest(),
        total_cycles: Some(stats.total_cycles),
        sb_fingerprint,
        efficacy: Vec::new(),
        result: None,
        host: Vec::new(),
    };
    if let Some(p) = prof {
        rec.efficacy = p.counters().map(|(k, v)| (k.to_string(), v)).collect();
        for (k, t) in p.timers() {
            rec.host
                .push((format!("time.{k}.total_ns"), Json::Int(t.total_ns as i128)));
            rec.host
                .push((format!("time.{k}.count"), Json::Int(t.count as i128)));
        }
        for (k, v) in p.notes() {
            rec.host.push((format!("note.{k}"), Json::Int(v as i128)));
        }
    }
    rec
}

/// The run-ledger path requested via `HWGC_LEDGER`, if any.
pub fn ledger_path() -> Option<PathBuf> {
    std::env::var("HWGC_LEDGER")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Append `rec` to the JSONL ledger at `path`.
///
/// # Panics
/// Panics on I/O failure — a silently dropped ledger line defeats the
/// point of provenance.
pub fn append_ledger_to(rec: &LedgerRecord, path: &std::path::Path) {
    rec.append_jsonl(path)
        .unwrap_or_else(|e| panic!("ledger append to {} failed: {e}", path.display()));
}

/// Append `rec` to the ledger named by `HWGC_LEDGER`; no-op when the
/// variable is unset or empty.
pub fn append_ledger(rec: &LedgerRecord) {
    if let Some(path) = ledger_path() {
        append_ledger_to(rec, &path);
    }
}
