//! Ablation C (paper Section VI-B): "We hope to improve our implementation
//! by reading the mark bit without prior acquisition of the header lock
//! and by attempting a locking read only if the mark bit is cleared."
//!
//! For javac — whose popular hub objects are referenced by many parents —
//! most child-header reads find the mark bit already set, so the unlocked
//! probe eliminates almost all header-lock contention.

use hwgc_bench::{row, run_verified, spec, sweep_finish, write_csv};
use hwgc_core::{GcConfig, StallReason};
use hwgc_workloads::Preset;

fn main() {
    println!("Ablation C: test-before-lock header probing (16 cores)\n");
    let widths = [10, 14, 9, 13, 13, 10];
    let header: Vec<String> = [
        "app",
        "variant",
        "total",
        "header-lock",
        "hdr-load",
        "speedup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in [Preset::Javac, Preset::Db, Preset::Cup] {
        let mut baseline_total = 0;
        for (name, tbl) in [("lock-first", false), ("test-first", true)] {
            let cfg = GcConfig {
                n_cores: 16,
                test_before_lock: tbl,
                ..GcConfig::default()
            };
            let out = run_verified(&spec(preset), cfg);
            let s = &out.stats;
            if !tbl {
                baseline_total = s.total_cycles;
            }
            let cells = vec![
                preset.name().to_string(),
                name.to_string(),
                s.total_cycles.to_string(),
                format!("{:.2} %", s.stall_fraction(StallReason::HeaderLock) * 100.0),
                format!("{:.2} %", s.stall_fraction(StallReason::HeaderLoad) * 100.0),
                format!("{:.2}x", baseline_total as f64 / s.total_cycles as f64),
            ];
            println!("{}", row(&cells, &widths));
            csv.push(format!(
                "{},{},{},{:.6},{:.6}",
                preset.name(),
                name,
                s.total_cycles,
                s.stall_fraction(StallReason::HeaderLock),
                s.stall_fraction(StallReason::HeaderLoad)
            ));
        }
        println!();
    }
    write_csv(
        "ablation_testlock",
        "app,variant,total,header_lock_frac,header_load_frac",
        &csv,
    );
    sweep_finish();
}
