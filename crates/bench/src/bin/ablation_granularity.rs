//! Paper Section III: every software scheme picks a work/allocation
//! granularity, trading synchronization frequency against fragmentation
//! and load balance. This binary sweeps each baseline's granularity knob:
//!
//! * Flood work-stealing / Ossia packets: the LAB size (Petrank &
//!   Kolodner's delayed allocation targets exactly this fragmentation),
//! * Imai & Tick: the chunk size,
//! * Ossia: additionally the packet capacity.
//!
//! Reported per point: shared synchronization operations per live object
//! and fragmentation — the two ends of the trade the paper's coprocessor
//! collapses (its fine-grained scheme needs neither).

use hwgc_bench::{row, spec, write_csv};
use hwgc_heap::{verify_collection_relaxed, Snapshot};
use hwgc_swgc::{Chunked, Packets, SwCollector, WorkStealing};
use hwgc_workloads::Preset;

fn run(
    collector: &dyn SwCollector,
    label: &str,
    knob: u32,
    csv: &mut Vec<String>,
    widths: &[usize],
) {
    let mut heap = spec(Preset::Db).build();
    let snapshot = Snapshot::capture(&heap);
    let report = collector.collect(&mut heap, 2);
    verify_collection_relaxed(&heap, report.free, &snapshot)
        .unwrap_or_else(|e| panic!("{label} {knob}: {e}"));
    let live = snapshot.live_objects() as f64;
    let frag_pct = 100.0 * report.fragmentation_words as f64
        / (report.words_copied + report.fragmentation_words) as f64;
    let cells = vec![
        label.to_string(),
        knob.to_string(),
        format!("{:.2}", report.ops.total_ops() as f64 / live),
        report.fragmentation_words.to_string(),
        format!("{frag_pct:.1} %"),
    ];
    println!("{}", row(&cells, widths));
    csv.push(format!(
        "{label},{knob},{:.4},{},{:.4}",
        report.ops.total_ops() as f64 / live,
        report.fragmentation_words,
        frag_pct
    ));
}

fn main() {
    println!("Granularity trade-off of the software baselines (db preset, 2 threads)\n");
    let widths = [14, 9, 13, 12, 8];
    let header: Vec<String> = ["collector", "knob", "sync-ops/obj", "frag words", "frag%"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for lab in [64u32, 256, 1024, 4096] {
        run(
            &WorkStealing { lab_words: lab },
            "work-stealing",
            lab,
            &mut csv,
            &widths,
        );
    }
    println!();
    for chunk in [256u32, 1024, 2048, 8192] {
        run(
            &Chunked { chunk_words: chunk },
            "chunked",
            chunk,
            &mut csv,
            &widths,
        );
    }
    println!();
    for packet in [1usize, 16, 256, 1024] {
        run(
            &Packets {
                packet_size: packet,
                lab_words: 1024,
            },
            "work-packets",
            packet as u32,
            &mut csv,
            &widths,
        );
    }
    println!(
        "\nreading: larger buffers cut the shared operations per object but waste more\n\
         tospace — the trade every software scheme makes (Section III). The hardware\n\
         collector's sync-ops/object equivalent is ~4.5, each costing zero cycles, with\n\
         zero fragmentation."
    );
    write_csv(
        "ablation_granularity",
        "collector,knob,sync_ops_per_obj,frag_words,frag_pct",
        &csv,
    );
}
