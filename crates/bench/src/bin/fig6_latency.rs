//! Figure 6: scaling behavior with 20 cycles of artificial latency added
//! to every memory access.
//!
//! The paper's counter-intuitive finding: *higher* memory latency
//! *improves* scalability for every benchmark with enough object-level
//! parallelism, because each core spends a larger fraction of its time
//! stalled, so more cores are needed to exhaust the memory bandwidth.

use hwgc_bench::{row, sweep_finish, sweep_jobset, write_csv, CORE_COUNTS};
use hwgc_core::GcConfig;
use hwgc_jobs::ConfigMatrix;
use hwgc_memsim::MemConfig;
use hwgc_workloads::Preset;

fn main() {
    const EXTRA: u32 = 20;
    println!("Figure 6: scaling behavior with +{EXTRA} cycles memory latency\n");
    let set = ConfigMatrix::new(GcConfig {
        mem: MemConfig::default().with_extra_latency(EXTRA),
        ..GcConfig::default()
    })
    .presets(Preset::ALL)
    .cores(CORE_COUNTS)
    .lower();
    let report = sweep_jobset("fig6_latency", &set);

    let widths = [10, 12, 8, 8, 8, 8, 8];
    let header: Vec<String> = ["app", "1-core cyc", "x1", "x2", "x4", "x8", "x16"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for (pi, preset) in Preset::ALL.into_iter().enumerate() {
        let cycles: Vec<u64> = (0..CORE_COUNTS.len())
            .map(|ci| {
                report.outcomes[pi * CORE_COUNTS.len() + ci]
                    .0
                    .stats
                    .total_cycles
            })
            .collect();
        let base = cycles[0] as f64;
        let mut cells = vec![preset.name().to_string(), cycles[0].to_string()];
        for (&c, &n) in cycles.iter().zip(&CORE_COUNTS) {
            let speedup = base / c as f64;
            cells.push(format!("{speedup:.2}"));
            csv.push(format!("{},{},{},{:.4}", preset.name(), n, c, speedup));
        }
        println!("{}", row(&cells, &widths));
    }
    write_csv("fig6_latency", "app,cores,cycles,speedup", &csv);
    sweep_finish();
}
