//! Cross-run regression diffing on the run ledger.
//!
//! Joins two `hwgc-ledger-v1` JSONL files on `config_hash` and
//! classifies every configuration as identical / changed / one-sided
//! via stats digests, SB fingerprints and efficacy counters, rendering
//! a markdown + JSON report (cycle deltas, window-funnel drift, host
//! time trend). Under `--check`, exits nonzero when any configuration
//! *changed* — one-sided coverage differences never fail the gate.
//!
//! A second mode audits a `hwgc-sweep-telemetry-v1` stream: validate
//! the JSONL, aggregate job outcomes across sweeps, and (with
//! `--min-hit-rate`) gate on the cache hit rate — the CI warm-cache
//! assertion.
//!
//! ```text
//! ledger_diff <left.jsonl> <right.jsonl> [--out-dir DIR] [--check]
//! ledger_diff --telemetry <stream.jsonl> [--min-hit-rate F] [--check]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hwgc_obs::{validate_telemetry_jsonl, LedgerDiff, LedgerStore};

struct Args {
    left: Option<PathBuf>,
    right: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    check: bool,
    telemetry: Option<PathBuf>,
    min_hit_rate: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ledger_diff <left.jsonl> <right.jsonl> [--out-dir DIR] [--check]\n\
         \x20      ledger_diff --telemetry <stream.jsonl> [--min-hit-rate F] [--check]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        left: None,
        right: None,
        out_dir: None,
        check: false,
        telemetry: None,
        min_hit_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--out-dir" => args.out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--telemetry" => {
                args.telemetry = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--min-hit-rate" => {
                args.min_hit_rate = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                let slot = if args.left.is_none() {
                    &mut args.left
                } else if args.right.is_none() {
                    &mut args.right
                } else {
                    usage()
                };
                *slot = Some(PathBuf::from(arg));
            }
        }
    }
    args
}

fn load(path: &Path) -> LedgerStore {
    LedgerStore::load(path).unwrap_or_else(|e| {
        eprintln!("ledger_diff: {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn telemetry_audit(path: &Path, min_hit_rate: Option<f64>, check: bool) -> ExitCode {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("ledger_diff: {}: {e}", path.display());
        std::process::exit(2);
    });
    let totals = validate_telemetry_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("ledger_diff: {}: invalid telemetry: {e}", path.display());
        std::process::exit(2);
    });
    println!(
        "telemetry {}: {} jobs — {} hit / {} miss / {} verified / {} checked \
         ({:.1}% hit rate)",
        path.display(),
        totals.done,
        totals.hits,
        totals.misses,
        totals.verified,
        totals.digest_checks,
        100.0 * totals.hit_rate(),
    );
    for (ns, job) in &totals.slowest {
        println!("  slowest: {job} ({:.2} ms)", *ns as f64 / 1e6);
    }
    if let Some(min) = min_hit_rate {
        if totals.hit_rate() < min {
            eprintln!(
                "ledger_diff: hit rate {:.3} below required {min:.3}",
                totals.hit_rate()
            );
            if check {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(stream) = &args.telemetry {
        if args.left.is_some() || args.right.is_some() {
            usage();
        }
        return telemetry_audit(stream, args.min_hit_rate, args.check);
    }
    let (Some(left_path), Some(right_path)) = (&args.left, &args.right) else {
        usage();
    };
    let left = load(left_path);
    let right = load(right_path);
    let diff = LedgerDiff::between(&left, &right);
    let left_name = left_path.display().to_string();
    let right_name = right_path.display().to_string();
    let markdown = diff.render_markdown(&left_name, &right_name);
    print!("{markdown}");

    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| hwgc_bench::experiments_dir().join("ledger_diff"));
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("ledger_diff: create {}: {e}", out_dir.display());
        std::process::exit(2);
    });
    let md_path = out_dir.join("ledger_diff.md");
    let json_path = out_dir.join("ledger_diff.json");
    std::fs::write(&md_path, &markdown).expect("write markdown report");
    std::fs::write(
        &json_path,
        format!(
            "{}\n",
            diff.to_json(&left_name, &right_name).to_string_compact()
        ),
    )
    .expect("write json report");
    println!("\n[report] {}", md_path.display());
    println!("[report] {}", json_path.display());

    let (_, changed, _, _) = diff.counts();
    if args.check && changed > 0 {
        eprintln!(
            "ledger_diff: {changed} configuration(s) changed simulation \
             results — failing under --check"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
