//! Ablation B (paper Sections I & III): what fine-grained synchronization
//! costs in software, and what the coarser-grained schemes from related
//! work trade for avoiding it.
//!
//! Runs the real-thread collectors on the benchmark presets and reports,
//! per collector and thread count: wall-clock time, speedup over the
//! single-threaded run, synchronization operations per live object, and
//! fragmentation. The hardware model needs *zero* synchronization cost
//! for the same fine-grained algorithm — that contrast is the paper's
//! thesis.

use hwgc_bench::{row, spec, write_csv};
use hwgc_heap::{verify_collection, verify_collection_relaxed, Snapshot};
use hwgc_swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};
use hwgc_workloads::Preset;

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Ablation B: software collectors (real threads)");
    println!(
        "host parallelism: {host} — wall-clock speedups are only meaningful when the\n         thread count stays at or below this; sync-ops/object and fragmentation are\n         schedule-independent.\n"
    );
    let presets = [Preset::Db, Preset::Javac, Preset::Cup, Preset::Compress];
    let threads = [1usize, 2, 4];
    let widths = [10, 15, 9, 12, 9, 13, 11];
    let header: Vec<String> = [
        "app",
        "collector",
        "threads",
        "time (µs)",
        "speedup",
        "sync-ops/obj",
        "frag words",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let collectors: Vec<(Box<dyn SwCollector>, bool)> = vec![
        (Box::new(FineGrained::new()), true),
        (Box::new(WorkStealing::new()), false),
        (Box::new(Chunked::new()), false),
        (Box::new(Packets::new()), false),
    ];

    let mut csv = Vec::new();
    for preset in presets {
        for (collector, compacting) in &collectors {
            let mut base_us = 0.0;
            for &t in &threads {
                // Median of 3 runs to tame scheduling noise.
                let mut times = Vec::new();
                let mut last = None;
                for _ in 0..3 {
                    let mut heap = spec(preset).build();
                    let snap = Snapshot::capture(&heap);
                    let report = collector.collect(&mut heap, t);
                    let check = if *compacting {
                        verify_collection(&heap, report.free, &snap)
                    } else {
                        verify_collection_relaxed(&heap, report.free, &snap)
                    };
                    check.unwrap_or_else(|e| {
                        panic!("{} {} threads on {preset}: {e}", collector.name(), t)
                    });
                    times.push(report.elapsed.as_secs_f64() * 1e6);
                    last = Some((report, snap.live_objects() as u64));
                }
                times.sort_by(f64::total_cmp);
                let us = times[1];
                let (report, live) = last.unwrap();
                if t == 1 {
                    base_us = us;
                }
                let cells = vec![
                    preset.name().to_string(),
                    collector.name().to_string(),
                    t.to_string(),
                    format!("{us:.0}"),
                    format!("{:.2}", base_us / us),
                    format!("{:.1}", report.ops.total_ops() as f64 / live.max(1) as f64),
                    report.fragmentation_words.to_string(),
                ];
                println!("{}", row(&cells, &widths));
                csv.push(format!(
                    "{},{},{},{:.1},{:.3},{:.2},{}",
                    preset.name(),
                    collector.name(),
                    t,
                    us,
                    base_us / us,
                    report.ops.total_ops() as f64 / live.max(1) as f64,
                    report.fragmentation_words
                ));
            }
        }
        println!();
    }
    write_csv(
        "ablation_software",
        "app,collector,threads,time_us,speedup,sync_ops_per_obj,fragmentation_words",
        &csv,
    );
}
