//! Paper Section VI-B, first paragraph: "In our experiments, the heap
//! size had little to no influence on the measurement results regarding
//! synchronization overhead and scalability. Therefore, we dimensioned
//! the heap according to a rule of thumb and chose twice the minimal heap
//! size."
//!
//! A copying collector's work depends on the *live* data, not the heap:
//! sweeping the semispace size (with the live graph fixed) must leave
//! cycle counts and stall fractions essentially unchanged. This binary
//! checks that claim in the model.

use hwgc_bench::{row, write_csv};
use hwgc_core::{GcConfig, SimCollector, StallReason};
use hwgc_heap::{verify_collection, Snapshot};
use hwgc_workloads::{Preset, WorkloadSpec};

fn main() {
    println!("Heap-size sensitivity (16 cores; live graph fixed, semispace swept)\n");
    let widths = [10, 12, 10, 10, 11, 9];
    let header: Vec<String> = [
        "app",
        "semispace",
        "occupancy",
        "cycles",
        "scan-lock",
        "speedup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in [Preset::Db, Preset::Cup, Preset::Javac] {
        let spec = WorkloadSpec::new(preset, 42);
        let min_semi = spec.semi_words();
        let mut base = 0u64;
        for factor in [1u32, 2, 4, 8] {
            // Rebuild the identical graph inside a larger arena: the heap
            // constructor only changes where tospace lives.
            let mut heap = {
                let tight = spec.build();
                let mut big = hwgc_heap::Heap::new(min_semi * factor);
                // Replay the words of the tight build into the big arena.
                for a in hwgc_heap::RESERVED_WORDS..tight.alloc_ptr() {
                    big.set_word(a, tight.word(a));
                }
                big.set_alloc_ptr(tight.alloc_ptr());
                for &r in tight.roots() {
                    big.add_root(r);
                }
                big
            };
            let snapshot = Snapshot::capture(&heap);
            let out = SimCollector::new(GcConfig::with_cores(16)).collect(&mut heap);
            verify_collection(&heap, out.free, &snapshot).expect("correct collection");
            if factor == 1 {
                base = out.stats.total_cycles;
            }
            let occupancy = 100.0 * snapshot.live_words as f64 / (min_semi * factor) as f64;
            let cells = vec![
                preset.name().to_string(),
                format!("{}x min", factor),
                format!("{occupancy:.0} %"),
                out.stats.total_cycles.to_string(),
                format!(
                    "{:.2} %",
                    out.stats.stall_fraction(StallReason::ScanLock) * 100.0
                ),
                format!("{:.3}", base as f64 / out.stats.total_cycles as f64),
            ];
            println!("{}", row(&cells, &widths));
            csv.push(format!(
                "{},{},{:.4},{},{:.6}",
                preset.name(),
                factor,
                occupancy,
                out.stats.total_cycles,
                out.stats.stall_fraction(StallReason::ScanLock)
            ));
        }
        println!();
    }
    println!(
        "reading: cycle counts and stall profiles are flat across heap sizes — copying\n\
         collection cost depends on live data only, as the paper observes."
    );
    write_csv(
        "ablation_heapsize",
        "app,semi_factor,occupancy,cycles,scan_lock_frac",
        &csv,
    );
}
