//! Table II: clock-cycle distribution for the 16-core configuration —
//! total cycles per collection and, per stall cause, the summed stall
//! cycles with the mean per-core percentage in parentheses, exactly the
//! paper's columns: scan lock, free lock, header lock, body load, body
//! store, header load, header store.
//!
//! Besides the CSV, the run writes a metrics-registry snapshot
//! (`--metrics-out`, default `target/experiments/table2_stall_breakdown.metrics.json`)
//! with per-preset `table2.<app>.stall.*` counters and
//! `table2.<app>.stall_frac.*` gauges — the input `gen_stall_tables`
//! renders back into EXPERIMENTS.md.

use hwgc_bench::{experiments_dir, record_stats, row, run_verified, spec, sweep_finish, write_csv};
use hwgc_core::{GcConfig, StallReason};
use hwgc_obs::MetricsRegistry;
use hwgc_workloads::Preset;

fn main() {
    let n_cores = 16;
    println!("Table II: clock cycle distribution (for {n_cores} cores)\n");
    let widths = [10, 9, 16, 14, 16, 16, 15, 16, 16];
    let header: Vec<String> = [
        "app",
        "total",
        "scan-lock",
        "free-lock",
        "header-lock",
        "body-load",
        "body-store",
        "header-load",
        "header-store",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let reasons = [
        StallReason::ScanLock,
        StallReason::FreeLock,
        StallReason::HeaderLock,
        StallReason::BodyLoad,
        StallReason::BodyStore,
        StallReason::HeaderLoad,
        StallReason::HeaderStore,
    ];
    let mut csv = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for preset in Preset::ALL {
        let out = run_verified(&spec(preset), GcConfig::with_cores(n_cores));
        record_stats(
            &mut metrics,
            &format!("table2.{}", preset.name()),
            &out.stats,
        );
        let s = &out.stats;
        let counts = [
            s.stall.scan_lock,
            s.stall.free_lock,
            s.stall.header_lock,
            s.stall.body_load,
            s.stall.body_store,
            s.stall.header_load,
            s.stall.header_store,
        ];
        let mut cells = vec![preset.name().to_string(), s.total_cycles.to_string()];
        let mut line = format!("{},{}", preset.name(), s.total_cycles);
        for (c, r) in counts.iter().zip(&reasons) {
            let f = s.stall_fraction(*r);
            cells.push(format!("{c} ({:.2} %)", f * 100.0));
            line.push_str(&format!(",{c},{:.6}", f));
        }
        println!("{}", row(&cells, &widths));
        csv.push(line);
    }
    write_csv(
        "table2_stall_breakdown",
        "app,total,scan_lock,scan_lock_frac,free_lock,free_lock_frac,header_lock,header_lock_frac,\
         body_load,body_load_frac,body_store,body_store_frac,header_load,header_load_frac,\
         header_store,header_store_frac",
        &csv,
    );

    let metrics_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--metrics-out")
        .map(|w| std::path::PathBuf::from(&w[1]))
        .unwrap_or_else(|| experiments_dir().join("table2_stall_breakdown.metrics.json"));
    std::fs::write(&metrics_path, metrics.to_json_string())
        .unwrap_or_else(|e| panic!("write {}: {e}", metrics_path.display()));
    println!("[metrics] {}", metrics_path.display());
    sweep_finish();
}
