//! Ablation A (paper Section V-D): the header FIFO.
//!
//! Sweeps the FIFO capacity from 0 (optimization disabled — every gray
//! header goes through memory) past the cup preset's gray-frontier width,
//! at 16 cores. The paper's claim: as long as the gray population fits the
//! FIFO, scan-side header reads cost no memory access; once it overflows,
//! the memory reads prolong the scan-lock critical section (cup's
//! pathology in Table II).

use hwgc_bench::{row, run_verified, spec, sweep_finish, write_csv};
use hwgc_core::{GcConfig, StallReason};
use hwgc_memsim::MemConfig;
use hwgc_workloads::Preset;

fn main() {
    println!("Ablation A: header FIFO capacity sweep (16 cores)\n");
    let widths = [10, 9, 10, 11, 11, 11, 10];
    let header: Vec<String> = [
        "app",
        "fifo",
        "total",
        "scan-lock",
        "hdr-load",
        "fifo-hit%",
        "overflow",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in [Preset::Cup, Preset::Db, Preset::Javac] {
        for capacity in [0usize, 256, 1024, 4096, 16384, 65536] {
            let cfg = GcConfig {
                n_cores: 16,
                mem: MemConfig {
                    header_fifo_capacity: capacity,
                    ..MemConfig::default()
                },
                ..GcConfig::default()
            };
            let out = run_verified(&spec(preset), cfg);
            let s = &out.stats;
            let hits = s.fifo.hits as f64;
            let reads = (s.fifo.hits + s.fifo.misses).max(1) as f64;
            let cells = vec![
                preset.name().to_string(),
                capacity.to_string(),
                s.total_cycles.to_string(),
                format!("{:.2} %", s.stall_fraction(StallReason::ScanLock) * 100.0),
                format!("{:.2} %", s.stall_fraction(StallReason::HeaderLoad) * 100.0),
                format!("{:.1} %", 100.0 * hits / reads),
                s.fifo.overflows.to_string(),
            ];
            println!("{}", row(&cells, &widths));
            csv.push(format!(
                "{},{},{},{:.6},{:.6},{:.6},{}",
                preset.name(),
                capacity,
                s.total_cycles,
                s.stall_fraction(StallReason::ScanLock),
                s.stall_fraction(StallReason::HeaderLoad),
                hits / reads,
                s.fifo.overflows
            ));
        }
        println!();
    }
    write_csv(
        "ablation_fifo",
        "app,fifo_capacity,total,scan_lock_frac,header_load_frac,fifo_hit_rate,overflows",
        &csv,
    );
    sweep_finish();
}
