//! Table I: fraction of clock cycles during which the work list is empty
//! (`scan == free`), per benchmark and core count. These are the cycles in
//! which no gray object is available for processing — the paper's measure
//! of (missing) object-level parallelism.

use hwgc_bench::{pct, row, run_verified, spec, write_csv, CORE_COUNTS};
use hwgc_core::GcConfig;
use hwgc_workloads::Preset;

fn main() {
    println!("Table I: fraction of clock cycles during which work list is empty\n");
    let widths = [10, 9, 9, 9, 9, 9];
    let header: Vec<String> = ["app", "1 core", "2 cores", "4 cores", "8 cores", "16 cores"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in Preset::ALL {
        let s = spec(preset);
        let mut cells = vec![preset.name().to_string()];
        for &n in &CORE_COUNTS {
            let out = run_verified(&s, GcConfig::with_cores(n));
            let f = out.stats.empty_worklist_fraction();
            cells.push(pct(f));
            csv.push(format!("{},{},{:.6}", preset.name(), n, f));
        }
        println!("{}", row(&cells, &widths));
    }
    write_csv("table1_empty_worklist", "app,cores,empty_fraction", &csv);
}
