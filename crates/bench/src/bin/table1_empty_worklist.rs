//! Table I: fraction of clock cycles during which the work list is empty
//! (`scan == free`), per benchmark and core count. These are the cycles in
//! which no gray object is available for processing — the paper's measure
//! of (missing) object-level parallelism.
//!
//! Besides the CSV, the run writes a metrics-registry snapshot
//! (`--metrics-out`, default
//! `target/experiments/table1_empty_worklist.metrics.json`) holding the
//! `table1.<app>.c<N>.empty_frac` gauges — the input `gen_stall_tables`
//! uses to regenerate (and `--check`) EXPERIMENTS.md's Table I.

use hwgc_bench::{
    experiments_dir, pct, row, run_verified, spec, sweep_finish, write_csv, CORE_COUNTS,
};
use hwgc_core::GcConfig;
use hwgc_obs::MetricsRegistry;
use hwgc_workloads::Preset;

fn main() {
    println!("Table I: fraction of clock cycles during which work list is empty\n");
    let widths = [10, 9, 9, 9, 9, 9];
    let header: Vec<String> = ["app", "1 core", "2 cores", "4 cores", "8 cores", "16 cores"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for preset in Preset::ALL {
        let s = spec(preset);
        let mut cells = vec![preset.name().to_string()];
        for &n in &CORE_COUNTS {
            let out = run_verified(&s, GcConfig::with_cores(n));
            let f = out.stats.empty_worklist_fraction();
            cells.push(pct(f));
            csv.push(format!("{},{},{:.6}", preset.name(), n, f));
            metrics.gauge_set(&format!("table1.{}.c{n}.empty_frac", preset.name()), f);
        }
        println!("{}", row(&cells, &widths));
    }
    write_csv("table1_empty_worklist", "app,cores,empty_fraction", &csv);

    let metrics_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--metrics-out")
        .map(|w| std::path::PathBuf::from(&w[1]))
        .unwrap_or_else(|| experiments_dir().join("table1_empty_worklist.metrics.json"));
    std::fs::write(&metrics_path, metrics.to_json_string())
        .unwrap_or_else(|e| panic!("write {}: {e}", metrics_path.display()));
    println!("[metrics] {}", metrics_path.display());
    sweep_finish();
}
