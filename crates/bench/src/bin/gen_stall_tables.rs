//! Regenerate EXPERIMENTS.md's measured tables from the metrics JSON the
//! experiment binaries write, so the committed document and the
//! measurement pipeline cannot drift apart:
//!
//! * **Table I** (empty-worklist fractions) from the
//!   `table1.<app>.c<N>.empty_frac` gauges written by
//!   `table1_empty_worklist`;
//! * **Table II** (stall breakdown) from the
//!   `table2.<app>.stall_frac.*` gauges written by
//!   `table2_stall_breakdown`;
//! * **Figure 6, realistic timing** (DRAM-backend scaling) from the
//!   `fig6dram.<app>.c<N>.*` gauges written by `fig6_dram`.
//!
//! ```text
//! gen_stall_tables [--metrics <path>] [--table1-metrics <path>]
//!                  [--fig6dram-metrics <path>] [--doc <path>] [--check]
//! ```
//!
//! Each table is replaced between its
//! `<!-- BEGIN GENERATED: <tag> -->` / `<!-- END GENERATED: <tag> -->`
//! markers. `--check` renders without writing and exits 1 if either
//! committed table is stale (what `reproduce_all` and CI run after the
//! experiment batch).

use hwgc_bench::{experiments_dir, pct, CORE_COUNTS, STALL_COLUMNS};
use hwgc_obs::MetricsRegistry;

const TABLE1_TAG: &str = "table1-empty-worklist";
const TABLE2_TAG: &str = "table2-stall-breakdown";
const FIG6_DRAM_TAG: &str = "fig6-dram-scaling";

/// Render the measured Table I (empty-worklist fractions) from the
/// registry gauges.
fn render_table1(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("| app |");
    for (i, n) in CORE_COUNTS.iter().enumerate() {
        if i + 1 == CORE_COUNTS.len() {
            out.push_str(&format!(" {n} cores |"));
        } else {
            out.push_str(&format!(" {n} |"));
        }
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---|".repeat(CORE_COUNTS.len()));
    out.push('\n');
    for preset in hwgc_workloads::Preset::ALL {
        let app = preset.name();
        out.push_str(&format!("| {app} |"));
        for n in CORE_COUNTS {
            let gauge = format!("table1.{app}.c{n}.empty_frac");
            let frac = reg
                .gauge(&gauge)
                .unwrap_or_else(|| panic!("metrics JSON missing gauge {gauge}"));
            out.push_str(&format!(" {} |", pct(frac)));
        }
        out.push('\n');
    }
    out
}

/// Render the measured Table II (stall fractions) from the registry
/// gauges.
fn render_table2(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("| app |");
    for (name, _) in STALL_COLUMNS {
        out.push_str(&format!(" {} |", name.replace('_', "-")));
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---|".repeat(STALL_COLUMNS.len()));
    out.push('\n');
    for preset in hwgc_workloads::Preset::ALL {
        let app = preset.name();
        out.push_str(&format!("| {app} |"));
        for (name, _) in STALL_COLUMNS {
            let gauge = format!("table2.{app}.stall_frac.{name}");
            let frac = reg
                .gauge(&gauge)
                .unwrap_or_else(|| panic!("metrics JSON missing gauge {gauge}"));
            out.push_str(&format!(" {} |", pct(frac)));
        }
        out.push('\n');
    }
    out
}

/// Render the realistic-timing Figure 6 table (speedups under the
/// bank/row DRAM backend, plus the 16-core row-buffer hit rate) from the
/// registry gauges.
fn render_fig6_dram(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("| app | 1-core cycles |");
    for n in CORE_COUNTS {
        out.push_str(&format!(" x{n} |"));
    }
    out.push_str(" row-hit (16c) |\n|---|---|");
    out.push_str(&"---|".repeat(CORE_COUNTS.len() + 1));
    out.push('\n');
    for preset in hwgc_workloads::Preset::ALL {
        let app = preset.name();
        let gauge = |name: &str| {
            reg.gauge(name)
                .unwrap_or_else(|| panic!("metrics JSON missing gauge {name}"))
        };
        out.push_str(&format!(
            "| {app} | {} |",
            gauge(&format!("fig6dram.{app}.c1.cycles")) as u64
        ));
        for n in CORE_COUNTS {
            out.push_str(&format!(
                " {:.2} |",
                gauge(&format!("fig6dram.{app}.c{n}.speedup"))
            ));
        }
        out.push_str(&format!(
            " {} |\n",
            pct(gauge(&format!("fig6dram.{app}.c16.row_hit_rate")))
        ));
    }
    out
}

/// Splice `table` between the `tag` markers of `doc`.
fn splice(doc: &str, tag: &str, table: &str) -> Result<String, String> {
    let begin_marker = format!("<!-- BEGIN GENERATED: {tag} -->");
    let end_marker = format!("<!-- END GENERATED: {tag} -->");
    let begin = doc
        .find(&begin_marker)
        .ok_or_else(|| format!("marker {begin_marker:?} not found"))?;
    let end = doc
        .find(&end_marker)
        .ok_or_else(|| format!("marker {end_marker:?} not found"))?;
    if end < begin {
        return Err(format!("{tag}: END marker precedes BEGIN marker"));
    }
    let head = &doc[..begin + begin_marker.len()];
    let tail = &doc[end..];
    Ok(format!("{head}\n{table}{tail}"))
}

fn load_registry(path: &std::path::Path, producer: &str) -> MetricsRegistry {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run {producer} first)", path.display()));
    MetricsRegistry::from_json_str(&text)
        .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let table2_metrics = flag_value("--metrics")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| experiments_dir().join("table2_stall_breakdown.metrics.json"));
    let table1_metrics = flag_value("--table1-metrics")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| experiments_dir().join("table1_empty_worklist.metrics.json"));
    let fig6dram_metrics = flag_value("--fig6dram-metrics")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| experiments_dir().join("fig6_dram.metrics.json"));
    let doc_path = flag_value("--doc").unwrap_or_else(|| "EXPERIMENTS.md".to_string());
    let check = args.iter().any(|a| a == "--check");

    let doc = std::fs::read_to_string(&doc_path).unwrap_or_else(|e| panic!("read {doc_path}: {e}"));
    let mut updated = doc.clone();
    for (tag, table) in [
        (
            TABLE1_TAG,
            render_table1(&load_registry(&table1_metrics, "table1_empty_worklist")),
        ),
        (
            TABLE2_TAG,
            render_table2(&load_registry(&table2_metrics, "table2_stall_breakdown")),
        ),
        (
            FIG6_DRAM_TAG,
            render_fig6_dram(&load_registry(&fig6dram_metrics, "fig6_dram")),
        ),
    ] {
        updated = splice(&updated, tag, &table).unwrap_or_else(|e| panic!("{doc_path}: {e}"));
    }

    if check {
        if doc == updated {
            println!("{doc_path}: generated tables are up to date");
        } else {
            eprintln!(
                "{doc_path}: a generated table is stale; regenerate with \
                 `cargo run --release -p hwgc-bench --bin gen_stall_tables`"
            );
            std::process::exit(1);
        }
    } else if doc == updated {
        println!("{doc_path}: already up to date");
    } else {
        std::fs::write(&doc_path, &updated).unwrap_or_else(|e| panic!("write {doc_path}: {e}"));
        println!(
            "{doc_path}: generated tables refreshed from {} and {}",
            table1_metrics.display(),
            table2_metrics.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_replaces_between_markers() {
        let doc =
            "before\n<!-- BEGIN GENERATED: t -->\nold table\n<!-- END GENERATED: t -->\nafter\n";
        let out = splice(doc, "t", "new\n").unwrap();
        assert_eq!(
            out,
            "before\n<!-- BEGIN GENERATED: t -->\nnew\n<!-- END GENERATED: t -->\nafter\n"
        );
        // Idempotent.
        assert_eq!(splice(&out, "t", "new\n").unwrap(), out);
    }

    #[test]
    fn splice_requires_markers() {
        assert!(splice("no markers", "t", "x").is_err());
    }

    #[test]
    fn splice_is_per_tag() {
        let doc = "<!-- BEGIN GENERATED: a -->\nA\n<!-- END GENERATED: a -->\n\
                   <!-- BEGIN GENERATED: b -->\nB\n<!-- END GENERATED: b -->\n";
        let out = splice(doc, "b", "B2\n").unwrap();
        assert!(out.contains("A\n"), "tag a untouched");
        assert!(out.contains("B2\n"), "tag b replaced");
        assert!(!out.contains("\nB\n<!-- END GENERATED: b -->"));
        assert!(splice(doc, "c", "x").is_err());
    }
}
