//! Regenerate the EXPERIMENTS.md Table II stall-breakdown table from the
//! metrics JSON written by `table2_stall_breakdown`, so the committed
//! document and the measurement pipeline cannot drift apart.
//!
//! ```text
//! gen_stall_tables [--metrics <path>] [--doc <path>] [--check]
//! ```
//!
//! The generator replaces everything between the
//! `<!-- BEGIN GENERATED: table2-stall-breakdown -->` and
//! `<!-- END GENERATED: table2-stall-breakdown -->` markers in the
//! document with a markdown table rendered from the
//! `table2.<app>.stall_frac.*` gauges. `--check` renders without writing
//! and exits 1 if the committed table is stale (what `reproduce_all`
//! runs after the experiment batch).

use hwgc_bench::{experiments_dir, pct, STALL_COLUMNS};
use hwgc_obs::MetricsRegistry;

const BEGIN: &str = "<!-- BEGIN GENERATED: table2-stall-breakdown -->";
const END: &str = "<!-- END GENERATED: table2-stall-breakdown -->";

/// Render the measured stall-fraction table from the registry gauges.
fn render_table(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("| app |");
    for (name, _) in STALL_COLUMNS {
        out.push_str(&format!(" {} |", name.replace('_', "-")));
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---|".repeat(STALL_COLUMNS.len()));
    out.push('\n');
    for preset in hwgc_workloads::Preset::ALL {
        let app = preset.name();
        out.push_str(&format!("| {app} |"));
        for (name, _) in STALL_COLUMNS {
            let gauge = format!("table2.{app}.stall_frac.{name}");
            let frac = reg
                .gauge(&gauge)
                .unwrap_or_else(|| panic!("metrics JSON missing gauge {gauge}"));
            out.push_str(&format!(" {} |", pct(frac)));
        }
        out.push('\n');
    }
    out
}

/// Splice `table` between the markers of `doc`.
fn splice(doc: &str, table: &str) -> Result<String, String> {
    let begin = doc
        .find(BEGIN)
        .ok_or_else(|| format!("marker {BEGIN:?} not found"))?;
    let end = doc
        .find(END)
        .ok_or_else(|| format!("marker {END:?} not found"))?;
    if end < begin {
        return Err("END marker precedes BEGIN marker".to_string());
    }
    let head = &doc[..begin + BEGIN.len()];
    let tail = &doc[end..];
    Ok(format!("{head}\n{table}{tail}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let metrics_path = flag_value("--metrics")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| experiments_dir().join("table2_stall_breakdown.metrics.json"));
    let doc_path = flag_value("--doc").unwrap_or_else(|| "EXPERIMENTS.md".to_string());
    let check = args.iter().any(|a| a == "--check");

    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run table2_stall_breakdown first)",
            metrics_path.display()
        )
    });
    let reg = MetricsRegistry::from_json_str(&metrics_text)
        .unwrap_or_else(|e| panic!("parse {}: {e}", metrics_path.display()));
    let table = render_table(&reg);

    let doc = std::fs::read_to_string(&doc_path).unwrap_or_else(|e| panic!("read {doc_path}: {e}"));
    let updated = splice(&doc, &table).unwrap_or_else(|e| panic!("{doc_path}: {e}"));

    if check {
        if doc == updated {
            println!("{doc_path}: stall-breakdown table is up to date");
        } else {
            eprintln!(
                "{doc_path}: stall-breakdown table is stale; regenerate with \
                 `cargo run --release -p hwgc-bench --bin gen_stall_tables`"
            );
            std::process::exit(1);
        }
    } else if doc == updated {
        println!("{doc_path}: already up to date");
    } else {
        std::fs::write(&doc_path, &updated).unwrap_or_else(|e| panic!("write {doc_path}: {e}"));
        println!(
            "{doc_path}: stall-breakdown table regenerated from {}",
            metrics_path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_replaces_between_markers() {
        let doc = format!("before\n{BEGIN}\nold table\n{END}\nafter\n");
        let out = splice(&doc, "new\n").unwrap();
        assert_eq!(out, format!("before\n{BEGIN}\nnew\n{END}\nafter\n"));
        // Idempotent.
        assert_eq!(splice(&out, "new\n").unwrap(), out);
    }

    #[test]
    fn splice_requires_markers() {
        assert!(splice("no markers", "t").is_err());
    }
}
