//! Extension 1 (paper conclusions, item 1): distributing collection work
//! at a granularity finer than whole objects.
//!
//! "Our experiments show that two remaining issues limit scalability:
//! (1) limited object-level parallelism … Therefore, we are currently
//! investigating improvements that allow us to distribute work at a finer
//! granularity than object-level granularity, e.g. at the granularity of
//! cache lines."
//!
//! Workload: a chain of large reference arrays whose chain edge is the
//! last pointer slot, so the successor becomes claimable only when the
//! parent's scan finishes — object-level parallelism ≈ 1, the worst case
//! for the paper's collector. With `line_split = Some(L)`, a scan claim
//! takes at most L body words, so all cores can copy one array
//! concurrently.

use hwgc_bench::{row, run_verified_heap_keyed, sweep_finish, write_csv};
use hwgc_core::GcConfig;
use hwgc_heap::{GraphBuilder, Heap};
use hwgc_workloads::generators::{big_array_chain, GenStats};

fn build() -> Heap {
    let n = 24u32;
    let nulls = 2000u32;
    let mut heap = Heap::new(n * (4 + nulls) + 8192);
    let mut b = GraphBuilder::new(&mut heap);
    let mut s = GenStats::default();
    let head = big_array_chain(&mut b, n as usize, nulls, &mut s);
    b.root(head);
    heap
}

fn main() {
    println!("Extension 1: line-granularity work distribution");
    println!("workload: chain of 24 reference arrays x 2001 slots (chain edge last)\n");
    let widths = [14, 7, 10, 9, 9];
    let header: Vec<String> = ["granularity", "cores", "cycles", "speedup", "claims"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for (name, line_split) in [
        ("object", None),
        ("line=256", Some(256u32)),
        ("line=64", Some(64)),
        ("line=16", Some(16)),
    ] {
        let mut base = 0u64;
        for cores in [1usize, 4, 16] {
            let cfg = GcConfig {
                n_cores: cores,
                line_split,
                ..GcConfig::default()
            };
            let mut heap = build();
            // The key names the heap *contents* (builder + shape), so a
            // cached result is guaranteed to describe this exact graph.
            let out = run_verified_heap_keyed(&mut heap, cfg, "bigarrays-chain24x2001");
            if cores == 1 {
                base = out.stats.total_cycles;
            }
            let cells = vec![
                name.to_string(),
                cores.to_string(),
                out.stats.total_cycles.to_string(),
                format!("{:.2}", base as f64 / out.stats.total_cycles as f64),
                out.stats.chunks_claimed.to_string(),
            ];
            println!("{}", row(&cells, &widths));
            csv.push(format!(
                "{},{},{},{:.4},{}",
                name,
                cores,
                out.stats.total_cycles,
                base as f64 / out.stats.total_cycles as f64,
                out.stats.chunks_claimed
            ));
        }
        println!();
    }
    println!(
        "reading: at object granularity the chain is inherently serial; splitting the\n\
         body copy into lines recovers the parallelism the paper's conclusions predict\n\
         (until the claims become so small that scan-lock traffic dominates)."
    );
    write_csv(
        "ablation_linesplit",
        "granularity,cores,cycles,speedup,claims",
        &csv,
    );
    sweep_finish();
}
