//! Extension 2 (paper conclusions, item 2): a header cache.
//!
//! "(2) to make better use of the available memory bandwidth, e.g. by
//! header caches in conjunction with an optimized header FIFO."
//!
//! A shared, direct-mapped, write-through header cache at the memory
//! interface serves repeated header loads on-chip. javac — whose hot hub
//! headers are re-read by every parent — benefits most; db's headers are
//! read once each and mostly miss.

use hwgc_bench::{row, run_verified, spec, sweep_finish, write_csv};
use hwgc_core::{GcConfig, StallReason};
use hwgc_memsim::MemConfig;
use hwgc_workloads::Preset;

fn main() {
    println!("Extension 2: shared header cache (16 cores)\n");
    let widths = [10, 9, 10, 11, 11, 10];
    let header: Vec<String> = ["app", "entries", "total", "hdr-load", "hit rate", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in [Preset::Javac, Preset::Db, Preset::Jlisp] {
        let mut base = 0u64;
        for entries in [0usize, 64, 256, 4096] {
            let cfg = GcConfig {
                n_cores: 16,
                mem: MemConfig {
                    header_cache_entries: entries,
                    ..MemConfig::default()
                },
                ..GcConfig::default()
            };
            let out = run_verified(&spec(preset), cfg);
            let s = &out.stats;
            if entries == 0 {
                base = s.total_cycles;
            }
            let lookups = s.mem.header_cache_hits + s.mem.header_cache_misses;
            let hit_rate = if lookups == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1} %",
                    100.0 * s.mem.header_cache_hits as f64 / lookups as f64
                )
            };
            let cells = vec![
                preset.name().to_string(),
                entries.to_string(),
                s.total_cycles.to_string(),
                format!("{:.2} %", s.stall_fraction(StallReason::HeaderLoad) * 100.0),
                hit_rate,
                format!("{:.2}x", base as f64 / s.total_cycles as f64),
            ];
            println!("{}", row(&cells, &widths));
            csv.push(format!(
                "{},{},{},{:.6},{},{}",
                preset.name(),
                entries,
                s.total_cycles,
                s.stall_fraction(StallReason::HeaderLoad),
                s.mem.header_cache_hits,
                s.mem.header_cache_misses
            ));
        }
        println!();
    }
    write_csv(
        "ablation_headercache",
        "app,entries,total,header_load_frac,cache_hits,cache_misses",
        &csv,
    );
    sweep_finish();
}
