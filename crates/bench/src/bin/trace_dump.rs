//! Extension 4: per-cycle signal tracing (the model's analogue of the
//! paper's FPGA monitoring framework, Section VI-A).
//!
//! Samples scan/free, the gray population, busy cores, FIFO occupancy and
//! DRAM queue depth every N cycles of one collection, writes the raw
//! trace as CSV, and prints a coarse timeline so the work-list dynamics —
//! e.g. cup's frontier explosion versus compress's starvation — are
//! visible at a glance.

use hwgc_bench::{experiments_dir, run_verified_heap, spec};
use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Snapshot;
use hwgc_workloads::Preset;

fn main() {
    let preset = std::env::args()
        .nth(1)
        .map(|n| Preset::by_name(&n).unwrap_or_else(|| panic!("unknown preset {n}")))
        .unwrap_or(Preset::Cup);
    let cores = 8;
    println!("Extension 4: signal trace of one `{preset}` collection ({cores} cores)\n");

    let mut heap = spec(preset).build();
    let snapshot = Snapshot::capture(&heap);
    let mut trace = SignalTrace::new(1);
    let out = SimCollector::new(GcConfig::with_cores(cores)).collect_traced(&mut heap, &mut trace);
    hwgc_heap::verify_collection(&heap, out.free, &snapshot).expect("correct collection");
    // Keep the run honest even though we bypass run_verified.
    let _ = run_verified_heap;

    println!("total cycles: {}", out.stats.total_cycles);
    println!("peak gray population: {} words", trace.peak_gray_words());
    println!("mean busy cores: {:.2} / {cores}", trace.mean_busy_cores());

    // Coarse timeline: 40 buckets of the collection, gray population and
    // busy cores as bars.
    let rows = trace.rows();
    let buckets = 40.min(rows.len());
    if buckets > 0 {
        let peak = trace.peak_gray_words().max(1);
        println!("\n  t%   gray-words (#) and busy cores (*)");
        for b in 0..buckets {
            let idx = b * rows.len() / buckets;
            let r = &rows[idx];
            let gbar = (r.gray_words as usize * 30 / peak as usize).min(30);
            let bbar = r.busy_cores as usize * 30 / cores;
            println!(
                "{:4} {:<31} {:<31}",
                b * 100 / buckets,
                "#".repeat(gbar.max(usize::from(r.gray_words > 0))),
                "*".repeat(bbar)
            );
        }
    }

    let path = experiments_dir().join(format!("trace_{preset}.csv"));
    let f = std::fs::File::create(&path).expect("create trace csv");
    trace
        .write_csv(std::io::BufWriter::new(f))
        .expect("write trace");
    println!("\n[csv] {}", path.display());
}
