//! Extension 4: per-cycle signal tracing (the model's analogue of the
//! paper's FPGA monitoring framework, Section VI-A), rebuilt on the
//! unified event bus: one probed collection feeds every export.
//!
//! ```text
//! trace_dump [preset] [--format {csv,chrome,summary}]
//!            [--trace-out <path>] [--metrics-out <path>]
//! ```
//!
//! * `summary` (default) — headline numbers and the coarse timeline, plus
//!   the CSV written next to the other experiment artifacts (the classic
//!   behavior);
//! * `csv` — the per-cycle signal trace as CSV only;
//! * `chrome` — Chrome trace-event / Perfetto JSON (load the file at
//!   `ui.perfetto.dev`): one slice track per GC core, one counter track
//!   per memory port, plus FIFO/worklist/busy-core counters.
//!
//! `--trace-out` overrides where the trace artifact goes (default
//! `target/experiments/trace_<preset>.{csv,chrome.json}`); in `summary`
//! mode, where the CSV already has its classic home, it instead requests
//! the Chrome trace at that path on top of the usual output, so a driver
//! can collect the Perfetto artifact without changing the format.
//! `--metrics-out`
//! additionally writes the run's metrics registry snapshot (lock wait/hold
//! histograms, contention pairs, port counters, `stats.*`). Both flags
//! fall back to the `HWGC_TRACE_OUT` / `HWGC_METRICS_OUT` environment
//! variables so drivers like `reproduce_all` can forward them. A
//! flamegraph-ready folded-stacks stall dump always lands next to the
//! trace artifact.

use std::path::PathBuf;

use hwgc_bench::{
    chrome_trace, experiments_dir, metrics_for_run, render_trace_summary, run_probed, spec,
    stall_folded, trace_csv,
};
use hwgc_core::GcConfig;
use hwgc_workloads::Preset;

fn main() {
    let mut preset = Preset::Cup;
    let mut format = "summary".to_string();
    let mut trace_out: Option<String> = std::env::var("HWGC_TRACE_OUT").ok();
    let mut metrics_out: Option<String> = std::env::var("HWGC_METRICS_OUT").ok();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--format" => {
                format = value(i);
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(value(i));
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = Some(value(i));
                i += 2;
            }
            name => {
                preset = Preset::by_name(name).unwrap_or_else(|| panic!("unknown preset {name}"));
                i += 1;
            }
        }
    }
    assert!(
        ["summary", "csv", "chrome"].contains(&format.as_str()),
        "--format must be one of summary, csv, chrome"
    );

    let cores = 8;
    println!("Extension 4: signal trace of one `{preset}` collection ({cores} cores)\n");

    let (out, trace, recording) = run_probed(&spec(preset), GcConfig::with_cores(cores), 1);

    let default_name = |ext: &str| experiments_dir().join(format!("trace_{preset}.{ext}"));
    let trace_path = |ext: &str| {
        trace_out
            .as_ref()
            .map(PathBuf::from)
            .unwrap_or_else(|| default_name(ext))
    };

    let write = |tag: &str, path: &PathBuf, text: &str| {
        std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("[{tag}] {}", path.display());
    };

    match format.as_str() {
        "summary" => {
            let reg = metrics_for_run(&preset.to_string(), cores, &out, &recording);
            print!(
                "{}",
                render_trace_summary(&preset.to_string(), cores, &out, &trace, &reg)
            );
            println!();
            write("csv", &default_name("csv"), &trace_csv(&trace));
            if let Some(path) = &trace_out {
                write(
                    "chrome",
                    &PathBuf::from(path),
                    &chrome_trace(&preset.to_string(), cores, &out, &recording),
                );
            }
        }
        "csv" => write("csv", &trace_path("csv"), &trace_csv(&trace)),
        "chrome" => write(
            "chrome",
            &trace_path("chrome.json"),
            &chrome_trace(&preset.to_string(), cores, &out, &recording),
        ),
        _ => unreachable!(),
    }

    write(
        "folded",
        &default_name("folded"),
        &stall_folded(&out.stats).to_folded_string(),
    );
    if let Some(path) = metrics_out {
        let reg = metrics_for_run(&preset.to_string(), cores, &out, &recording);
        write("metrics", &PathBuf::from(path), &reg.to_json_string());
    }
}
