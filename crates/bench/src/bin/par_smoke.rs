//! CI parity smoke for the parallel window engine (`EngineKind::Par`):
//! runs a preset × core-count × backend × latency matrix twice — the par
//! engine with a worker pool, then the plain sparse loop — and requires
//! bit-identical `GcStats` and allocation frontier on every combo. A
//! traced sub-matrix on the window-rich regime additionally pins the
//! cycle-stamped SB event streams one record at a time and publishes
//! their FNV fingerprints, so two CI legs (or a CI leg and a laptop) can
//! be compared by eyeballing one hex word per combo in the uploaded
//! artifact.
//!
//! ```text
//! par_smoke [--out <path>] [--host-threads <N>]
//!           [--expect-default <on|off>] [--expect-engine <par|none>]
//! ```
//!
//! * `--out` — report path (default `target/par_smoke.json`),
//! * `--host-threads` — worker-pool size for the par side (default 2, so
//!   the pool handshake is exercised even on a single-core runner),
//! * `--expect-default` — assert the `HWGC_SPARSE` escape hatch exactly
//!   like `sparse_smoke` does: the parity matrix pins the engine on both
//!   sides, so both CI legs prove par == sparse on the full grid while
//!   the flag proves the hatch end to end,
//! * `--expect-engine` — assert the `HWGC_ENGINE` hatch: `par` requires
//!   the process-default `GcConfig` to resolve to the window engine,
//!   `none` requires the override to be absent.
//!
//! `par_copy_threshold` is pinned to 1 on the par side so every planned
//! window exercises the pool dispatch path, not just the large ones.
//! Any divergence prints the combo and exits nonzero.

use std::fmt::Write as _;
use std::time::Instant;

use hwgc_core::{EngineKind, GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Snapshot;
use hwgc_jobs::ConfigMatrix;
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_sync::event_fingerprint;
use hwgc_workloads::{Preset, WorkloadSpec};

fn fail(msg: &str) -> ! {
    eprintln!("par_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn sparse_config(cores: usize, extra: u32, backend: MemBackendKind) -> GcConfig {
    GcConfig {
        n_cores: cores,
        mem: MemConfig::default()
            .with_extra_latency(extra)
            .with_backend(backend),
        engine: Some(EngineKind::Sparse),
        sparse: true,
        ..GcConfig::default()
    }
}

fn par_config(cores: usize, extra: u32, backend: MemBackendKind, host_threads: usize) -> GcConfig {
    GcConfig {
        engine: Some(EngineKind::Par),
        host_threads,
        par_copy_threshold: 1,
        ..sparse_config(cores, extra, backend)
    }
}

/// The backend axis: the fixed model in both latency regimes (+20 is the
/// window-rich one — parked copy streams are what windows are made of),
/// and the DRAM model under both page policies, where the engine must
/// degrade to the plain sparse loop (no `window_ready`) and still match.
fn backend_axis() -> Vec<(MemBackendKind, Vec<u32>)> {
    let closed = DramConfig {
        page_policy: PagePolicy::Closed,
        ..DramConfig::preset("80ns").expect("preset exists")
    };
    vec![
        (MemBackendKind::Fixed, vec![0, 20]),
        (MemBackendKind::Dram(DramConfig::default()), vec![0]),
        (MemBackendKind::Dram(closed), vec![0]),
    ]
}

/// Display label of a combo's memory backend (page policy included —
/// the two DRAM legs differ only there).
fn backend_name(backend: MemBackendKind) -> &'static str {
    match backend {
        MemBackendKind::Fixed => "fixed",
        MemBackendKind::Dram(d) => match d.page_policy {
            PagePolicy::Open => "dram-open",
            PagePolicy::Closed => "dram-closed",
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "target/par_smoke.json".to_string());
    let host_threads: usize = flag_value("--host-threads")
        .map(|v| v.parse().unwrap_or_else(|e| panic!("--host-threads: {e}")))
        .unwrap_or(2);

    if let Some(expect) = flag_value("--expect-default") {
        let want = match expect.as_str() {
            "on" => true,
            "off" => false,
            other => fail(&format!("--expect-default takes on|off, got {other:?}")),
        };
        let got = GcConfig::default().sparse;
        if got != want {
            fail(&format!(
                "HWGC_SPARSE hatch broken: default sparse is {got}, expected {want} \
                 (HWGC_SPARSE={:?})",
                std::env::var("HWGC_SPARSE").ok()
            ));
        }
        println!("par_smoke: default sparse = {got} (as expected)");
    }

    if let Some(expect) = flag_value("--expect-engine") {
        let got = GcConfig::default().engine;
        let matches = match expect.as_str() {
            "par" => got == Some(EngineKind::Par),
            "none" => got.is_none(),
            other => fail(&format!("--expect-engine takes par|none, got {other:?}")),
        };
        if !matches {
            fail(&format!(
                "HWGC_ENGINE hatch broken: default engine is {got:?}, expected {expect} \
                 (HWGC_ENGINE={:?})",
                std::env::var("HWGC_ENGINE").ok()
            ));
        }
        println!("par_smoke: default engine = {got:?} (as expected)");
    }

    let core_counts = [1usize, 4, 16];

    // The parity grid is one declared matrix over the *sparse* config;
    // the par side of every combo is derived from the job. Combos are
    // never cached — replaying a recorded result would defeat the
    // engine-parity differential — but they do report to the fleet
    // telemetry stream, so a batch run sees this binary's progress.
    let set = ConfigMatrix::new(sparse_config(1, 0, MemBackendKind::Fixed))
        .presets([Preset::Compress, Preset::Javac, Preset::Jlisp])
        .cores(core_counts)
        .backends(backend_axis())
        .lower();
    assert_eq!(set.duplicates(), 0, "parity combos must all be distinct");
    let session = hwgc_bench::sweep_begin("par_smoke", set.len());

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{{\n  \"schema\": \"hwgc-par-smoke-v1\",\n  \"host_threads\": {host_threads},\n  \"combos\": ["
    );
    let mut first = true;
    println!(
        "{:>10}  {:>5}  {:>11}  {:>6}  {:>12}  {:>10}  {:>10}",
        "preset", "cores", "backend", "extra", "cycles", "par ms", "sparse ms"
    );
    for job in set.jobs() {
        let (preset, cores) = (job.spec.preset, job.cfg.n_cores);
        let (extra, backend_name) = (job.cfg.mem.extra_latency, backend_name(job.cfg.mem.backend));
        let base = job.spec.build();
        let snap = Snapshot::capture(&base);

        let mut par_heap = base.clone();
        let t = Instant::now();
        let par = SimCollector::new(GcConfig {
            engine: Some(EngineKind::Par),
            host_threads,
            par_copy_threshold: 1,
            ..job.cfg
        })
        .collect(&mut par_heap);
        let par_s = t.elapsed().as_secs_f64();
        hwgc_heap::verify_collection(&par_heap, par.free, &snap).unwrap_or_else(|e| {
            fail(&format!(
                "{}/{cores}c/{backend_name} +{extra}: par run failed verification: {e}",
                preset.name()
            ))
        });

        let mut sparse_heap = base;
        let t = Instant::now();
        let sparse = SimCollector::new(job.cfg).collect(&mut sparse_heap);
        let sparse_s = t.elapsed().as_secs_f64();

        if par.stats != sparse.stats || par.free != sparse.free {
            fail(&format!(
                "{}/{cores}c/{backend_name} +{extra}: par diverged from sparse \
                 ({} vs {} total cycles)",
                preset.name(),
                par.stats.total_cycles,
                sparse.stats.total_cycles
            ));
        }
        if par_heap.words() != sparse_heap.words() {
            fail(&format!(
                "{}/{cores}c/{backend_name} +{extra}: window copies left a \
                 different heap image",
                preset.name()
            ));
        }

        session.progress.job(
            &format!("{}@{cores}c/{backend_name}+{extra}", preset.name()),
            hwgc_obs::JobOutcome::Miss,
            ((par_s + sparse_s) * 1e9) as u64,
        );

        println!(
            "{:>10}  {cores:>5}  {backend_name:>11}  {extra:>6}  {:>12}  {:>10.3}  \
             {:>10.3}",
            preset.name(),
            par.stats.total_cycles,
            par_s * 1e3,
            sparse_s * 1e3,
        );
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(
            report,
            "{sep}    {{\"preset\": \"{}\", \"cores\": {cores}, \
             \"backend\": \"{backend_name}\", \"extra_latency\": {extra}, \
             \"cycles\": {}, \"par_wall_s\": {par_s:.6}, \
             \"sparse_wall_s\": {sparse_s:.6}, \"parity\": true}}",
            preset.name(),
            par.stats.total_cycles,
        );
    }
    report.push_str("\n  ],\n");

    // Traced sub-matrix: compress under fixed +20 is the window-rich
    // regime (thousands of windows per run), so this leg proves the
    // closed-form replay reproduces the SB event stream the sparse
    // engine emits tick by tick — and publishes the FNV fingerprint of
    // that stream per combo, the one-word cross-host comparison handle.
    report.push_str("  \"traced\": [\n");
    let mut first = true;
    let traced_backends = [
        ("fixed", MemBackendKind::Fixed, 20u32),
        ("dram-open", MemBackendKind::Dram(DramConfig::default()), 0),
    ];
    for cores in core_counts {
        for (backend_name, backend, extra) in traced_backends {
            let base = WorkloadSpec::new(Preset::Compress, 42).build();
            let mut h1 = base.clone();
            let mut t1 = SignalTrace::with_events(1 << 40);
            let par = SimCollector::new(par_config(cores, extra, backend, host_threads))
                .collect_traced(&mut h1, &mut t1);
            let mut h2 = base;
            let mut t2 = SignalTrace::with_events(1 << 40);
            let sparse = SimCollector::new(sparse_config(cores, extra, backend))
                .collect_traced(&mut h2, &mut t2);
            if par.stats != sparse.stats {
                fail(&format!(
                    "compress/{cores}c/{backend_name} (traced): stats diverged"
                ));
            }
            if t1.events() != t2.events() {
                fail(&format!(
                    "compress/{cores}c/{backend_name}: SB event streams diverged"
                ));
            }
            if t1.rows() != t2.rows() {
                fail(&format!(
                    "compress/{cores}c/{backend_name}: trace rows diverged"
                ));
            }
            let fp = event_fingerprint(t1.events());
            println!(
                "traced compress/{cores}c/{backend_name}: {} SB events, fingerprint \
                 {fp:#018x}",
                t1.events().len()
            );
            let sep = if first { "" } else { ",\n" };
            first = false;
            let _ = write!(
                report,
                "{sep}    {{\"preset\": \"compress\", \"cores\": {cores}, \
                 \"backend\": \"{backend_name}\", \"extra_latency\": {extra}, \
                 \"sb_events\": {}, \"fingerprint\": \"{fp:#018x}\"}}",
                t1.events().len(),
            );
        }
    }
    report.push_str("\n  ],\n");

    // Window-funnel leg (PR 8): profile the par engine's window planner
    // on the two reference regimes — compress/16c +20 (window-rich) and
    // javac/16c +0 (fires zero windows) — and publish the deterministic
    // funnel counters (`win.attempted`, `win.veto.*`, `win.fired`) in the
    // artifact, so CI answers *why* a leg fired no windows, not just that
    // it matched. Every counter here is split-invariant and identical
    // across hosts; wall-clock never enters this section.
    report.push_str("  \"window_funnel\": [\n");
    let mut first = true;
    let funnel_combos = [(Preset::Compress, 20u32), (Preset::Javac, 0)];
    for (preset, extra) in funnel_combos {
        let cfg = par_config(16, extra, MemBackendKind::Fixed, host_threads);
        let (out, prof) = hwgc_bench::run_hostprof(&WorkloadSpec::new(preset, 42), cfg);
        hwgc_bench::append_ledger(&hwgc_bench::ledger_record(
            "par_smoke",
            preset.name(),
            &cfg,
            &out.stats,
            None,
            Some(&prof),
        ));
        let funnel: Vec<String> = prof
            .counters()
            .filter(|(k, _)| k.starts_with("win."))
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        println!(
            "funnel {}/16c +{extra}: attempted {}, fired {}",
            preset.name(),
            prof.counter("win.attempted"),
            prof.counter("win.fired"),
        );
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(
            report,
            "{sep}    {{\"preset\": \"{}\", \"cores\": 16, \"extra_latency\": {extra}, \
             {}}}",
            preset.name(),
            funnel.join(", "),
        );
    }
    report.push_str("\n  ],\n");
    let _ = writeln!(
        report,
        "  \"default_engine\": \"{:?}\"\n}}",
        GcConfig::default().engine
    );

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, report).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("[json] {out_path}");
    hwgc_bench::sweep_finish();
    println!("par_smoke: PASS");
}
