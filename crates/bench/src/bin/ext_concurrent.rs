//! Extension 3 (paper Section V-B): the coprocessor collecting while the
//! main processor keeps running behind a hardware read barrier.
//!
//! For each benchmark, compares the stop-the-world cycle against the
//! concurrent cycle and reports what the mutator got done in the
//! meantime: actions completed, barrier traffic (backlink redirects,
//! forwards, assisted evacuations), mid-cycle allocations, and how much
//! the collection stretched.

use hwgc_bench::{row, spec, write_csv};
use hwgc_core::{GcConfig, MutatorConfig, SimCollector};
use hwgc_heap::{verify_collection_with, Snapshot, VerifyOptions};
use hwgc_workloads::Preset;

fn main() {
    println!("Extension 3: concurrent collection (8 GC cores + 1 mutator)\n");
    let widths = [10, 9, 10, 9, 11, 10, 9, 9, 10];
    let header: Vec<String> = [
        "app",
        "stw cyc",
        "conc cyc",
        "dilation",
        "mut actions",
        "mut util",
        "barrier",
        "allocs",
        "max pause",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in [Preset::Db, Preset::Javac, Preset::Cup, Preset::Jlisp] {
        let s = spec(preset);
        // Baseline: stop-the-world.
        let mut heap = s.build();
        let stw = SimCollector::new(GcConfig::with_cores(8)).collect(&mut heap);

        // Concurrent: same heap shape, mutator running.
        let mut heap = s.build();
        let snapshot = Snapshot::capture(&heap);
        let mcfg = MutatorConfig::default();
        let out = SimCollector::new(GcConfig::with_cores(8)).collect_concurrent(&mut heap, &mcfg);
        verify_collection_with(
            &heap,
            out.free,
            &snapshot,
            VerifyOptions {
                allow_unknown_objects: true,
                ..VerifyOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{preset} concurrent: {e}"));

        let dilation = out.stats.total_cycles as f64 / stw.stats.total_cycles as f64;
        let barrier = out.mutator.barrier_forwards + out.mutator.barrier_evacuations;
        let cells = vec![
            preset.name().to_string(),
            stw.stats.total_cycles.to_string(),
            out.stats.total_cycles.to_string(),
            format!("{dilation:.2}x"),
            out.mutator.actions.to_string(),
            format!(
                "{:.0} %",
                out.mutator.utilization(out.stats.total_cycles) * 100.0
            ),
            barrier.to_string(),
            out.mutator.allocations.to_string(),
            format!("{} cyc", out.mutator.max_pause_cycles),
        ];
        println!("{}", row(&cells, &widths));
        csv.push(format!(
            "{},{},{},{:.4},{},{:.4},{},{},{},{},{}",
            preset.name(),
            stw.stats.total_cycles,
            out.stats.total_cycles,
            dilation,
            out.mutator.actions,
            out.mutator.utilization(out.stats.total_cycles),
            out.mutator.backlink_redirects,
            out.mutator.barrier_forwards,
            out.mutator.barrier_evacuations,
            out.mutator.allocations,
            out.mutator.max_pause_cycles
        ));
    }
    println!(
        "\nreading: the mutator stays >90 % utilized during collection at the cost of a\n\
         few percent GC dilation; barrier work (redirects/forwards/assisted evacuations)\n\
         replaces the pause, and the worst mutator pause stays in the tens of cycles —\n\
         the fine-grained *parallel and real-time* combination the paper's final\n\
         sentence aims for (prior work's bound: a couple hundred cycles)."
    );
    write_csv(
        "ext_concurrent",
        "app,stw_cycles,conc_cycles,dilation,mut_actions,mut_utilization,\
         backlink_redirects,barrier_forwards,barrier_evacuations,allocations,max_pause",
        &csv,
    );
}
