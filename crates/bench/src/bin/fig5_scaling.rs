//! Figure 5: speedup of the garbage collection cycle versus number of GC
//! cores, for all eight benchmarks, under the default (prototype-like)
//! memory configuration. The 1-core configuration is the baseline — the
//! paper notes it performs like sequential Cheney because uncontended
//! synchronization is free.
//!
//! The sweep is one declared [`ConfigMatrix`] run through the unified
//! job layer: `HWGC_WORKERS` fans it over worker processes,
//! `HWGC_JOURNAL` makes it resumable, and the cache dedupes it against
//! every other binary sweeping the same configurations.

use hwgc_bench::{pct, row, sweep_finish, sweep_jobset, write_csv, CORE_COUNTS};
use hwgc_core::GcConfig;
use hwgc_jobs::ConfigMatrix;
use hwgc_workloads::Preset;

fn main() {
    println!("Figure 5: scaling behavior (speedup vs 1-core baseline)\n");
    let set = ConfigMatrix::new(GcConfig::default())
        .presets(Preset::ALL)
        .cores(CORE_COUNTS)
        .lower();
    let report = sweep_jobset("fig5_scaling", &set);

    let widths = [10, 12, 8, 8, 8, 8, 8];
    let header: Vec<String> = ["app", "1-core cyc", "x1", "x2", "x4", "x8", "x16"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for (pi, preset) in Preset::ALL.into_iter().enumerate() {
        let cycles: Vec<u64> = (0..CORE_COUNTS.len())
            .map(|ci| {
                report.outcomes[pi * CORE_COUNTS.len() + ci]
                    .0
                    .stats
                    .total_cycles
            })
            .collect();
        let base = cycles[0] as f64;
        let mut cells = vec![preset.name().to_string(), cycles[0].to_string()];
        for (&c, &n) in cycles.iter().zip(&CORE_COUNTS) {
            let speedup = base / c as f64;
            cells.push(format!("{speedup:.2}"));
            csv.push(format!("{},{},{},{:.4}", preset.name(), n, c, speedup));
        }
        println!("{}", row(&cells, &widths));
    }
    write_csv("fig5_scaling", "app,cores,cycles,speedup", &csv);
    sweep_finish();
    let _ = pct(0.0);
}
