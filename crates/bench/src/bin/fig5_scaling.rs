//! Figure 5: speedup of the garbage collection cycle versus number of GC
//! cores, for all eight benchmarks, under the default (prototype-like)
//! memory configuration. The 1-core configuration is the baseline — the
//! paper notes it performs like sequential Cheney because uncontended
//! synchronization is free.

use hwgc_bench::{pct, row, run_verified, spec, sweep_begin, sweep_finish, write_csv, CORE_COUNTS};
use hwgc_core::GcConfig;
use hwgc_workloads::Preset;

fn main() {
    println!("Figure 5: scaling behavior (speedup vs 1-core baseline)\n");
    sweep_begin("fig5_scaling", Preset::ALL.len() * CORE_COUNTS.len());
    let widths = [10, 12, 8, 8, 8, 8, 8];
    let header: Vec<String> = ["app", "1-core cyc", "x1", "x2", "x4", "x8", "x16"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", row(&header, &widths));

    let mut csv = Vec::new();
    for preset in Preset::ALL {
        let s = spec(preset);
        let mut cycles = Vec::new();
        for &n in &CORE_COUNTS {
            let out = run_verified(&s, GcConfig::with_cores(n));
            cycles.push(out.stats.total_cycles);
        }
        let base = cycles[0] as f64;
        let mut cells = vec![preset.name().to_string(), cycles[0].to_string()];
        for (&c, &n) in cycles.iter().zip(&CORE_COUNTS) {
            let speedup = base / c as f64;
            cells.push(format!("{speedup:.2}"));
            csv.push(format!("{},{},{},{:.4}", preset.name(), n, c, speedup));
        }
        println!("{}", row(&cells, &widths));
    }
    write_csv("fig5_scaling", "app,cores,cycles,speedup", &csv);
    sweep_finish();
    let _ = pct(0.0);
}
