//! CI parity smoke for the sparse active-set engine: runs a preset ×
//! core-count × memory-latency matrix twice — sparse engine forced on,
//! then the fully naive per-cycle loop (sparse and fast-forward off) —
//! and requires bit-identical `GcStats` and allocation frontier on every
//! combo, plus identical cycle-stamped SB event streams on a traced
//! sub-matrix. A machine-parseable parity report (one JSON line per
//! combo, with both wall clocks and the resulting speedup) is written
//! for upload.
//!
//! ```text
//! sparse_smoke [--out <path>] [--expect-default <on|off>]
//!              [--expect-backend <fixed|dram>]
//! ```
//!
//! * `--out` — report path (default `target/sparse_smoke.json`),
//! * `--expect-default` — assert the `HWGC_SPARSE` escape hatch: the
//!   process-default `GcConfig` must have the sparse engine in exactly
//!   this state. CI runs one leg with the variable unset (`on`) and one
//!   with `HWGC_SPARSE=0` (`off`), so the hatch is exercised end to end.
//! * `--expect-backend` — assert the `HWGC_MEM_BACKEND` hatch the same
//!   way: the process-default `MemConfig` must resolve to this memory
//!   backend.
//!
//! The parity matrix itself carries a backend axis: every preset × cores
//! combo runs under the fixed-latency backend (both `extra_latency`
//! regimes) and under two bank/row DRAM backends (open- and closed-page),
//! each pinned explicitly on both the sparse and the naive side.
//!
//! The matrix itself pins `sparse` explicitly on both sides, so parity
//! coverage is identical in both CI legs; only the default is asserted.
//! Any divergence prints the combo and exits nonzero.

use std::fmt::Write as _;
use std::time::Instant;

use hwgc_core::{EngineKind, GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Snapshot;
use hwgc_jobs::ConfigMatrix;
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_workloads::{Preset, WorkloadSpec};

fn fail(msg: &str) -> ! {
    eprintln!("sparse_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn sparse_config(cores: usize, extra: u32, backend: MemBackendKind) -> GcConfig {
    GcConfig {
        n_cores: cores,
        mem: MemConfig::default()
            .with_extra_latency(extra)
            .with_backend(backend),
        engine: Some(EngineKind::Sparse),
        sparse: true,
        ..GcConfig::default()
    }
}

fn naive_config(cores: usize, extra: u32, backend: MemBackendKind) -> GcConfig {
    GcConfig {
        engine: Some(EngineKind::Naive),
        sparse: false,
        fast_forward: false,
        ..sparse_config(cores, extra, backend)
    }
}

/// The backend axis of the parity matrix: the fixed model in both
/// latency regimes, and the DRAM model under both page policies (the
/// closed-page leg uses the fastest preset so CI wall clock stays flat).
fn backend_axis() -> Vec<(MemBackendKind, Vec<u32>)> {
    let closed = DramConfig {
        page_policy: PagePolicy::Closed,
        ..DramConfig::preset("80ns").expect("preset exists")
    };
    vec![
        (MemBackendKind::Fixed, vec![0, 20]),
        (MemBackendKind::Dram(DramConfig::default()), vec![0]),
        (MemBackendKind::Dram(closed), vec![0]),
    ]
}

/// Display label of a combo's memory backend (page policy included —
/// the two DRAM legs differ only there).
fn backend_name(backend: MemBackendKind) -> &'static str {
    match backend {
        MemBackendKind::Fixed => "fixed",
        MemBackendKind::Dram(d) => match d.page_policy {
            PagePolicy::Open => "dram-open",
            PagePolicy::Closed => "dram-closed",
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "target/sparse_smoke.json".to_string());

    if let Some(expect) = flag_value("--expect-default") {
        let want = match expect.as_str() {
            "on" => true,
            "off" => false,
            other => fail(&format!("--expect-default takes on|off, got {other:?}")),
        };
        let got = GcConfig::default().sparse;
        if got != want {
            fail(&format!(
                "HWGC_SPARSE hatch broken: default sparse is {got}, expected {want} \
                 (HWGC_SPARSE={:?})",
                std::env::var("HWGC_SPARSE").ok()
            ));
        }
        println!("sparse_smoke: default sparse = {got} (as expected)");
    }

    if let Some(expect) = flag_value("--expect-backend") {
        let got = MemConfig::default().backend;
        let matches = match expect.as_str() {
            "fixed" => got == MemBackendKind::Fixed,
            "dram" => matches!(got, MemBackendKind::Dram(_)),
            other => fail(&format!("--expect-backend takes fixed|dram, got {other:?}")),
        };
        if !matches {
            fail(&format!(
                "HWGC_MEM_BACKEND hatch broken: default backend is {got:?}, expected \
                 {expect} (HWGC_MEM_BACKEND={:?})",
                std::env::var("HWGC_MEM_BACKEND").ok()
            ));
        }
        println!("sparse_smoke: default backend = {got:?} (as expected)");
    }

    let core_counts = [1usize, 4, 16];

    // The parity grid is one declared matrix over the *sparse* config;
    // the naive side of every combo is derived from the job. Combos are
    // never cached — replaying a recorded result would defeat the
    // engine-parity differential — but they do report to the fleet
    // telemetry stream, so a batch run sees this binary's progress.
    let set = ConfigMatrix::new(sparse_config(1, 0, MemBackendKind::Fixed))
        .presets([Preset::Compress, Preset::Javac, Preset::Jlisp])
        .cores(core_counts)
        .backends(backend_axis())
        .lower();
    assert_eq!(set.duplicates(), 0, "parity combos must all be distinct");
    let session = hwgc_bench::sweep_begin("sparse_smoke", set.len());

    let mut report = String::new();
    report.push_str("{\n  \"schema\": \"hwgc-sparse-smoke-v1\",\n  \"combos\": [\n");
    let mut first = true;
    println!(
        "{:>10}  {:>5}  {:>11}  {:>6}  {:>12}  {:>10}  {:>10}  {:>8}",
        "preset", "cores", "backend", "extra", "cycles", "sparse ms", "naive ms", "speedup"
    );
    for job in set.jobs() {
        let (preset, cores) = (job.spec.preset, job.cfg.n_cores);
        let (extra, backend_name) = (job.cfg.mem.extra_latency, backend_name(job.cfg.mem.backend));
        let base = job.spec.build();
        let snap = Snapshot::capture(&base);

        let mut sparse_heap = base.clone();
        let t = Instant::now();
        let sparse = SimCollector::new(job.cfg).collect(&mut sparse_heap);
        let sparse_s = t.elapsed().as_secs_f64();
        hwgc_heap::verify_collection(&sparse_heap, sparse.free, &snap).unwrap_or_else(|e| {
            fail(&format!(
                "{}/{cores}c/{backend_name} +{extra}: sparse run failed \
                 verification: {e}",
                preset.name()
            ))
        });

        let mut naive_heap = base;
        let t = Instant::now();
        let naive = SimCollector::new(GcConfig {
            engine: Some(EngineKind::Naive),
            sparse: false,
            fast_forward: false,
            ..job.cfg
        })
        .collect(&mut naive_heap);
        let naive_s = t.elapsed().as_secs_f64();

        if sparse.stats != naive.stats || sparse.free != naive.free {
            fail(&format!(
                "{}/{cores}c/{backend_name} +{extra}: sparse diverged from naive \
                 ({} vs {} total cycles)",
                preset.name(),
                sparse.stats.total_cycles,
                naive.stats.total_cycles
            ));
        }
        hwgc_bench::append_ledger(&hwgc_bench::ledger_record(
            "sparse_smoke",
            preset.name(),
            &job.cfg,
            &sparse.stats,
            None,
            None,
        ));

        session.progress.job(
            &format!("{}@{cores}c/{backend_name}+{extra}", preset.name()),
            hwgc_obs::JobOutcome::Miss,
            ((sparse_s + naive_s) * 1e9) as u64,
        );

        let speedup = naive_s / sparse_s.max(1e-9);
        println!(
            "{:>10}  {cores:>5}  {backend_name:>11}  {extra:>6}  {:>12}  {:>10.3}  \
             {:>10.3}  {speedup:>7.2}x",
            preset.name(),
            sparse.stats.total_cycles,
            sparse_s * 1e3,
            naive_s * 1e3,
        );
        let sep = if first { "" } else { ",\n" };
        first = false;
        let _ = write!(
            report,
            "{sep}    {{\"preset\": \"{}\", \"cores\": {cores}, \
             \"backend\": \"{backend_name}\", \"extra_latency\": {extra}, \
             \"cycles\": {}, \"sparse_wall_s\": {sparse_s:.6}, \
             \"naive_wall_s\": {naive_s:.6}, \"speedup\": {speedup:.2}, \"parity\": true}}",
            preset.name(),
            sparse.stats.total_cycles,
        );
    }
    report.push_str("\n  ],\n");

    // Traced sub-matrix: the SB event log flips the sparse park rules
    // for lock classes, and the event stream pins cycle stamps one by
    // one — the strictest parity surface.
    let mut traced = 0usize;
    let traced_backends = [
        ("fixed", MemBackendKind::Fixed, 20u32),
        ("dram-open", MemBackendKind::Dram(DramConfig::default()), 0),
    ];
    for cores in core_counts {
        for (backend_name, backend, extra) in traced_backends {
            let base = WorkloadSpec::new(Preset::Javac, 42).build();
            let mut h1 = base.clone();
            let mut t1 = SignalTrace::with_events(1 << 40);
            let sparse = SimCollector::new(sparse_config(cores, extra, backend))
                .collect_traced(&mut h1, &mut t1);
            let mut h2 = base;
            let mut t2 = SignalTrace::with_events(1 << 40);
            let naive = SimCollector::new(naive_config(cores, extra, backend))
                .collect_traced(&mut h2, &mut t2);
            if sparse.stats != naive.stats {
                fail(&format!(
                    "javac/{cores}c/{backend_name} (traced): stats diverged"
                ));
            }
            if t1.events() != t2.events() {
                fail(&format!(
                    "javac/{cores}c/{backend_name}: SB event streams diverged"
                ));
            }
            if t1.rows() != t2.rows() {
                fail(&format!(
                    "javac/{cores}c/{backend_name}: trace rows diverged"
                ));
            }
            traced += 1;
        }
    }
    println!(
        "traced parity: javac at {core_counts:?} cores x {{fixed +20, dram-open}}, \
         event streams identical"
    );
    let _ = writeln!(report, "  \"traced_combos\": {traced},");
    let _ = writeln!(
        report,
        "  \"default_sparse\": {}",
        GcConfig::default().sparse
    );
    report.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, report).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("[json] {out_path}");
    hwgc_bench::sweep_finish();
    println!("sparse_smoke: PASS");
}
