//! CI trace smoke test: a reduced Figure-6 configuration (javac at 0.2
//! scale, +20 cycles memory latency, 4 cores) with the full event bus
//! attached, validated end to end:
//!
//! 1. the probed run's `GcStats` equal a probe-off run of the same heap —
//!    observation must not perturb the simulation;
//! 2. the Chrome trace-event JSON is well-formed, timestamps are
//!    monotone, and there is one slice track per GC core and one counter
//!    track per memory port kind;
//! 3. the metrics snapshot carries the lock wait-time histograms for all
//!    three lock kinds (scan, free, header).
//!
//! Artifacts (`trace.chrome.json`, `metrics.json`, `stalls.folded`) are
//! written under `--out-dir` (default `target/trace_smoke/`) for upload.
//! Any failed check prints a diagnostic and exits nonzero.

use hwgc_bench::{chrome_trace, metrics_for_run, run_probed_heap, stall_folded};
use hwgc_core::{GcConfig, SimCollector};
use hwgc_heap::Snapshot;
use hwgc_memsim::MemConfig;
use hwgc_obs::validate_chrome_trace;
use hwgc_workloads::{Preset, WorkloadSpec};

fn fail(msg: &str) -> ! {
    eprintln!("trace_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--out-dir needs a path"))
                .clone()
        })
        .unwrap_or_else(|| "target/trace_smoke".to_string());

    let cores = 4;
    let spec = WorkloadSpec {
        preset: Preset::Javac,
        seed: 42,
        scale: 0.2,
    };
    let cfg = GcConfig {
        n_cores: cores,
        mem: MemConfig::default().with_extra_latency(20),
        ..GcConfig::default()
    };
    println!("trace_smoke: javac(scale 0.2), +20 latency, {cores} cores");

    // Probe-off reference run of the identical heap.
    let reference = {
        let mut heap = spec.build();
        let snap = Snapshot::capture(&heap);
        let out = SimCollector::new(cfg).collect(&mut heap);
        hwgc_heap::verify_collection(&heap, out.free, &snap)
            .unwrap_or_else(|e| fail(&format!("probe-off run failed verification: {e}")));
        out
    };

    // Probed run: SignalTrace + Recorder fan out from one collection.
    let mut heap = spec.build();
    let (out, trace, recording) = run_probed_heap(&mut heap, cfg, "javac-smoke", 8);

    if out.stats != reference.stats || out.free != reference.free {
        fail(&format!(
            "probe-on GcStats diverged from probe-off: {} vs {} total cycles",
            out.stats.total_cycles, reference.stats.total_cycles
        ));
    }
    println!(
        "GcStats identical probe-on/probe-off ({} cycles, {} objects)",
        out.stats.total_cycles, out.stats.objects_copied
    );

    let chrome = chrome_trace("javac-smoke", cores, &out, &recording);
    let summary = match validate_chrome_trace(&chrome, cores) {
        Ok(s) => s,
        Err(e) => fail(&format!("chrome trace invalid: {e}")),
    };
    if summary.port_tracks < 4 {
        fail(&format!(
            "expected 4 memory-port counter tracks, found {}",
            summary.port_tracks
        ));
    }
    println!(
        "chrome trace valid: {} events, {} core tracks, {} port tracks, max ts {}",
        summary.events, summary.core_tracks, summary.port_tracks, summary.max_ts
    );

    let metrics = metrics_for_run("javac-smoke", cores, &out, &recording);
    for kind in ["scan", "free", "header"] {
        let name = format!("lock.{kind}.wait_cycles");
        match metrics.histogram_ref(&name) {
            Some(h) => println!(
                "{name}: {} acquisitions, max wait {} cycles",
                h.count(),
                h.max().unwrap_or(0)
            ),
            None => fail(&format!("metrics JSON missing histogram {name}")),
        }
    }

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| fail(&format!("mkdir {out_dir}: {e}")));
    let write = |name: &str, text: &str| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, text).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("[artifact] {path}");
    };
    write("trace.chrome.json", &chrome);
    write("metrics.json", &metrics.to_json_string());
    write(
        "stalls.folded",
        &stall_folded(&out.stats).to_folded_string(),
    );

    // The SignalTrace view rides the same bus; sanity-check it saw rows.
    if trace.rows().is_empty() {
        fail("signal trace captured no samples");
    }
    println!("trace_smoke: OK");
}
