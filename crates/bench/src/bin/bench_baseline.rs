//! Simulator throughput baseline: how many simulated cycles per wall
//! second, and how many heap allocations per simulated cycle.
//!
//! Runs the preset × core-count matrix through one verified collection
//! each (serially — concurrent combos would contend for the machine and
//! corrupt the wall-clock numbers), then writes a machine-parseable JSON
//! report. The committed `BENCH_simulator.json` at the repo root is the
//! reference; CI re-runs the reduced matrix and fails when aggregate
//! throughput regresses below [`CHECK_RATIO`] of the reference.
//!
//! ```text
//! bench_baseline [--smoke] [--out <path>] [--check <baseline.json>]
//!                [--trace-out <path>] [--metrics-out <path>]
//!                [--trajectory <path> --pr <N>]
//! ```
//!
//! * `--smoke` — reduced matrix (3 presets × {1, 4, 16} cores) for CI;
//!   16-core combos stay in so the check below gates the regime the
//!   sparse engine exists for,
//! * `--out` — where to write the report (default `BENCH_simulator.json`
//!   in the current directory),
//! * `--check` — compare against a previously written report: for every
//!   core count present in *both* reports, the aggregate cycles/second
//!   must be ≥ `CHECK_RATIO` × the reference (per-core-count gating, so
//!   a 16-core regression cannot hide behind fast 1-core combos), and
//!   the per-core-count wall-clock speedup vs the reference is printed;
//!   any floor violation exits 1,
//! * `--trace-out` / `--metrics-out` — after the timed matrix, run the
//!   Figure 6 configuration (javac, 1 core, +20 latency) once more with
//!   the event bus attached and export the Chrome/Perfetto trace and the
//!   metrics snapshot. The probed run is *not* timed; every measured
//!   combo keeps the zero-overhead `NullProbe` path,
//! * `--trajectory` / `--pr` — measure every trajectory series (the
//!   fig6 1-core baseline and, since PR 5, the fig6 16-core sweep
//!   point) once more and append `{pr, cycles, wall_s}` to each series
//!   in the per-PR trajectory file (the committed
//!   `BENCH_trajectory.json`). Idempotent per PR: an existing entry for
//!   the same PR number is replaced, so re-running before merge never
//!   duplicates rows. `cycles` is deterministic; the wall clock is the
//!   recording host's and is kept for order-of-magnitude context only.
//!
//! The report also carries `engine_speedup_1c` / `engine_speedup_16c`:
//! the wall-clock ratio of the fully naive per-cycle loop (sparse engine
//! and fast-forward both off) to the default engine on the Figure 6
//! configuration (+20 cycles memory latency, javac) at 1 and 16 cores,
//! asserted bit-exact (identical `GcStats`) before the ratio is taken.
//! The 16-core number is the one the sparse active-set engine exists
//! for: at high core counts global quiescence almost never holds, so
//! the PR 2 fast-forward alone degenerates to the naive loop there.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hwgc_bench::spec;
use hwgc_core::{GcConfig, GcOutcome, SimCollector};
use hwgc_heap::{verify_collection, Snapshot};
use hwgc_memsim::MemConfig;
use hwgc_workloads::Preset;

/// Minimum acceptable measured/reference aggregate-throughput ratio: a
/// regression worse than 30% fails `--check`. Generous because CI runners
/// are noisy; real slowdowns from lost fast-forwarding or re-introduced
/// per-cycle allocation are integer factors, not percentages.
const CHECK_RATIO: f64 = 0.7;

/// Wall-time measurements per combo; the fastest is reported, which is
/// the standard way to suppress one-off scheduling noise.
const REPS: u32 = 3;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct ComboResult {
    preset: &'static str,
    cores: usize,
    cycles: u64,
    wall_s: f64,
    allocs: u64,
}

/// One timed, verified collection. Heap construction, snapshot capture
/// and verification stay *outside* the timed and allocation-counted
/// window — the report measures the simulator, not the test fixture.
fn timed_collect(preset: Preset, cfg: GcConfig) -> (GcOutcome, f64, u64) {
    let mut heap = spec(preset).build();
    let snap = Snapshot::capture(&heap);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let t = Instant::now();
    let out = SimCollector::new(cfg).collect(&mut heap);
    let wall_s = t.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", preset.name()));
    (out, wall_s, allocs)
}

fn measure_combo(preset: Preset, cores: usize) -> ComboResult {
    let cfg = GcConfig::with_cores(cores);
    let mut best: Option<ComboResult> = None;
    for _ in 0..REPS {
        let (out, wall_s, allocs) = timed_collect(preset, cfg);
        if best.as_ref().is_none_or(|b| wall_s < b.wall_s) {
            best = Some(ComboResult {
                preset: preset.name(),
                cores,
                cycles: out.stats.total_cycles,
                wall_s,
                allocs,
            });
        }
    }
    best.expect("REPS >= 1")
}

/// Wall-clock ratio of the fully naive per-cycle loop (sparse engine and
/// fast-forward both off) to the default engine on the Figure 6
/// configuration, with bit-exactness asserted first.
fn measure_engine_speedup(preset: Preset, cores: usize) -> f64 {
    let base = GcConfig {
        n_cores: cores,
        mem: MemConfig::default().with_extra_latency(20),
        sparse: true,
        ..GcConfig::default()
    };
    let naive_cfg = GcConfig {
        sparse: false,
        fast_forward: false,
        ..base
    };
    // Warm up and check bit-exactness once.
    let (fast, _, _) = timed_collect(preset, base);
    let (naive, _, _) = timed_collect(preset, naive_cfg);
    assert_eq!(
        fast.stats,
        naive.stats,
        "the default engine diverged from the naive loop on {}/{}c",
        preset.name(),
        cores
    );
    let fast_s = (0..REPS)
        .map(|_| timed_collect(preset, base).1)
        .fold(f64::INFINITY, f64::min);
    let naive_s = (0..REPS)
        .map(|_| timed_collect(preset, naive_cfg).1)
        .fold(f64::INFINITY, f64::min);
    naive_s / fast_s.max(1e-9)
}

fn render_report(mode: &str, combos: &[ComboResult], speedup_1c: f64, speedup_16c: f64) -> String {
    let total_cycles: u64 = combos.iter().map(|c| c.cycles).sum();
    let total_wall: f64 = combos.iter().map(|c| c.wall_s).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"hwgc-bench-baseline-v1\",\n");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    out.push_str("  \"combos\": [\n");
    for (i, c) in combos.iter().enumerate() {
        let sep = if i + 1 == combos.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"preset\": \"{}\", \"cores\": {}, \"cycles\": {}, \"wall_s\": {:.6}, \
             \"cycles_per_sec\": {:.0}, \"allocs_per_cycle\": {:.4}}}{sep}",
            c.preset,
            c.cores,
            c.cycles,
            c.wall_s,
            c.cycles as f64 / c.wall_s.max(1e-9),
            c.allocs as f64 / c.cycles.max(1) as f64,
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"total_cycles\": {total_cycles},");
    let _ = writeln!(out, "  \"total_wall_s\": {total_wall:.6},");
    let _ = writeln!(
        out,
        "  \"cycles_per_sec\": {:.0},",
        total_cycles as f64 / total_wall.max(1e-9)
    );
    let _ = writeln!(out, "  \"engine_speedup_1c\": {speedup_1c:.2},");
    let _ = writeln!(out, "  \"engine_speedup_16c\": {speedup_16c:.2}");
    out.push_str("}\n");
    out
}

/// Extract `"key": "value"` from one JSON line (the report is written one
/// combo per line precisely so this suffices — no JSON crate needed).
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract `"key": <number>` from one JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the combo lines of a report into (preset, cores, cycles, wall_s).
fn parse_combos(report: &str) -> Vec<(String, usize, f64, f64)> {
    report
        .lines()
        .filter_map(|line| {
            let preset = json_str(line, "preset")?;
            Some((
                preset.to_string(),
                json_num(line, "cores")? as usize,
                json_num(line, "cycles")?,
                json_num(line, "wall_s")?,
            ))
        })
        .collect()
}

/// Aggregate throughput per core count over the combos present in both
/// reports. Returns `(cores, reference c/s, measured c/s)` rows sorted by
/// core count; empty when the reports share no combos.
fn per_core_intersection(reference: &str, measured: &str) -> Vec<(usize, f64, f64)> {
    let ref_combos = parse_combos(reference);
    let mea_combos = parse_combos(measured);
    // (cores, ref cycles, ref wall, measured cycles, measured wall)
    let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for (preset, cores, cycles, wall) in &mea_combos {
        if let Some((_, _, ref_cycles, ref_wall)) = ref_combos
            .iter()
            .find(|(p, n, _, _)| p == preset && n == cores)
        {
            let row = match rows.iter_mut().find(|r| r.0 == *cores) {
                Some(row) => row,
                None => {
                    rows.push((*cores, 0.0, 0.0, 0.0, 0.0));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.1 += ref_cycles;
            row.2 += ref_wall;
            row.3 += cycles;
            row.4 += wall;
        }
    }
    rows.sort_by_key(|r| r.0);
    rows.into_iter()
        .filter(|&(_, _, rw, _, mw)| rw > 0.0 && mw > 0.0)
        .map(|(cores, rc, rw, mc, mw)| (cores, rc / rw, mc / mw))
        .collect()
}

/// The per-PR trajectory series: `(name, config description, cores)`.
/// All run javac under the Figure 6 memory model (+20 cycles per
/// access). The 1-core series is the figure's normalization baseline and
/// goes back to PR 4; the 16-core series (added in PR 5 with the sparse
/// engine) tracks the regime the paper's headline numbers live in.
const TRAJECTORY_SERIES: &[(&str, &str, usize)] = &[
    (
        "fig6-1c",
        "javac, 1 core, +20 cycles memory latency (fig6 baseline)",
        1,
    ),
    (
        "fig6-16c",
        "javac, 16 cores, +20 cycles memory latency (fig6 sweep point)",
        16,
    ),
];

struct TrajectorySeries {
    name: String,
    config: String,
    entries: Vec<(u64, u64, f64)>,
}

/// Parse a trajectory file. Understands both the v2 multi-series layout
/// and the original v1 single-series one (whose entries become the
/// `fig6-1c` series, which is what they always measured).
fn parse_trajectory(text: &str) -> Vec<TrajectorySeries> {
    let mut series: Vec<TrajectorySeries> = Vec::new();
    for line in text.lines() {
        if let Some(name) = json_str(line, "name") {
            series.push(TrajectorySeries {
                name: name.to_string(),
                config: json_str(line, "config").unwrap_or_default().to_string(),
                entries: Vec::new(),
            });
        } else if let (Some(pr), Some(cycles), Some(wall_s)) = (
            json_num(line, "pr"),
            json_num(line, "cycles"),
            json_num(line, "wall_s"),
        ) {
            if series.is_empty() {
                // v1 file: entries precede any series header.
                series.push(TrajectorySeries {
                    name: TRAJECTORY_SERIES[0].0.to_string(),
                    config: TRAJECTORY_SERIES[0].1.to_string(),
                    entries: Vec::new(),
                });
            }
            series
                .last_mut()
                .expect("series pushed above")
                .entries
                .push((pr as u64, cycles as u64, wall_s));
        }
    }
    series
}

fn render_trajectory(series: &[TrajectorySeries]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"hwgc-bench-trajectory-v2\",\n");
    out.push_str("  \"series\": [\n");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"config\": \"{}\", \"entries\": [",
            s.name, s.config
        );
        for (i, (pr, cycles, wall_s)) in s.entries.iter().enumerate() {
            let sep = if i + 1 == s.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "      {{\"pr\": {pr}, \"cycles\": {cycles}, \"wall_s\": {wall_s:.6}}}{sep}"
            );
        }
        let sep = if si + 1 == series.len() { "" } else { "," };
        let _ = writeln!(out, "    ]}}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measure every trajectory series and append (or replace) this PR's
/// entry in each, preserving series the file has that this binary no
/// longer measures.
fn append_trajectory(path: &str, pr: u64) {
    let mut series = std::fs::read_to_string(path)
        .map(|t| parse_trajectory(&t))
        .unwrap_or_default();
    for &(name, config, cores) in TRAJECTORY_SERIES {
        let cfg = GcConfig {
            n_cores: cores,
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::default()
        };
        let (mut cycles, mut wall_s) = (0, f64::INFINITY);
        for _ in 0..REPS {
            let (out, w, _) = timed_collect(Preset::Javac, cfg);
            cycles = out.stats.total_cycles;
            wall_s = wall_s.min(w);
        }
        let slot = match series.iter_mut().find(|s| s.name == name) {
            Some(slot) => slot,
            None => {
                series.push(TrajectorySeries {
                    name: name.to_string(),
                    config: config.to_string(),
                    entries: Vec::new(),
                });
                series.last_mut().expect("just pushed")
            }
        };
        slot.entries.retain(|(p, _, _)| *p != pr);
        slot.entries.push((pr, cycles, wall_s));
        slot.entries.sort_by_key(|(p, _, _)| *p);
        println!(
            "[trajectory] {path}: {name} pr {pr}, {cycles} cycles, {:.3} ms",
            wall_s * 1e3
        );
    }
    std::fs::write(path, render_trajectory(&series))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_simulator.json".to_string());
    let check_path = flag_value("--check");
    let trace_out = flag_value("--trace-out");
    let metrics_out = flag_value("--metrics-out");
    let trajectory = flag_value("--trajectory");
    let pr = flag_value("--pr").map(|s| {
        s.parse::<u64>()
            .unwrap_or_else(|e| panic!("--pr needs a PR number: {e}"))
    });

    let (presets, core_counts): (&[Preset], &[usize]) = if smoke {
        // 16-core combos stay in the smoke matrix: the sparse engine's
        // whole point is that regime, so CI must gate it.
        (
            &[Preset::Compress, Preset::Javac, Preset::Jlisp],
            &[1, 4, 16],
        )
    } else {
        (&Preset::ALL, &[1, 4, 16])
    };
    let mode = if smoke { "smoke" } else { "full" };

    println!("bench_baseline: {mode} matrix, {REPS} reps per combo\n");
    println!(
        "{:>10}  {:>5}  {:>12}  {:>9}  {:>14}  {:>15}",
        "preset", "cores", "cycles", "wall ms", "cycles/sec", "allocs/cycle"
    );
    let mut combos = Vec::new();
    for &preset in presets {
        for &cores in core_counts {
            let r = measure_combo(preset, cores);
            println!(
                "{:>10}  {:>5}  {:>12}  {:>9.3}  {:>14.0}  {:>15.4}",
                r.preset,
                r.cores,
                r.cycles,
                r.wall_s * 1e3,
                r.cycles as f64 / r.wall_s.max(1e-9),
                r.allocs as f64 / r.cycles.max(1) as f64,
            );
            combos.push(r);
        }
    }

    let speedup_1c = measure_engine_speedup(Preset::Javac, 1);
    let speedup_16c = measure_engine_speedup(Preset::Javac, 16);
    println!("\nengine speedup vs naive loop (fig6 config, javac): 1c {speedup_1c:.2}x, 16c {speedup_16c:.2}x");

    if trace_out.is_some() || metrics_out.is_some() {
        // One extra, untimed probed run of the fig6 configuration for the
        // observability exports. Bit-exactness of probe-on vs. probe-off
        // stats is asserted (the differential the trace-smoke CI job also
        // checks on its reduced config).
        let cfg = GcConfig {
            n_cores: 1,
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::default()
        };
        let (reference, _, _) = timed_collect(Preset::Javac, cfg);
        let mut heap = spec(Preset::Javac).build();
        let (out, _trace, recording) =
            hwgc_bench::run_probed_heap(&mut heap, cfg, "javac-fig6", 64);
        assert_eq!(out.stats, reference.stats, "probe perturbed the fig6 run");
        if let Some(path) = &trace_out {
            let text = hwgc_bench::chrome_trace("javac-fig6", 1, &out, &recording);
            std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[chrome] {path}");
        }
        if let Some(path) = &metrics_out {
            let reg = hwgc_bench::metrics_for_run("javac-fig6", 1, &out, &recording);
            std::fs::write(path, reg.to_json_string())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[metrics] {path}");
        }
    }

    if let Some(path) = &trajectory {
        let pr = pr.unwrap_or_else(|| panic!("--trajectory needs --pr <N>"));
        append_trajectory(path, pr);
    }

    let report = render_report(mode, &combos, speedup_1c, speedup_16c);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("[json] {out_path}");

    if let Some(check_path) = check_path {
        let reference = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("read {check_path}: {e}"));
        let rows = per_core_intersection(&reference, &report);
        if rows.is_empty() {
            panic!("{check_path} shares no (preset, cores) combos with this run");
        }
        println!("check vs {check_path} (floor {CHECK_RATIO} per core count):");
        let mut failed = false;
        for (cores, ref_cps, mea_cps) in &rows {
            let ratio = mea_cps / ref_cps;
            println!(
                "  {cores:>2} cores: reference {ref_cps:>12.0} c/s, measured {mea_cps:>12.0} c/s \
                 — {ratio:.2}x vs committed baseline"
            );
            if ratio < CHECK_RATIO {
                eprintln!(
                    "  throughput regression at {cores} cores: ratio {ratio:.2} < {CHECK_RATIO}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
