//! Simulator throughput baseline: how many simulated cycles per wall
//! second, and how many heap allocations per simulated cycle.
//!
//! Runs the preset × core-count matrix through one verified collection
//! each (serially — concurrent combos would contend for the machine and
//! corrupt the wall-clock numbers), then writes a machine-parseable JSON
//! report. The committed `BENCH_simulator.json` at the repo root is the
//! reference; CI re-runs the reduced matrix and fails when aggregate
//! throughput regresses below [`CHECK_RATIO`] of the reference.
//!
//! ```text
//! bench_baseline [--smoke] [--out <path>] [--check <baseline.json>]
//!                [--trace-out <path>] [--metrics-out <path>]
//!                [--trajectory <path> --pr <N>]
//!                [--check-trajectory <path> --pr <N>]
//! ```
//!
//! * `--smoke` — reduced matrix (3 presets × {1, 4, 16} cores) for CI;
//!   16-core combos stay in so the check below gates the regime the
//!   sparse engine exists for,
//! * `--out` — where to write the report (default `BENCH_simulator.json`
//!   in the current directory),
//! * `--check` — compare against a previously written report: for every
//!   core count present in *both* reports, the aggregate cycles/second
//!   must be ≥ `CHECK_RATIO` × the reference (per-core-count gating, so
//!   a 16-core regression cannot hide behind fast 1-core combos), and
//!   the per-core-count wall-clock speedup vs the reference is printed;
//!   any floor violation exits 1,
//! * `--trace-out` / `--metrics-out` — after the timed matrix, run the
//!   Figure 6 configuration (javac, 1 core, +20 latency) once more with
//!   the event bus attached and export the Chrome/Perfetto trace and the
//!   metrics snapshot. The probed run is *not* timed; every measured
//!   combo keeps the zero-overhead `NullProbe` path,
//! * `--trajectory` / `--pr` — measure every trajectory series (the
//!   fig6 1-core baseline, the fig6 16-core sweep point since PR 5,
//!   and the 16-core par-engine leg since PR 7) once more and append
//!   `{pr, cycles, wall_s}` to each series in the per-PR trajectory
//!   file (the committed `BENCH_trajectory.json`). Idempotent per PR:
//!   an existing entry for the same PR number is replaced, so
//!   re-running before merge never duplicates rows. `cycles` is
//!   deterministic; the wall clock is the recording host's and is kept
//!   for order-of-magnitude context only,
//! * `--check-trajectory` / `--pr` — staleness gate for CI: every
//!   series in the committed trajectory file must already carry an
//!   entry for the current PR (the one `--trajectory` would have
//!   appended); any missing series exits 1. This is what makes
//!   "forgot to re-run `--trajectory` before merging" a red build
//!   instead of a silently flat line.
//!
//! The report also carries `engine_speedup_1c` / `engine_speedup_16c`:
//! the wall-clock ratio of the fully naive per-cycle loop (sparse engine
//! and fast-forward both off) to the default engine on the Figure 6
//! configuration (+20 cycles memory latency, javac) at 1 and 16 cores,
//! asserted bit-exact (identical `GcStats`) before the ratio is taken.
//! The 16-core number is the one the sparse active-set engine exists
//! for: at high core counts global quiescence almost never holds, so
//! the PR 2 fast-forward alone degenerates to the naive loop there.
//!
//! Since PR 7 the report also carries a `host_scaling` section: the
//! par engine (`EngineKind::Par`) on the two window-rich 16-core
//! configurations, timed at `host_threads = 1` and at auto (one worker
//! per available host core), with the sparse engine's wall clock
//! alongside as the overhead reference and bit-exactness of all three
//! asserted first. `--check` gates both legs' throughput against the
//! committed baseline with the same [`CHECK_RATIO`] floor, so a
//! regression in either the single-thread window path or the pool
//! handshake fails CI. On a single-core host the two legs coincide —
//! the committed baseline records that honestly rather than a scaling
//! number this container cannot produce.
//!
//! Since PR 8 the binary also writes two companions next to `--out`:
//! `BENCH_hostprof.json` — the `hwgc-hostprof-v1` self-profile of an
//! extra untimed compress/16c par-engine run (the timed matrix always
//! keeps the zero-overhead `NullHostProf` path) — and
//! `BENCH_ledger.jsonl` — one `hwgc-ledger-v1` provenance record per
//! profiled run, deterministic efficacy counters split from the
//! quarantined `host_*` wall-clock fields.
//!
//! Since PR 9 the ledger companion is maintained through
//! [`hwgc_obs::LedgerStore`] rather than blind append: this run's fresh
//! records are merged with whatever the file already holds (fresh
//! records win a digest conflict — the file is being *regenerated* — but
//! the drift is reported), and the result is written canonically: one
//! record per `config_hash`, sorted by hash, so the committed file
//! byte-stabilizes and diffs stay reviewable. The report also carries a
//! `cache_sweep` section: the same reduced sweep timed uncached and
//! against a warm content-addressed result cache, the wall-clock saving
//! the PR 9 observatory buys a repeat `reproduce_all`.
//!
//! Since PR 10 the probes run through the unified job layer
//! (`crates/jobs`), and the report gains a `sweep_scaling` section with
//! three measurements of that layer on the reduced default-config sweep:
//!
//! * **cross_binary** — the sweep run read-only against the shared
//!   workspace cache that `reproduce_all` (via `fig5_scaling`) populates.
//!   Because the cache key excludes the binary name, every overlapping
//!   configuration is a hit here: `reproduce_all` followed by
//!   `bench_baseline` simulates strictly fewer jobs than the two run
//!   cold. On a cold workspace the section honestly records zero hits.
//! * **workers** — the same sweep executed uncached in-process
//!   (`workers = 0`) and across 1, 2 and 4 `sweep_worker` processes,
//!   wall clocks and steal counts recorded as measured. This container
//!   has one host core, so the committed numbers show process overhead,
//!   not scaling — recorded honestly rather than simulated.
//! * **resume** — a 2-worker run of the sweep with a private journal and
//!   cache, killed mid-sweep by an injected worker abort
//!   (`HWGC_WORKER_ABORT_AFTER`); the rerun resumes from the journal ∪
//!   cache and executes only the remainder, which the section records as
//!   `killed_after_done` / `resumed_skipped` / `resumed_executed`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hwgc_bench::spec;
use hwgc_core::{EngineKind, GcConfig, GcOutcome, SimCollector};
use hwgc_heap::{verify_collection, Snapshot};
use hwgc_jobs::{
    run_jobset, CacheMode, ConfigMatrix, ExecError, ExecOptions, ExecReport, JobSet, Journal,
    ResultCache,
};
use hwgc_memsim::MemConfig;
use hwgc_obs::{LedgerStore, StoreError};
use hwgc_workloads::Preset;

/// Minimum acceptable measured/reference aggregate-throughput ratio: a
/// regression worse than 30% fails `--check`. Generous because CI runners
/// are noisy; real slowdowns from lost fast-forwarding or re-introduced
/// per-cycle allocation are integer factors, not percentages.
const CHECK_RATIO: f64 = 0.7;

/// Wall-time measurements per combo; the fastest is reported, which is
/// the standard way to suppress one-off scheduling noise.
const REPS: u32 = 3;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct ComboResult {
    preset: &'static str,
    cores: usize,
    cycles: u64,
    wall_s: f64,
    allocs: u64,
}

/// One timed, verified collection. Heap construction, snapshot capture
/// and verification stay *outside* the timed and allocation-counted
/// window — the report measures the simulator, not the test fixture.
fn timed_collect(preset: Preset, cfg: GcConfig) -> (GcOutcome, f64, u64) {
    let mut heap = spec(preset).build();
    let snap = Snapshot::capture(&heap);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let t = Instant::now();
    let out = SimCollector::new(cfg).collect(&mut heap);
    let wall_s = t.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{} failed verification: {e}", preset.name()));
    (out, wall_s, allocs)
}

fn measure_combo(preset: Preset, cores: usize) -> ComboResult {
    let cfg = GcConfig::with_cores(cores);
    let mut best: Option<ComboResult> = None;
    for _ in 0..REPS {
        let (out, wall_s, allocs) = timed_collect(preset, cfg);
        if best.as_ref().is_none_or(|b| wall_s < b.wall_s) {
            best = Some(ComboResult {
                preset: preset.name(),
                cores,
                cycles: out.stats.total_cycles,
                wall_s,
                allocs,
            });
        }
    }
    best.expect("REPS >= 1")
}

/// Wall-clock ratio of the fully naive per-cycle loop (sparse engine and
/// fast-forward both off) to the default engine on the Figure 6
/// configuration, with bit-exactness asserted first.
fn measure_engine_speedup(preset: Preset, cores: usize) -> f64 {
    let base = GcConfig {
        n_cores: cores,
        mem: MemConfig::default().with_extra_latency(20),
        sparse: true,
        ..GcConfig::default()
    };
    let naive_cfg = GcConfig {
        sparse: false,
        fast_forward: false,
        ..base
    };
    // Warm up and check bit-exactness once.
    let (fast, _, _) = timed_collect(preset, base);
    let (naive, _, _) = timed_collect(preset, naive_cfg);
    assert_eq!(
        fast.stats,
        naive.stats,
        "the default engine diverged from the naive loop on {}/{}c",
        preset.name(),
        cores
    );
    let fast_s = (0..REPS)
        .map(|_| timed_collect(preset, base).1)
        .fold(f64::INFINITY, f64::min);
    let naive_s = (0..REPS)
        .map(|_| timed_collect(preset, naive_cfg).1)
        .fold(f64::INFINITY, f64::min);
    naive_s / fast_s.max(1e-9)
}

/// The `host_scaling` configurations: the two window-rich 16-core
/// regimes under the Figure 6 memory model. javac is the paper's
/// headline workload (and, honestly, fires essentially no windows at 16
/// cores — its copy streams never all park together); compress is the
/// window-dense one where the par engine's planner actually runs.
const HOST_SCALING: &[(&str, Preset, usize)] = &[
    ("fig6-16c", Preset::Javac, 16),
    ("compress-16c", Preset::Compress, 16),
];

struct HostScalingRow {
    config: &'static str,
    workload: &'static str,
    cores: usize,
    host_threads_max: usize,
    cycles: u64,
    sparse_wall_s: f64,
    wall_s_ht1: f64,
    wall_s_htmax: f64,
}

/// Time the par engine at `host_threads = 1` and at auto (one worker per
/// available host core) against the sparse engine on each
/// [`HOST_SCALING`] configuration, asserting all three bit-exact first.
/// Reps are interleaved round-robin so slow host drift hits every leg
/// equally instead of biasing whichever ran last.
fn measure_host_scaling() -> Vec<HostScalingRow> {
    HOST_SCALING
        .iter()
        .map(|&(config, preset, cores)| {
            let sparse_cfg = GcConfig {
                n_cores: cores,
                mem: MemConfig::default().with_extra_latency(20),
                sparse: true,
                engine: Some(EngineKind::Sparse),
                ..GcConfig::default()
            };
            let ht1 = GcConfig {
                engine: Some(EngineKind::Par),
                host_threads: 1,
                ..sparse_cfg
            };
            let htmax = GcConfig {
                host_threads: 0,
                ..ht1
            };
            let (sparse_out, mut sparse_w, _) = timed_collect(preset, sparse_cfg);
            let (p1, mut w1, _) = timed_collect(preset, ht1);
            let (pm, mut wm, _) = timed_collect(preset, htmax);
            assert_eq!(
                p1.stats, sparse_out.stats,
                "par (1 host thread) diverged from sparse on {config}"
            );
            assert_eq!(
                pm.stats, sparse_out.stats,
                "par (auto host threads) diverged from sparse on {config}"
            );
            for _ in 1..REPS {
                sparse_w = sparse_w.min(timed_collect(preset, sparse_cfg).1);
                w1 = w1.min(timed_collect(preset, ht1).1);
                wm = wm.min(timed_collect(preset, htmax).1);
            }
            HostScalingRow {
                config,
                workload: preset.name(),
                cores,
                host_threads_max: std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                cycles: sparse_out.stats.total_cycles,
                sparse_wall_s: sparse_w,
                wall_s_ht1: w1,
                wall_s_htmax: wm,
            }
        })
        .collect()
}

/// The reduced sweep every job-layer probe replays: the default-config
/// `{compress, javac, jlisp} × {1, 4}` sub-matrix. Small enough to keep
/// bench_baseline quick, large enough that simulation wall clock
/// dominates cache/protocol bookkeeping — and deliberately a subset of
/// what `fig5_scaling` sweeps, so the cross-binary probe measures real
/// overlap with a `reproduce_all` run, not a synthetic one.
fn scaling_set() -> JobSet {
    ConfigMatrix::new(GcConfig::default())
        .presets([Preset::Compress, Preset::Javac, Preset::Jlisp])
        .cores([1usize, 4])
        .lower()
}

/// Run `set` through [`run_jobset`] against the given cache, with no
/// telemetry/journal and the given worker-process count. Panics on any
/// execution failure — the probes expect clean runs.
fn probe_run(set: &JobSet, cache: &ResultCache, workers: usize) -> ExecReport {
    run_jobset(
        set,
        &ExecOptions {
            binary: hwgc_bench::binary_name(),
            cache,
            progress: None,
            workers,
            journal: None,
        },
    )
    .unwrap_or_else(|e| panic!("job-layer probe failed: {e}"))
}

struct CacheSweep {
    jobs: usize,
    uncached_wall_s: f64,
    cached_wall_s: f64,
}

impl CacheSweep {
    fn speedup(&self) -> f64 {
        self.uncached_wall_s / self.cached_wall_s.max(1e-9)
    }
}

/// Time the [`scaling_set`] jobs uncached and then against a warm
/// content-addressed result cache (a private `rw` file under
/// `target/experiments/`, rebuilt each run so the warm leg replays this
/// binary's own records). Every payload hit re-verifies the recorded
/// digest before being returned, so the cached leg is an integrity pass,
/// not a free ride; hit outcomes are asserted bit-exact against the
/// uncached leg's.
fn measure_cache_sweep(set: &JobSet) -> CacheSweep {
    let off = ResultCache::open(CacheMode::Off, &[], None)
        .unwrap_or_else(|e| panic!("cache probe open: {e}"));
    let t = Instant::now();
    let uncached = probe_run(set, &off, 0);
    let uncached_wall_s = t.elapsed().as_secs_f64();

    let path = hwgc_bench::experiments_dir().join("bench_cache_probe.jsonl");
    let _ = std::fs::remove_file(&path);
    let cold = ResultCache::open(CacheMode::Rw, &[], Some(&path))
        .unwrap_or_else(|e| panic!("cache probe open: {e}"));
    probe_run(set, &cold, 0);
    assert_eq!(
        cold.counters().misses,
        set.len(),
        "the cold pass must simulate every job"
    );

    let warm = ResultCache::open(CacheMode::Rw, &[], Some(&path))
        .unwrap_or_else(|e| panic!("cache probe reopen: {e}"));
    let t = Instant::now();
    let cached = probe_run(set, &warm, 0);
    let cached_wall_s = t.elapsed().as_secs_f64();
    assert_eq!(
        warm.counters().hits,
        set.len(),
        "the warm pass must hit every job"
    );
    for (i, job) in set.jobs().iter().enumerate() {
        assert_eq!(
            cached.outcomes[i].0.stats,
            uncached.outcomes[i].0.stats,
            "cached outcome diverged on {}",
            job.label()
        );
    }

    CacheSweep {
        jobs: set.len(),
        uncached_wall_s,
        cached_wall_s,
    }
}

/// One worker-count leg of the process-scaling probe.
struct WorkersLeg {
    workers: usize,
    wall_s: f64,
    steals: u64,
    per_worker: Vec<usize>,
}

struct SweepScaling {
    jobs: usize,
    cross_hits: usize,
    cross_misses: usize,
    legs: Vec<WorkersLeg>,
    killed_after_done: usize,
    resumed_skipped: usize,
    resumed_executed: usize,
}

/// The PR 10 job-layer measurements on [`scaling_set`]; see the module
/// docs for what each sub-probe demonstrates.
fn measure_sweep_scaling(set: &JobSet) -> SweepScaling {
    // Cross-binary dedupe: read-only against the shared workspace cache
    // (plus the committed digest-only ledger). Any configuration a prior
    // binary — fig5_scaling under reproduce_all — already simulated
    // comes back as a hit without executing.
    let shared = hwgc_jobs::cache_path_from_env();
    let committed = hwgc_bench::committed_ledger_path();
    let cross_cache = ResultCache::open(CacheMode::Ro, &[&committed, &shared], None)
        .unwrap_or_else(|e| panic!("cross-binary probe open: {e}"));
    let cross = probe_run(set, &cross_cache, 0);
    let (cross_hits, cross_misses) = (cross.skipped, set.len() - cross.skipped);

    // Process-level scaling: the sweep uncached at each worker count,
    // bit-exactness across engines asserted against the in-process leg.
    let mut legs = Vec::new();
    let mut reference: Option<ExecReport> = None;
    for workers in [0usize, 1, 2, 4] {
        let off = ResultCache::open(CacheMode::Off, &[], None)
            .unwrap_or_else(|e| panic!("scaling probe open: {e}"));
        let t = Instant::now();
        let report = probe_run(set, &off, workers);
        let wall_s = t.elapsed().as_secs_f64();
        if let Some(reference) = &reference {
            for (i, job) in set.jobs().iter().enumerate() {
                assert_eq!(
                    report.outcomes[i].0.stats,
                    reference.outcomes[i].0.stats,
                    "{} diverged between in-process and {workers}-worker runs",
                    job.label()
                );
            }
        }
        legs.push(WorkersLeg {
            workers,
            wall_s,
            steals: report.steals,
            per_worker: report.per_worker.clone(),
        });
        reference.get_or_insert(report);
    }

    // Kill-and-resume: run the sweep on 2 workers with a private journal
    // and rw cache, with worker 0 told to die after 2 completed jobs.
    // The run fails; the journal then holds exactly the completed jobs.
    // The rerun resumes (journal ∪ cache) and executes only the rest.
    let journal_path = hwgc_bench::experiments_dir().join("bench_resume_journal.jsonl");
    let cache_path = hwgc_bench::experiments_dir().join("bench_resume_cache.jsonl");
    let _ = std::fs::remove_file(&journal_path);
    let _ = std::fs::remove_file(&cache_path);
    let open_rw = || {
        ResultCache::open(CacheMode::Rw, &[], Some(&cache_path))
            .unwrap_or_else(|e| panic!("resume probe cache: {e}"))
    };
    std::env::set_var("HWGC_WORKER_ABORT_AFTER", "2");
    let killed = {
        let cache = open_rw();
        let journal = Journal::open(&journal_path, "sweep_scaling_resume", set)
            .unwrap_or_else(|e| panic!("resume probe journal: {e}"));
        run_jobset(
            set,
            &ExecOptions {
                binary: hwgc_bench::binary_name(),
                cache: &cache,
                progress: None,
                workers: 2,
                journal: Some(&journal),
            },
        )
    };
    std::env::remove_var("HWGC_WORKER_ABORT_AFTER");
    assert!(
        matches!(killed, Err(ExecError::Worker { .. })),
        "the aborted leg must fail with a worker error"
    );

    let cache = open_rw();
    let journal = Journal::open(&journal_path, "sweep_scaling_resume", set)
        .unwrap_or_else(|e| panic!("resume probe journal reopen: {e}"));
    let killed_after_done = journal.resumed();
    assert!(
        killed_after_done > 0 && killed_after_done < set.len(),
        "the injected abort must leave a genuinely partial sweep \
         ({killed_after_done} of {} done)",
        set.len()
    );
    let resumed = run_jobset(
        set,
        &ExecOptions {
            binary: hwgc_bench::binary_name(),
            cache: &cache,
            progress: None,
            workers: 2,
            journal: Some(&journal),
        },
    )
    .unwrap_or_else(|e| panic!("resumed sweep failed: {e}"));
    assert_eq!(
        resumed.skipped, killed_after_done,
        "every journaled job must replay from the cache"
    );
    let reference = reference.expect("workers legs ran");
    for (i, job) in set.jobs().iter().enumerate() {
        assert_eq!(
            resumed.outcomes[i].0.stats,
            reference.outcomes[i].0.stats,
            "{} diverged after resumption",
            job.label()
        );
    }

    SweepScaling {
        jobs: set.len(),
        cross_hits,
        cross_misses,
        legs,
        killed_after_done,
        resumed_skipped: resumed.skipped,
        resumed_executed: set.len() - resumed.skipped,
    }
}

fn render_report(
    mode: &str,
    combos: &[ComboResult],
    speedup_1c: f64,
    speedup_16c: f64,
    host_scaling: &[HostScalingRow],
    cache_sweep: &CacheSweep,
    sweep_scaling: &SweepScaling,
) -> String {
    let total_cycles: u64 = combos.iter().map(|c| c.cycles).sum();
    let total_wall: f64 = combos.iter().map(|c| c.wall_s).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"hwgc-bench-baseline-v1\",\n");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    out.push_str("  \"combos\": [\n");
    for (i, c) in combos.iter().enumerate() {
        let sep = if i + 1 == combos.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"preset\": \"{}\", \"cores\": {}, \"cycles\": {}, \"wall_s\": {:.6}, \
             \"cycles_per_sec\": {:.0}, \"allocs_per_cycle\": {:.4}}}{sep}",
            c.preset,
            c.cores,
            c.cycles,
            c.wall_s,
            c.cycles as f64 / c.wall_s.max(1e-9),
            c.allocs as f64 / c.cycles.max(1) as f64,
        );
    }
    out.push_str("  ],\n");
    // `workload` deliberately instead of `preset`: parse_combos keys the
    // throughput gate on `preset`, and these rows must not join it.
    out.push_str("  \"host_scaling\": [\n");
    for (i, h) in host_scaling.iter().enumerate() {
        let sep = if i + 1 == host_scaling.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"config\": \"{}\", \"workload\": \"{}\", \"cores\": {}, \
             \"host_threads_max\": {}, \"cycles\": {}, \"sparse_wall_s\": {:.6}, \
             \"wall_s_ht1\": {:.6}, \"wall_s_htmax\": {:.6}, \
             \"pool_speedup\": {:.2}, \"par_overhead_vs_sparse\": {:.2}}}{sep}",
            h.config,
            h.workload,
            h.cores,
            h.host_threads_max,
            h.cycles,
            h.sparse_wall_s,
            h.wall_s_ht1,
            h.wall_s_htmax,
            h.wall_s_ht1 / h.wall_s_htmax.max(1e-9),
            h.wall_s_ht1 / h.sparse_wall_s.max(1e-9),
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"cache_sweep\": {{\"jobs\": {}, \"uncached_wall_s\": {:.6}, \
         \"cached_wall_s\": {:.6}, \"speedup\": {:.2}}},",
        cache_sweep.jobs,
        cache_sweep.uncached_wall_s,
        cache_sweep.cached_wall_s,
        cache_sweep.speedup(),
    );
    // No `preset`/`config` keys anywhere in this section: the --check
    // parsers key on those, and these rows must not join their gates.
    out.push_str("  \"sweep_scaling\": {\n");
    let _ = writeln!(out, "    \"jobs\": {},", sweep_scaling.jobs);
    let _ = writeln!(
        out,
        "    \"cross_binary\": {{\"hits\": {}, \"misses\": {}}},",
        sweep_scaling.cross_hits, sweep_scaling.cross_misses,
    );
    out.push_str("    \"workers\": [\n");
    for (i, leg) in sweep_scaling.legs.iter().enumerate() {
        let sep = if i + 1 == sweep_scaling.legs.len() {
            ""
        } else {
            ","
        };
        let per_worker: Vec<String> = leg.per_worker.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(
            out,
            "      {{\"workers\": {}, \"wall_s\": {:.6}, \"steals\": {}, \
             \"per_worker\": [{}]}}{sep}",
            leg.workers,
            leg.wall_s,
            leg.steals,
            per_worker.join(", "),
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"resume\": {{\"killed_after_done\": {}, \"resumed_skipped\": {}, \
         \"resumed_executed\": {}}}",
        sweep_scaling.killed_after_done,
        sweep_scaling.resumed_skipped,
        sweep_scaling.resumed_executed,
    );
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"total_cycles\": {total_cycles},");
    let _ = writeln!(out, "  \"total_wall_s\": {total_wall:.6},");
    let _ = writeln!(
        out,
        "  \"cycles_per_sec\": {:.0},",
        total_cycles as f64 / total_wall.max(1e-9)
    );
    let _ = writeln!(out, "  \"engine_speedup_1c\": {speedup_1c:.2},");
    let _ = writeln!(out, "  \"engine_speedup_16c\": {speedup_16c:.2}");
    out.push_str("}\n");
    out
}

/// Extract `"key": "value"` from one JSON line (the report is written one
/// combo per line precisely so this suffices — no JSON crate needed).
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract `"key": <number>` from one JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the combo lines of a report into (preset, cores, cycles, wall_s).
fn parse_combos(report: &str) -> Vec<(String, usize, f64, f64)> {
    report
        .lines()
        .filter_map(|line| {
            let preset = json_str(line, "preset")?;
            Some((
                preset.to_string(),
                json_num(line, "cores")? as usize,
                json_num(line, "cycles")?,
                json_num(line, "wall_s")?,
            ))
        })
        .collect()
}

/// Aggregate throughput per core count over the combos present in both
/// reports. Returns `(cores, reference c/s, measured c/s)` rows sorted by
/// core count; empty when the reports share no combos.
fn per_core_intersection(reference: &str, measured: &str) -> Vec<(usize, f64, f64)> {
    let ref_combos = parse_combos(reference);
    let mea_combos = parse_combos(measured);
    // (cores, ref cycles, ref wall, measured cycles, measured wall)
    let mut rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for (preset, cores, cycles, wall) in &mea_combos {
        if let Some((_, _, ref_cycles, ref_wall)) = ref_combos
            .iter()
            .find(|(p, n, _, _)| p == preset && n == cores)
        {
            let row = match rows.iter_mut().find(|r| r.0 == *cores) {
                Some(row) => row,
                None => {
                    rows.push((*cores, 0.0, 0.0, 0.0, 0.0));
                    rows.last_mut().expect("just pushed")
                }
            };
            row.1 += ref_cycles;
            row.2 += ref_wall;
            row.3 += cycles;
            row.4 += wall;
        }
    }
    rows.sort_by_key(|r| r.0);
    rows.into_iter()
        .filter(|&(_, _, rw, _, mw)| rw > 0.0 && mw > 0.0)
        .map(|(cores, rc, rw, mc, mw)| (cores, rc / rw, mc / mw))
        .collect()
}

/// Parse the `host_scaling` lines of a report into
/// `(config, cycles, wall_s_ht1, wall_s_htmax)` rows.
fn parse_host_scaling(report: &str) -> Vec<(String, f64, f64, f64)> {
    report
        .lines()
        .filter_map(|line| {
            Some((
                json_str(line, "config")?.to_string(),
                json_num(line, "cycles")?,
                json_num(line, "wall_s_ht1")?,
                json_num(line, "wall_s_htmax")?,
            ))
        })
        .collect()
}

/// The per-PR trajectory series: `(name, config description, cores,
/// engine pin)`. All run javac under the Figure 6 memory model (+20
/// cycles per access). The 1-core series is the figure's normalization
/// baseline and goes back to PR 4; the 16-core series (added in PR 5
/// with the sparse engine) tracks the regime the paper's headline
/// numbers live in; the par series (added in PR 7) pins the window
/// engine at one host thread so its coordinator path is comparable
/// across recording hosts. `None` runs whatever the unpinned default
/// resolves to — which is the point of the 1-core series: it records
/// engine-selection wins (e.g. PR 7's naive-at-1-core heuristic) as
/// wall-clock drops on an unchanged cycle count.
const TRAJECTORY_SERIES: &[(&str, &str, usize, Option<EngineKind>)] = &[
    (
        "fig6-1c",
        "javac, 1 core, +20 cycles memory latency (fig6 baseline)",
        1,
        None,
    ),
    (
        "fig6-16c",
        "javac, 16 cores, +20 cycles memory latency (fig6 sweep point)",
        16,
        None,
    ),
    (
        "fig6-16c-par",
        "javac, 16 cores, +20 cycles memory latency, par engine, 1 host thread",
        16,
        Some(EngineKind::Par),
    ),
];

struct TrajectorySeries {
    name: String,
    config: String,
    entries: Vec<(u64, u64, f64)>,
}

/// Parse a trajectory file. Understands both the v2 multi-series layout
/// and the original v1 single-series one (whose entries become the
/// `fig6-1c` series, which is what they always measured).
fn parse_trajectory(text: &str) -> Vec<TrajectorySeries> {
    let mut series: Vec<TrajectorySeries> = Vec::new();
    for line in text.lines() {
        if let Some(name) = json_str(line, "name") {
            series.push(TrajectorySeries {
                name: name.to_string(),
                config: json_str(line, "config").unwrap_or_default().to_string(),
                entries: Vec::new(),
            });
        } else if let (Some(pr), Some(cycles), Some(wall_s)) = (
            json_num(line, "pr"),
            json_num(line, "cycles"),
            json_num(line, "wall_s"),
        ) {
            if series.is_empty() {
                // v1 file: entries precede any series header.
                series.push(TrajectorySeries {
                    name: TRAJECTORY_SERIES[0].0.to_string(),
                    config: TRAJECTORY_SERIES[0].1.to_string(),
                    entries: Vec::new(),
                });
            }
            series
                .last_mut()
                .expect("series pushed above")
                .entries
                .push((pr as u64, cycles as u64, wall_s));
        }
    }
    series
}

fn render_trajectory(series: &[TrajectorySeries]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"hwgc-bench-trajectory-v2\",\n");
    out.push_str("  \"series\": [\n");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"config\": \"{}\", \"entries\": [",
            s.name, s.config
        );
        for (i, (pr, cycles, wall_s)) in s.entries.iter().enumerate() {
            let sep = if i + 1 == s.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "      {{\"pr\": {pr}, \"cycles\": {cycles}, \"wall_s\": {wall_s:.6}}}{sep}"
            );
        }
        let sep = if si + 1 == series.len() { "" } else { "," };
        let _ = writeln!(out, "    ]}}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measure every trajectory series and append (or replace) this PR's
/// entry in each, preserving series the file has that this binary no
/// longer measures.
fn append_trajectory(path: &str, pr: u64) {
    let mut series = std::fs::read_to_string(path)
        .map(|t| parse_trajectory(&t))
        .unwrap_or_default();
    for &(name, config, cores, engine) in TRAJECTORY_SERIES {
        let cfg = GcConfig {
            n_cores: cores,
            mem: MemConfig::default().with_extra_latency(20),
            engine: engine.or(GcConfig::default().engine),
            host_threads: if engine == Some(EngineKind::Par) {
                1
            } else {
                0
            },
            ..GcConfig::default()
        };
        let (mut cycles, mut wall_s) = (0, f64::INFINITY);
        for _ in 0..REPS {
            let (out, w, _) = timed_collect(Preset::Javac, cfg);
            cycles = out.stats.total_cycles;
            wall_s = wall_s.min(w);
        }
        let slot = match series.iter_mut().find(|s| s.name == name) {
            Some(slot) => slot,
            None => {
                series.push(TrajectorySeries {
                    name: name.to_string(),
                    config: config.to_string(),
                    entries: Vec::new(),
                });
                series.last_mut().expect("just pushed")
            }
        };
        slot.entries.retain(|(p, _, _)| *p != pr);
        slot.entries.push((pr, cycles, wall_s));
        slot.entries.sort_by_key(|(p, _, _)| *p);
        println!(
            "[trajectory] {path}: {name} pr {pr}, {cycles} cycles, {:.3} ms",
            wall_s * 1e3
        );
    }
    std::fs::write(path, render_trajectory(&series))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Staleness gate for `--check-trajectory`: every series this binary
/// measures must already carry an entry for the current PR, i.e. someone
/// ran `--trajectory <path> --pr <N>` and committed the result. Exits 1
/// listing the stale series otherwise. Series the file carries beyond
/// [`TRAJECTORY_SERIES`] are historical and not gated.
fn check_trajectory(path: &str, pr: u64) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let series = parse_trajectory(&text);
    let mut stale = Vec::new();
    for &(name, _, _, _) in TRAJECTORY_SERIES {
        match series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| s.entries.iter().find(|(p, _, _)| *p == pr))
        {
            Some((_, cycles, _)) => {
                println!("[trajectory-check] {name}: pr {pr} present ({cycles} cycles)");
            }
            None => stale.push(name),
        }
    }
    if !stale.is_empty() {
        eprintln!(
            "{path} is stale for PR {pr}: series {} carry no entry — run \
             `bench_baseline --trajectory {path} --pr {pr}` and commit the result",
            stale.join(", ")
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_simulator.json".to_string());
    let check_path = flag_value("--check");
    let trace_out = flag_value("--trace-out");
    let metrics_out = flag_value("--metrics-out");
    let trajectory = flag_value("--trajectory");
    let trajectory_check = flag_value("--check-trajectory");
    let pr = flag_value("--pr").map(|s| {
        s.parse::<u64>()
            .unwrap_or_else(|e| panic!("--pr needs a PR number: {e}"))
    });

    if let Some(path) = &trajectory_check {
        // Pure gate, checked before the (slow) matrix for fast feedback.
        let pr = pr.unwrap_or_else(|| panic!("--check-trajectory needs --pr <N>"));
        check_trajectory(path, pr);
    }

    let presets: &[Preset] = if smoke {
        // 16-core combos stay in the smoke matrix: the sparse engine's
        // whole point is that regime, so CI must gate it.
        &[Preset::Compress, Preset::Javac, Preset::Jlisp]
    } else {
        &Preset::ALL
    };
    // The timed matrix is declared like every other sweep but runs
    // serially and uncached on purpose: concurrent combos would contend
    // for the machine and a cache replay has no wall clock to measure.
    let timed_set = ConfigMatrix::new(GcConfig::default())
        .presets(presets.iter().copied())
        .cores([1usize, 4, 16])
        .lower();
    let mode = if smoke { "smoke" } else { "full" };

    println!("bench_baseline: {mode} matrix, {REPS} reps per combo\n");
    println!(
        "{:>10}  {:>5}  {:>12}  {:>9}  {:>14}  {:>15}",
        "preset", "cores", "cycles", "wall ms", "cycles/sec", "allocs/cycle"
    );
    let mut combos = Vec::new();
    for job in timed_set.jobs() {
        let r = measure_combo(job.spec.preset, job.cfg.n_cores);
        println!(
            "{:>10}  {:>5}  {:>12}  {:>9.3}  {:>14.0}  {:>15.4}",
            r.preset,
            r.cores,
            r.cycles,
            r.wall_s * 1e3,
            r.cycles as f64 / r.wall_s.max(1e-9),
            r.allocs as f64 / r.cycles.max(1) as f64,
        );
        combos.push(r);
    }

    let speedup_1c = measure_engine_speedup(Preset::Javac, 1);
    let speedup_16c = measure_engine_speedup(Preset::Javac, 16);
    println!("\nengine speedup vs naive loop (fig6 config, javac): 1c {speedup_1c:.2}x, 16c {speedup_16c:.2}x");

    let host_scaling = measure_host_scaling();
    println!("\npar engine host-thread scaling (bit-exact vs sparse asserted):");
    for h in &host_scaling {
        println!(
            "  {:>12}: sparse {:>8.3} ms, par@1 {:>8.3} ms, par@auto({}) {:>8.3} ms \
             — pool speedup {:.2}x, 1-thread overhead {:.2}x",
            h.config,
            h.sparse_wall_s * 1e3,
            h.wall_s_ht1 * 1e3,
            h.host_threads_max,
            h.wall_s_htmax * 1e3,
            h.wall_s_ht1 / h.wall_s_htmax.max(1e-9),
            h.wall_s_ht1 / h.sparse_wall_s.max(1e-9),
        );
    }

    let probe_set = scaling_set();
    let cache_sweep = measure_cache_sweep(&probe_set);
    println!(
        "\ncache effect ({} jobs, reduced sweep): uncached {:.3} ms, warm cache {:.3} ms \
         — {:.1}x",
        cache_sweep.jobs,
        cache_sweep.uncached_wall_s * 1e3,
        cache_sweep.cached_wall_s * 1e3,
        cache_sweep.speedup(),
    );

    let sweep_scaling = measure_sweep_scaling(&probe_set);
    println!(
        "\nsweep job layer ({} jobs): cross-binary dedupe {} hit / {} miss vs the \
         shared workspace cache",
        sweep_scaling.jobs, sweep_scaling.cross_hits, sweep_scaling.cross_misses,
    );
    for leg in &sweep_scaling.legs {
        println!(
            "  workers {:>1}: {:>8.3} ms, {} steal(s){}",
            leg.workers,
            leg.wall_s * 1e3,
            leg.steals,
            if leg.workers == 0 {
                " (in-process reference)"
            } else {
                ""
            },
        );
    }
    println!(
        "  kill-resume: aborted at {} of {} done; rerun skipped {} and executed {}",
        sweep_scaling.killed_after_done,
        sweep_scaling.jobs,
        sweep_scaling.resumed_skipped,
        sweep_scaling.resumed_executed,
    );

    if trace_out.is_some() || metrics_out.is_some() {
        // One extra, untimed probed run of the fig6 configuration for the
        // observability exports. Bit-exactness of probe-on vs. probe-off
        // stats is asserted (the differential the trace-smoke CI job also
        // checks on its reduced config).
        let cfg = GcConfig {
            n_cores: 1,
            mem: MemConfig::default().with_extra_latency(20),
            ..GcConfig::default()
        };
        let (reference, _, _) = timed_collect(Preset::Javac, cfg);
        let mut heap = spec(Preset::Javac).build();
        let (out, _trace, recording) =
            hwgc_bench::run_probed_heap(&mut heap, cfg, "javac-fig6", 64);
        assert_eq!(out.stats, reference.stats, "probe perturbed the fig6 run");
        if let Some(path) = &trace_out {
            let text = hwgc_bench::chrome_trace("javac-fig6", 1, &out, &recording);
            std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[chrome] {path}");
        }
        if let Some(path) = &metrics_out {
            let reg = hwgc_bench::metrics_for_run("javac-fig6", 1, &out, &recording);
            std::fs::write(path, reg.to_json_string())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("[metrics] {path}");
        }
    }

    if let Some(path) = &trajectory {
        let pr = pr.unwrap_or_else(|| panic!("--trajectory needs --pr <N>"));
        append_trajectory(path, pr);
    }

    let report = render_report(
        mode,
        &combos,
        speedup_1c,
        speedup_16c,
        &host_scaling,
        &cache_sweep,
        &sweep_scaling,
    );
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("[json] {out_path}");

    // Host-profile and run-ledger companions next to the report: one
    // extra untimed run per host_scaling config with the HostProfiler
    // attached (never the timed matrix — profiling the profiler would
    // poison the throughput numbers). The hostprof dump records the
    // window-rich compress/16c run. The ledger is maintained through the
    // store, not blind append: this run's fresh records are merged with
    // the file's existing ones (fresh wins a digest conflict, with the
    // drift reported — the file is being regenerated) and the result is
    // written canonically, one hash-sorted record per config.
    let out_dir = std::path::Path::new(&out_path)
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default();
    let hostprof_path = out_dir.join("BENCH_hostprof.json");
    let ledger_path = out_dir.join("BENCH_ledger.jsonl");
    let mut store = LedgerStore::new();
    for &(config, preset, cores) in HOST_SCALING {
        let cfg = GcConfig {
            n_cores: cores,
            mem: MemConfig::default().with_extra_latency(20),
            sparse: true,
            engine: Some(EngineKind::Par),
            host_threads: 1,
            ..GcConfig::default()
        };
        let (run, prof) = hwgc_bench::run_hostprof(&spec(preset), cfg);
        store
            .insert(hwgc_bench::ledger_record(
                "bench_baseline",
                config,
                &cfg,
                &run.stats,
                None,
                Some(&prof),
            ))
            .unwrap_or_else(|e| panic!("fresh ledger records conflict: {e}"));
        if preset == Preset::Compress {
            std::fs::write(&hostprof_path, prof.to_json_string())
                .unwrap_or_else(|e| panic!("write {}: {e}", hostprof_path.display()));
            println!("[hostprof] {}", hostprof_path.display());
        }
    }
    match LedgerStore::load_tolerant(&ledger_path) {
        Ok((old, load_report)) => {
            for line in &load_report.quarantined {
                eprintln!("[ledger] quarantined: {line}");
            }
            for rec in old.records() {
                if let Err(StoreError::Conflict {
                    config_hash,
                    field,
                    have,
                    incoming,
                }) = store.insert(rec.clone())
                {
                    println!(
                        "[ledger] {config_hash:016x} {field} drifted: {incoming} -> {have} \
                         (fresh run wins)"
                    );
                }
            }
        }
        Err(e) => eprintln!(
            "[ledger] existing {} not merged: {e}",
            ledger_path.display()
        ),
    }
    store
        .write_canonical(&ledger_path)
        .unwrap_or_else(|e| panic!("write {}: {e}", ledger_path.display()));
    println!(
        "[ledger] {} ({} records, canonical)",
        ledger_path.display(),
        store.len()
    );

    if let Some(check_path) = check_path {
        let reference = std::fs::read_to_string(&check_path)
            .unwrap_or_else(|e| panic!("read {check_path}: {e}"));
        let rows = per_core_intersection(&reference, &report);
        if rows.is_empty() {
            panic!("{check_path} shares no (preset, cores) combos with this run");
        }
        println!("check vs {check_path} (floor {CHECK_RATIO} per core count):");
        let mut failed = false;
        for (cores, ref_cps, mea_cps) in &rows {
            let ratio = mea_cps / ref_cps;
            println!(
                "  {cores:>2} cores: reference {ref_cps:>12.0} c/s, measured {mea_cps:>12.0} c/s \
                 — {ratio:.2}x vs committed baseline"
            );
            if ratio < CHECK_RATIO {
                eprintln!(
                    "  throughput regression at {cores} cores: ratio {ratio:.2} < {CHECK_RATIO}"
                );
                failed = true;
            }
        }
        // The same floor on both par-engine legs of every host_scaling
        // config the reference also carries, in cycles/second so a host
        // faster or slower overall still compares honestly per leg.
        let ref_hs = parse_host_scaling(&reference);
        for (config, cycles, w1, wmax) in parse_host_scaling(&report) {
            let Some((_, rc, rw1, rwmax)) = ref_hs.iter().find(|(c, _, _, _)| *c == config) else {
                continue;
            };
            for (leg, mea, reference) in [
                ("ht1", cycles / w1.max(1e-9), rc / rw1.max(1e-9)),
                ("htmax", cycles / wmax.max(1e-9), rc / rwmax.max(1e-9)),
            ] {
                let ratio = mea / reference;
                println!(
                    "  {config} par {leg}: reference {reference:>12.0} c/s, measured \
                     {mea:>12.0} c/s — {ratio:.2}x vs committed baseline"
                );
                if ratio < CHECK_RATIO {
                    eprintln!(
                        "  par engine regression on {config} ({leg}): ratio {ratio:.2} < {CHECK_RATIO}"
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
