//! Per-run bottleneck report: one probed collection analyzed end to end —
//! blame attribution of every stall cycle, critical-path extraction, and
//! what-if resource-relaxation predictions — rendered as markdown (for
//! humans) and JSON (`hwgc-report-v1`, for tooling and CI).
//!
//! ```text
//! gc_report [preset] [--cores N] [--scale F] [--extra-latency N]
//!           [--fifo N] [--out-dir DIR] [--hostprof-out FILE]
//!           [--ledger FILE] [--check]
//! ```
//!
//! Defaults: `cup`, 8 cores, scale 1.0, no extra latency, the default
//! FIFO, artifacts under `target/experiments/` as
//! `report_<preset>.{md,json}` plus a host-profile dump
//! (`hwgc-hostprof-v1`) as `report_<preset>_hostprof.json`.
//!
//! The report's **host performance** section comes from a second run of
//! the same heap under the par-window engine with the [`HostProfiler`]
//! attached: its deterministic window-funnel counters
//! (`win.attempted`/`win.veto.*`/`win.fired`) explain *why* a workload
//! fires (or never fires) copy windows — e.g. javac/16c fires zero
//! because retirement-order bounds veto every candidate instant.
//!
//! `--ledger FILE` (or `HWGC_LEDGER`) appends one `hwgc-ledger-v1` JSONL
//! record per simulation (the probed default-engine run and the profiled
//! par run) with config hash, stats digest and efficacy counters.
//!
//! `--check` (what the CI `report-smoke` job runs) additionally asserts:
//!
//! 1. **probe parity** — a probe-off run of the identical heap produces
//!    identical `GcStats` (observation must not perturb the simulation);
//! 2. **conservative completeness** — every blame row (and its per-core
//!    slices) sums exactly to the engine's corresponding stall counter:
//!    every stall cycle attributed once, none invented;
//! 3. the critical path partitions the run's wall-clock cycles exactly;
//! 4. **hostprof parity** — a hostprof-off par run produces identical
//!    `GcStats` to the profiled par run (self-observation must not
//!    perturb the simulation either), and the emitted hostprof JSON
//!    passes schema validation.

use hwgc_bench::{
    append_ledger_to, assert_blame_reconciles, experiments_dir, ledger_path, ledger_record,
    report_for_run, run_hostprof_heap, run_probed_heap, run_verified_heap,
};
use hwgc_core::{EngineKind, GcConfig};
use hwgc_memsim::MemConfig;
use hwgc_obs::{
    render_report_json, render_report_markdown, validate_hostprof_json, HostSection, LedgerStore,
};
use hwgc_workloads::{Preset, WorkloadSpec};

fn main() {
    let mut preset = Preset::Cup;
    let mut cores = 8usize;
    let mut scale = 1.0f64;
    let mut extra_latency = 0u32;
    let mut fifo: Option<usize> = None;
    let mut out_dir: Option<String> = None;
    let mut hostprof_out: Option<String> = None;
    let mut ledger: Option<String> = None;
    let mut check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--cores" => {
                cores = value(i).parse().expect("--cores must be a number");
                i += 2;
            }
            "--scale" => {
                scale = value(i).parse().expect("--scale must be a number");
                i += 2;
            }
            "--extra-latency" => {
                extra_latency = value(i).parse().expect("--extra-latency must be a number");
                i += 2;
            }
            "--fifo" => {
                fifo = Some(value(i).parse().expect("--fifo must be a number"));
                i += 2;
            }
            "--out-dir" => {
                out_dir = Some(value(i));
                i += 2;
            }
            "--hostprof-out" => {
                hostprof_out = Some(value(i));
                i += 2;
            }
            "--ledger" => {
                ledger = Some(value(i));
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            name => {
                preset = Preset::by_name(name).unwrap_or_else(|| panic!("unknown preset {name}"));
                i += 1;
            }
        }
    }

    let spec = WorkloadSpec {
        preset,
        seed: 42,
        scale,
    };
    let mem = MemConfig {
        header_fifo_capacity: fifo.unwrap_or(MemConfig::default().header_fifo_capacity),
        ..MemConfig::default().with_extra_latency(extra_latency)
    };
    let cfg = GcConfig {
        n_cores: cores,
        mem,
        ..GcConfig::default()
    };
    let label = preset.to_string();
    println!(
        "gc_report: {label} (scale {scale}), {cores} cores, +{extra_latency} latency, \
         FIFO {}\n",
        mem.header_fifo_capacity
    );

    let mut heap = spec.build();
    let (out, _trace, recording) = run_probed_heap(&mut heap, cfg, &label, 64);
    let report = report_for_run(&label, cores, &out, &recording, mem.bandwidth);

    // Second run of the same heap under the par-window engine with the
    // host profiler attached: the report's host section (window funnel,
    // veto taxonomy, park/wake statistics) describes *this* run.
    let par_cfg = GcConfig {
        engine: Some(EngineKind::Par),
        ..cfg
    };
    let mut par_heap = spec.build();
    let (par_out, prof) = run_hostprof_heap(&mut par_heap, par_cfg, &label);
    let hostprof_json = prof.to_json_string();
    let report = report.with_host(HostSection::from_profiler(&prof));

    if check {
        let mut reference_heap = spec.build();
        let reference = run_verified_heap(&mut reference_heap, cfg, &label);
        assert_eq!(
            out.stats, reference.stats,
            "probe-on GcStats diverged from probe-off"
        );
        assert_eq!(out.free, reference.free, "probe-on free diverged");
        println!("[check] probe-on GcStats identical to probe-off");
        assert_blame_reconciles(&report, &out.stats);
        println!(
            "[check] blame matrix reconciles: every stall cycle of all {} classes attributed",
            hwgc_core::StallReason::COUNT
        );
        let mut plain_heap = spec.build();
        let plain = run_verified_heap(&mut plain_heap, par_cfg, &label);
        assert_eq!(
            par_out.stats, plain.stats,
            "hostprof-on GcStats diverged from hostprof-off"
        );
        assert_eq!(par_out.free, plain.free, "hostprof-on free diverged");
        println!("[check] hostprof-on GcStats identical to hostprof-off");
        validate_hostprof_json(&hostprof_json)
            .unwrap_or_else(|e| panic!("hostprof JSON failed validation: {e}"));
        println!(
            "[check] hostprof JSON validates against {}",
            hwgc_obs::HOSTPROF_SCHEMA
        );
    }

    let dir = out_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(experiments_dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    let write = |tag: &str, name: String, text: &str| {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("[{tag}] {}", path.display());
    };

    let md = render_report_markdown(&report);
    print!("{md}");
    write("markdown", format!("report_{label}.md"), &md);
    write(
        "json",
        format!("report_{label}.json"),
        &render_report_json(&report),
    );
    match hostprof_out {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            std::fs::write(&path, &hostprof_json)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("[hostprof] {}", path.display());
        }
        None => write(
            "hostprof",
            format!("report_{label}_hostprof.json"),
            &hostprof_json,
        ),
    }

    // Run ledger: one JSONL record per simulation performed above. The
    // probed default-engine run carries no profiler (its efficacy
    // counters live in the report); the par run carries the full set.
    // Before appending, cross-check the rendered stats against whatever
    // record the ledger already holds for each config hash: a digest
    // mismatch means this binary and a previous run disagree about the
    // same configuration — fatal under `--check`.
    if let Some(path) = ledger.map(std::path::PathBuf::from).or_else(ledger_path) {
        let rec_probe = ledger_record("gc_report", &label, &cfg, &out.stats, None, None);
        let rec_par = ledger_record(
            "gc_report",
            &label,
            &par_cfg,
            &par_out.stats,
            None,
            Some(&prof),
        );
        let store = match LedgerStore::load_tolerant(&path) {
            Ok((store, _report)) => store,
            Err(e) if check => panic!("ledger {} failed to load: {e}", path.display()),
            Err(e) => {
                eprintln!("warning: ledger {} not cross-checked: {e}", path.display());
                LedgerStore::new()
            }
        };
        let mut checked = 0usize;
        for rec in [&rec_probe, &rec_par] {
            let hash = rec.config_hash();
            if let Some(prev) = store.get(hash) {
                if prev.stats_digest != rec.stats_digest {
                    let msg = format!(
                        "ledger cross-check failed for config {hash:016x} ({label}): \
                         ledger has digest {:016x}, this run produced {:016x}",
                        prev.stats_digest, rec.stats_digest
                    );
                    if check {
                        panic!("{msg}");
                    }
                    eprintln!("warning: {msg}");
                } else {
                    checked += 1;
                }
            }
        }
        if checked > 0 {
            println!(
                "[ledger] {checked} record(s) cross-checked against {}",
                path.display()
            );
            if check {
                println!("[check] rendered stats match the ledger's recorded digests");
            }
        }
        append_ledger_to(&rec_probe, &path);
        append_ledger_to(&rec_par, &path);
        println!("[ledger] {} (+2 records)", path.display());
    }
}
