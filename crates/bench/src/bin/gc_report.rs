//! Per-run bottleneck report: one probed collection analyzed end to end —
//! blame attribution of every stall cycle, critical-path extraction, and
//! what-if resource-relaxation predictions — rendered as markdown (for
//! humans) and JSON (`hwgc-report-v1`, for tooling and CI).
//!
//! ```text
//! gc_report [preset] [--cores N] [--scale F] [--extra-latency N]
//!           [--fifo N] [--out-dir DIR] [--check]
//! ```
//!
//! Defaults: `cup`, 8 cores, scale 1.0, no extra latency, the default
//! FIFO, artifacts under `target/experiments/` as
//! `report_<preset>.{md,json}`.
//!
//! `--check` (what the CI `report-smoke` job runs) additionally asserts:
//!
//! 1. **probe parity** — a probe-off run of the identical heap produces
//!    identical `GcStats` (observation must not perturb the simulation);
//! 2. **conservative completeness** — every blame row (and its per-core
//!    slices) sums exactly to the engine's corresponding stall counter:
//!    every stall cycle attributed once, none invented;
//! 3. the critical path partitions the run's wall-clock cycles exactly.

use hwgc_bench::{
    assert_blame_reconciles, experiments_dir, report_for_run, run_probed_heap, run_verified_heap,
};
use hwgc_core::GcConfig;
use hwgc_memsim::MemConfig;
use hwgc_obs::{render_report_json, render_report_markdown};
use hwgc_workloads::{Preset, WorkloadSpec};

fn main() {
    let mut preset = Preset::Cup;
    let mut cores = 8usize;
    let mut scale = 1.0f64;
    let mut extra_latency = 0u32;
    let mut fifo: Option<usize> = None;
    let mut out_dir: Option<String> = None;
    let mut check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--cores" => {
                cores = value(i).parse().expect("--cores must be a number");
                i += 2;
            }
            "--scale" => {
                scale = value(i).parse().expect("--scale must be a number");
                i += 2;
            }
            "--extra-latency" => {
                extra_latency = value(i).parse().expect("--extra-latency must be a number");
                i += 2;
            }
            "--fifo" => {
                fifo = Some(value(i).parse().expect("--fifo must be a number"));
                i += 2;
            }
            "--out-dir" => {
                out_dir = Some(value(i));
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            name => {
                preset = Preset::by_name(name).unwrap_or_else(|| panic!("unknown preset {name}"));
                i += 1;
            }
        }
    }

    let spec = WorkloadSpec {
        preset,
        seed: 42,
        scale,
    };
    let mem = MemConfig {
        header_fifo_capacity: fifo.unwrap_or(MemConfig::default().header_fifo_capacity),
        ..MemConfig::default().with_extra_latency(extra_latency)
    };
    let cfg = GcConfig {
        n_cores: cores,
        mem,
        ..GcConfig::default()
    };
    let label = preset.to_string();
    println!(
        "gc_report: {label} (scale {scale}), {cores} cores, +{extra_latency} latency, \
         FIFO {}\n",
        mem.header_fifo_capacity
    );

    let mut heap = spec.build();
    let (out, _trace, recording) = run_probed_heap(&mut heap, cfg, &label, 64);
    let report = report_for_run(&label, cores, &out, &recording, mem.bandwidth);

    if check {
        let mut reference_heap = spec.build();
        let reference = run_verified_heap(&mut reference_heap, cfg, &label);
        assert_eq!(
            out.stats, reference.stats,
            "probe-on GcStats diverged from probe-off"
        );
        assert_eq!(out.free, reference.free, "probe-on free diverged");
        println!("[check] probe-on GcStats identical to probe-off");
        assert_blame_reconciles(&report, &out.stats);
        println!(
            "[check] blame matrix reconciles: every stall cycle of all {} classes attributed",
            hwgc_core::StallReason::COUNT
        );
    }

    let dir = out_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(experiments_dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    let write = |tag: &str, name: String, text: &str| {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("[{tag}] {}", path.display());
    };

    let md = render_report_markdown(&report);
    print!("{md}");
    write("markdown", format!("report_{label}.md"), &md);
    write(
        "json",
        format!("report_{label}.json"),
        &render_report_json(&report),
    );
}
