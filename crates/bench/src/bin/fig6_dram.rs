//! Figure 6 variant under *realistic* memory timing: the bank/row DRAM
//! backend (default 100 ns open-page preset) instead of the paper's flat
//! "+20 cycles per access" proxy.
//!
//! The question this answers for EXPERIMENTS.md: does the paper's
//! counter-intuitive Figure 6 finding — higher memory latency *improves*
//! scalability — survive when the extra latency comes from row
//! activations and bank conflicts rather than a uniform constant?
//!
//! Besides the CSV, the run writes a metrics-registry snapshot
//! (`--metrics-out`, default `target/experiments/fig6_dram.metrics.json`)
//! holding the `fig6dram.<app>.c<N>.{cycles,speedup,row_hit_rate}`
//! gauges — the input `gen_stall_tables` uses to regenerate (and
//! `--check`) EXPERIMENTS.md's realistic-timing table.

use hwgc_bench::{experiments_dir, row, run_verified, spec, sweep_finish, write_csv, CORE_COUNTS};
use hwgc_core::GcConfig;
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig};
use hwgc_workloads::Preset;

fn main() {
    println!("Figure 6 (realistic timing): scaling under the bank/row DRAM backend\n");
    let widths = [10, 12, 8, 8, 8, 8, 8, 9];
    let header: Vec<String> = [
        "app",
        "1-core cyc",
        "x1",
        "x2",
        "x4",
        "x8",
        "x16",
        "row-hit",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", row(&header, &widths));

    let backend = MemBackendKind::Dram(DramConfig::default());
    let mut csv = Vec::new();
    let mut metrics = hwgc_obs::MetricsRegistry::new();
    for preset in Preset::ALL {
        let s = spec(preset);
        let mut cycles = Vec::new();
        let mut hit_rate_16c = 0.0;
        for &n in &CORE_COUNTS {
            let cfg = GcConfig {
                n_cores: n,
                mem: MemConfig::default().with_backend(backend),
                ..GcConfig::default()
            };
            let out = run_verified(&s, cfg);
            let dram = out
                .stats
                .mem
                .dram
                .as_ref()
                .expect("DRAM backend reports DramStats");
            let hit_rate = dram.row_hit_rate();
            hit_rate_16c = hit_rate;
            cycles.push(out.stats.total_cycles);
            metrics.gauge_set(
                &format!("fig6dram.{}.c{n}.cycles", preset.name()),
                out.stats.total_cycles as f64,
            );
            metrics.gauge_set(
                &format!("fig6dram.{}.c{n}.row_hit_rate", preset.name()),
                hit_rate,
            );
        }
        let base = cycles[0] as f64;
        let mut cells = vec![preset.name().to_string(), cycles[0].to_string()];
        for (&c, &n) in cycles.iter().zip(&CORE_COUNTS) {
            let speedup = base / c as f64;
            cells.push(format!("{speedup:.2}"));
            csv.push(format!("{},{},{},{:.4}", preset.name(), n, c, speedup));
            metrics.gauge_set(&format!("fig6dram.{}.c{n}.speedup", preset.name()), speedup);
        }
        cells.push(format!("{:.0}%", hit_rate_16c * 100.0));
        println!("{}", row(&cells, &widths));
    }
    write_csv("fig6_dram", "app,cores,cycles,speedup", &csv);

    let metrics_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--metrics-out")
        .map(|w| std::path::PathBuf::from(&w[1]))
        .unwrap_or_else(|| experiments_dir().join("fig6_dram.metrics.json"));
    std::fs::write(&metrics_path, metrics.to_json_string())
        .unwrap_or_else(|e| panic!("write {}: {e}", metrics_path.display()));
    println!("[metrics] {}", metrics_path.display());
    sweep_finish();
}
