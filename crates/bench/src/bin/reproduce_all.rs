//! One-shot reproduction driver: runs every deterministic experiment in
//! DESIGN.md's index back to back. Useful as a release smoke test and to
//! refresh all CSVs under `target/experiments/` after a model change.
//!
//! The experiments write disjoint CSVs, so they run concurrently on the
//! `HWGC_JOBS` worker pool (set `HWGC_JOBS=1` for the old serial
//! behavior); each child's output is captured and printed in experiment
//! order, so the log reads identically at any job count.
//!
//! `--trace-out <path>` / `--metrics-out <path>` are forwarded to the
//! `trace_dump` child (as `HWGC_TRACE_OUT` / `HWGC_METRICS_OUT`), so one
//! driver invocation can also produce the Perfetto trace and the metrics
//! snapshot of the traced run. `--ledger <path>` is forwarded to every
//! child as `HWGC_LEDGER`, so the ledger-aware experiments (`gc_report`
//! today) append their `hwgc-ledger-v1` records to one batch-wide JSONL
//! file (appends are single `O_APPEND` writes, safe under `HWGC_JOBS`
//! concurrency). After the batch, `gen_stall_tables
//! --check` verifies that EXPERIMENTS.md's generated tables (Table I,
//! Table II) still match the metrics JSON `table1_empty_worklist` and
//! `table2_stall_breakdown` just wrote.
//!
//! Observability (PR 9): every child consults the content-addressed
//! result cache per the inherited `HWGC_CACHE` knobs, and all children
//! append to one `hwgc-sweep-telemetry-v1` stream (`--telemetry <path>`,
//! default `target/experiments/sweep-telemetry.jsonl`; single-line
//! `O_APPEND` writes, safe under concurrency). After the batch the
//! driver validates the stream and prints the fleet hit-rate line — on a
//! warm `HWGC_CACHE=rw` cache a repeat run skips ≥90% of simulations.
//!
//! (`ablation_software` is excluded — it measures real threads and its
//! wall-clock columns are host-dependent; run it separately, and prefer
//! `HWGC_JOBS=1` when quoting its numbers.)

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .clone()
        })
    };
    let trace_out = flag_value("--trace-out");
    let metrics_out = flag_value("--metrics-out");
    let ledger = flag_value("--ledger");
    let telemetry = flag_value("--telemetry")
        .map(std::path::PathBuf::from)
        .or_else(hwgc_bench::telemetry_path)
        .unwrap_or_else(|| hwgc_bench::experiments_dir().join("sweep-telemetry.jsonl"));
    // Fresh stream per batch: children append concurrently.
    let _ = std::fs::remove_file(&telemetry);

    let binaries = [
        "fig5_scaling",
        "table1_empty_worklist",
        "table2_stall_breakdown",
        "fig6_latency",
        "fig6_dram",
        "ablation_fifo",
        "ablation_testlock",
        "ablation_heapsize",
        "ablation_granularity",
        "ablation_linesplit",
        "ablation_headercache",
        "ext_concurrent",
        "trace_dump",
        "gc_report",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target dir").to_path_buf();
    let start = std::time::Instant::now();
    // Children inherit the caller's HWGC_CACHE when set; when unset, pin
    // the sweep default (`rw` on the shared cache path) explicitly so the
    // whole batch dedupes against later binaries sweeping the same
    // configurations (`bench_baseline` measures exactly that overlap).
    let cache_mode = std::env::var("HWGC_CACHE").unwrap_or_else(|_| "rw".to_string());
    let outputs = hwgc_jobs::par_map(&binaries, |_, bin| {
        let mut cmd = Command::new(dir.join(bin));
        cmd.env("HWGC_TELEMETRY", &telemetry);
        cmd.env("HWGC_CACHE", &cache_mode);
        if let Some(p) = &ledger {
            cmd.env("HWGC_LEDGER", p);
        }
        if *bin == "trace_dump" {
            if let Some(p) = &trace_out {
                cmd.env("HWGC_TRACE_OUT", p);
            }
            if let Some(p) = &metrics_out {
                cmd.env("HWGC_METRICS_OUT", p);
            }
        }
        cmd.output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"))
    });
    let mut failures = 0;
    for (i, (bin, out)) in binaries.iter().zip(&outputs).enumerate() {
        println!(
            "\n=== [{} / {}] {bin} {}",
            i + 1,
            binaries.len(),
            "=".repeat(40)
        );
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        if !out.status.success() {
            eprintln!("*** {bin} failed: {}", out.status);
            failures += 1;
        }
    }
    assert!(failures == 0, "{failures} experiment(s) failed");

    // table1_empty_worklist and table2_stall_breakdown refreshed their
    // metrics JSON above; make sure the committed EXPERIMENTS.md tables
    // still match. Runs serially after the batch because it reads what
    // the batch wrote.
    println!("\n=== gen_stall_tables --check {}", "=".repeat(40));
    let check = Command::new(dir.join("gen_stall_tables"))
        .arg("--check")
        .output()
        .expect("failed to launch gen_stall_tables");
    print!("{}", String::from_utf8_lossy(&check.stdout));
    eprint!("{}", String::from_utf8_lossy(&check.stderr));
    assert!(
        check.status.success(),
        "EXPERIMENTS.md stall table is stale"
    );

    // Fleet telemetry: validate the shared stream and print the
    // batch-wide cache effectiveness line.
    match std::fs::read_to_string(&telemetry) {
        Ok(text) => match hwgc_obs::validate_telemetry_jsonl(&text) {
            Ok(totals) => {
                println!(
                    "\n[telemetry] {} — {} jobs: {} hit / {} miss / {} verified / {} checked \
                     ({:.1}% of simulations skipped via cache)",
                    telemetry.display(),
                    totals.done,
                    totals.hits,
                    totals.misses,
                    totals.verified,
                    totals.digest_checks,
                    100.0 * totals.hit_rate(),
                );
            }
            Err(e) => panic!("telemetry stream {} is invalid: {e}", telemetry.display()),
        },
        Err(e) => eprintln!("[telemetry] no stream at {}: {e}", telemetry.display()),
    }

    println!(
        "\nall {} experiments reproduced in {:.1} s ({} jobs); CSVs under target/experiments/",
        binaries.len(),
        start.elapsed().as_secs_f64(),
        hwgc_jobs::jobs(),
    );
}
