//! One-shot reproduction driver: runs every deterministic experiment in
//! DESIGN.md's index back to back. Useful as a release smoke test and to
//! refresh all CSVs under `target/experiments/` after a model change.
//!
//! (`ablation_software` is excluded — it measures real threads and its
//! wall-clock columns are host-dependent; run it separately.)

use std::process::Command;

fn main() {
    let binaries = [
        "fig5_scaling",
        "table1_empty_worklist",
        "table2_stall_breakdown",
        "fig6_latency",
        "ablation_fifo",
        "ablation_testlock",
        "ablation_heapsize",
        "ablation_granularity",
        "ablation_linesplit",
        "ablation_headercache",
        "ext_concurrent",
        "trace_dump",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target dir");
    let start = std::time::Instant::now();
    for (i, bin) in binaries.iter().enumerate() {
        println!(
            "\n=== [{} / {}] {bin} {}",
            i + 1,
            binaries.len(),
            "=".repeat(40)
        );
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!(
        "\nall {} experiments reproduced in {:.1} s; CSVs under target/experiments/",
        binaries.len(),
        start.elapsed().as_secs_f64()
    );
}
