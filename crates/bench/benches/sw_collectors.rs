//! Criterion benchmarks of the real-thread software collectors (ablation
//! B's timing source): wall-clock per collection, per collector, at 1 and
//! 2 threads (bump the counts on a many-core host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwgc_swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};
use hwgc_workloads::{Preset, WorkloadSpec};
use std::time::Duration;

fn collectors(c: &mut Criterion) {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= host.max(2))
        .collect();
    let spec = WorkloadSpec::new(Preset::Javacc, 42);
    let mut group = c.benchmark_group("sw_collect_javacc");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let list: Vec<(&str, Box<dyn SwCollector>)> = vec![
        ("fine-grained", Box::new(FineGrained::new())),
        ("work-stealing", Box::new(WorkStealing::new())),
        ("chunked", Box::new(Chunked::new())),
        ("work-packets", Box::new(Packets::new())),
    ];
    for (name, collector) in &list {
        for &t in &thread_counts {
            group.bench_with_input(BenchmarkId::new(*name, t), &t, |b, &t| {
                b.iter_batched(
                    || spec.build(),
                    |mut heap| collector.collect(&mut heap, t),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, collectors);
criterion_main!(benches);
