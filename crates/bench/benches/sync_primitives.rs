//! Criterion microbenchmarks of the synchronization primitives: the
//! software costs the paper's coprocessor eliminates (uncontended lock
//! acquisition, header CAS), plus the hardware-model SB operations (which
//! are plain function calls — the simulator's claim of "zero cycles" is a
//! *model* property, but these numbers show the host-side cost).

use criterion::{criterion_group, criterion_main, Criterion};
use hwgc_sync::sw::TicketLock;
use hwgc_sync::SyncBlock;
use std::hint::black_box;
use std::time::Duration;

fn software_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sw_sync");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("ticket_lock_uncontended", |b| {
        let lock = TicketLock::new();
        b.iter(|| {
            drop(black_box(lock.lock()));
        });
    });
    group.bench_function("header_cas_uncontended", |b| {
        let word = std::sync::atomic::AtomicU32::new(0);
        b.iter(|| {
            let _ = black_box(word.compare_exchange(
                0,
                1,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            ));
            word.store(0, std::sync::atomic::Ordering::Relaxed);
        });
    });
    group.finish();
}

fn sb_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("sb_model");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("scan_lock_roundtrip", |b| {
        let mut sb = SyncBlock::new(16);
        b.iter(|| {
            assert!(sb.try_acquire_scan(3));
            sb.release_scan(3);
        });
    });
    group.bench_function("header_lock_roundtrip", |b| {
        let mut sb = SyncBlock::new(16);
        b.iter(|| {
            assert!(sb.try_lock_header(3, black_box(0xABC)));
            sb.unlock_header(3);
        });
    });
    group.finish();
}

criterion_group!(benches, software_primitives, sb_model);
criterion_main!(benches);
