//! Criterion microbenchmarks of the cycle-level simulator itself: how fast
//! the host can simulate a collection cycle per preset and core count.
//! (Simulated-cycle results live in the `fig5_*`/`table*` binaries; this
//! file measures the *simulator's* throughput, which gates how large an
//! experiment is practical.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwgc_core::{GcConfig, SimCollector};
use hwgc_workloads::{Preset, WorkloadSpec};
use std::time::Duration;

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_collection");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for preset in [Preset::Jlisp, Preset::Javacc, Preset::Db] {
        for cores in [1usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(preset.name(), cores),
                &cores,
                |b, &cores| {
                    let spec = WorkloadSpec::new(preset, 42);
                    b.iter_batched(
                        || spec.build(),
                        |mut heap| {
                            SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap)
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn seq_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_cheney");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for preset in [Preset::Jlisp, Preset::Db] {
        group.bench_function(preset.name(), |b| {
            let spec = WorkloadSpec::new(preset, 42);
            b.iter_batched(
                || spec.build(),
                |mut heap| hwgc_core::SeqCheney::new().collect(&mut heap),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, sim_throughput, seq_reference);
criterion_main!(benches);
