//! Golden-file tests for the host profiler's *deterministic* efficacy
//! counters on the two reference regimes of the par-window engine:
//!
//! * **compress/16c, +20 latency** — the window-rich configuration (the
//!   one `par_smoke`'s traced leg fingerprints): the funnel fires, the
//!   window-length and copy-words histograms fill, and the park/wake
//!   counters show the copy streams the windows are carved from;
//! * **javac/16c, +0 latency** — the zero-window configuration: the
//!   committed golden *is* the quantitative answer to "why does javac
//!   fire no windows at 16 cores" — every attempt shows up under a
//!   `win.veto.*` reason instead of `win.fired`.
//!
//! Only [`hwgc_obs::HostProfiler::deterministic_json`] is goldened —
//! counters and histograms, never timers, notes or spans. If a
//! wall-clock-dependent value ever leaks into that subset, these tests
//! go flaky on the spot, which is exactly the alarm they exist to raise
//! (alongside the cross-run stability check in the core crate's
//! `hostprof_differential` suite).
//!
//! To regenerate after an intentional counter change:
//! `HWGC_UPDATE_GOLDENS=1 cargo test -p hwgc-bench --test hostprof_golden`.

use std::path::PathBuf;

use hwgc_bench::run_hostprof;
use hwgc_core::{EngineKind, GcConfig};
use hwgc_memsim::MemConfig;
use hwgc_obs::{validate_hostprof_json, Json};
use hwgc_workloads::{Preset, WorkloadSpec};

fn par_config(extra: u32) -> GcConfig {
    GcConfig {
        n_cores: 16,
        mem: MemConfig::default().with_extra_latency(extra),
        sparse: true,
        engine: Some(EngineKind::Par),
        // One host thread and threshold 1 so the dispatch/inline split is
        // machine-independent and every fired window reaches the pool.
        host_threads: 1,
        par_copy_threshold: 1,
        ..GcConfig::default()
    }
}

/// Render the deterministic subset one key per line so golden diffs read
/// like a counter changelog, not a JSON blob.
fn render(det: &Json) -> String {
    let mut out = String::new();
    for section in ["counters", "histograms"] {
        out.push_str(section);
        out.push('\n');
        if let Some(Json::Obj(pairs)) = det.get(section) {
            for (k, v) in pairs {
                out.push_str(&format!("  {k} {}\n", v.to_string_compact()));
            }
        }
    }
    out
}

fn golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    if std::env::var_os("HWGC_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; regenerate with HWGC_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with HWGC_UPDATE_GOLDENS=1"
    );
}

#[test]
fn window_rich_compress_counters_match_golden() {
    let spec = WorkloadSpec::new(Preset::Compress, 42);
    let (_, prof) = run_hostprof(&spec, par_config(20));
    assert!(
        prof.counter("win.fired") > 0,
        "compress/16c +20 must fire windows — the golden would be vacuous"
    );
    validate_hostprof_json(&prof.to_json_string()).expect("hostprof JSON validates");
    golden(
        "hostprof_golden_compress16.txt",
        &render(&prof.deterministic_json()),
    );
}

#[test]
fn zero_window_javac_counters_match_golden() {
    let spec = WorkloadSpec::new(Preset::Javac, 42);
    let (_, prof) = run_hostprof(&spec, par_config(0));
    assert_eq!(
        prof.counter("win.fired"),
        0,
        "javac/16c +0 is the zero-window reference regime"
    );
    assert!(
        prof.counter_prefix_sum("win.veto.") > 0 || prof.counter("win.attempted") == 0,
        "zero fired windows must be explained by veto counters (or zero attempts)"
    );
    golden(
        "hostprof_golden_javac16.txt",
        &render(&prof.deterministic_json()),
    );
}
