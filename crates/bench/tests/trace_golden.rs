//! Golden-file tests for the `trace_dump` export formats: one probed run
//! of a tiny, fully deterministic graph, rendered as summary text, signal
//! CSV, Chrome/Perfetto JSON, folded stalls and the metrics snapshot —
//! each compared byte-for-byte against a committed golden.
//!
//! To regenerate after an intentional format or simulator change:
//! `HWGC_UPDATE_GOLDENS=1 cargo test -p hwgc-bench --test trace_golden`.

use std::path::PathBuf;

use hwgc_bench::{
    chrome_trace, metrics_for_run, render_trace_summary, run_probed_heap, stall_folded, trace_csv,
};
use hwgc_core::{GcConfig, GcOutcome, SignalTrace};
use hwgc_heap::{GraphBuilder, Heap};
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig};
use hwgc_obs::{validate_chrome_trace, Recording};

const CORES: usize = 2;

/// A small diamond-with-tails graph: enough shape for both cores to claim
/// work, small enough that the goldens stay reviewable.
fn tiny_heap() -> Heap {
    let mut heap = Heap::new(2_000);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(3, 1).unwrap();
    let left = b.add(2, 2).unwrap();
    let right = b.add(2, 3).unwrap();
    let leaf_a = b.add(0, 4).unwrap();
    let mid = b.add(1, 2).unwrap();
    let leaf_b = b.add(0, 6).unwrap();
    let dead = b.add(1, 5).unwrap();
    b.link(root, 0, left);
    b.link(root, 1, right);
    b.link(root, 2, leaf_a);
    b.link(left, 0, leaf_a);
    b.link(left, 1, mid);
    b.link(right, 0, mid);
    b.link(right, 1, leaf_b);
    b.link(mid, 0, leaf_b);
    b.link(dead, 0, root);
    b.root(root);
    heap
}

fn run() -> (GcOutcome, SignalTrace, Recording) {
    let mut heap = tiny_heap();
    run_probed_heap(&mut heap, GcConfig::with_cores(CORES), "golden", 1)
}

/// Same tiny graph under the bank/row DRAM backend (default open-page
/// preset), exercising the `mem.dram.*` metrics and the Chrome
/// row-outcome counter tracks.
fn run_dram() -> (GcOutcome, SignalTrace, Recording) {
    let mut heap = tiny_heap();
    let cfg = GcConfig {
        mem: MemConfig::default().with_backend(MemBackendKind::Dram(DramConfig::default())),
        ..GcConfig::with_cores(CORES)
    };
    run_probed_heap(&mut heap, cfg, "golden-dram", 1)
}

fn golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    if std::env::var_os("HWGC_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; regenerate with HWGC_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the change is intentional, \
         regenerate with HWGC_UPDATE_GOLDENS=1"
    );
}

#[test]
fn summary_format_matches_golden() {
    let (out, trace, recording) = run();
    let reg = metrics_for_run("golden", CORES, &out, &recording);
    golden(
        "trace_golden.summary.txt",
        &render_trace_summary("golden", CORES, &out, &trace, &reg),
    );
}

#[test]
fn csv_format_matches_golden() {
    let (_, trace, _) = run();
    golden("trace_golden.csv", &trace_csv(&trace));
}

#[test]
fn chrome_format_matches_golden() {
    let (out, _, recording) = run();
    let text = chrome_trace("golden", CORES, &out, &recording);
    // The golden must stay a *valid* trace, not just a stable one.
    let summary = validate_chrome_trace(&text, CORES).expect("golden chrome trace validates");
    assert!(summary.core_tracks >= CORES);
    golden("trace_golden.chrome.json", &text);
}

#[test]
fn folded_stalls_match_golden() {
    let (out, _, _) = run();
    golden(
        "trace_golden.folded",
        &stall_folded(&out.stats).to_folded_string(),
    );
}

#[test]
fn metrics_snapshot_matches_golden() {
    let (out, _, recording) = run();
    let reg = metrics_for_run("golden", CORES, &out, &recording);
    golden("trace_golden.metrics.json", &reg.to_json_string());
}

#[test]
fn dram_metrics_snapshot_matches_golden() {
    let (out, _, recording) = run_dram();
    let reg = metrics_for_run("golden-dram", CORES, &out, &recording);
    let json = reg.to_json_string();
    // The snapshot must actually carry the new backend metrics, not just
    // be byte-stable without them.
    for key in [
        "mem.dram.row_hit",
        "mem.dram.bank",
        "mem.dram.bank_queue_depth",
    ] {
        assert!(json.contains(key), "metrics snapshot lost {key}");
    }
    golden("trace_golden_dram.metrics.json", &json);
}

#[test]
fn dram_chrome_trace_matches_golden() {
    let (out, _, recording) = run_dram();
    let text = chrome_trace("golden-dram", CORES, &out, &recording);
    let summary = validate_chrome_trace(&text, CORES).expect("dram chrome trace validates");
    assert!(summary.core_tracks >= CORES);
    assert!(
        text.contains("dram.row_"),
        "chrome trace lost the row-outcome counter tracks"
    );
    golden("trace_golden_dram.chrome.json", &text);
}

/// The fixed backend must not grow the new bank/row series: its exports
/// are pinned byte-for-byte by the goldens above, and the `DramAccess`
/// event is emitted by the DRAM backend only. (The pre-existing
/// `dram.queue_depth` track is the shared memory queue, not bank/row.)
#[test]
fn fixed_backend_exports_stay_free_of_dram_series() {
    let (out, _, recording) = run();
    assert!(!metrics_for_run("golden", CORES, &out, &recording)
        .to_json_string()
        .contains("mem.dram."));
    assert!(!chrome_trace("golden", CORES, &out, &recording).contains("dram.row_"));
}
