//! Conservative-completeness of the blame attribution on *real* runs:
//! for every stall class, the cycles the analyzer attributes (and their
//! per-core slices) must equal the engine's own `GcStats` counters
//! exactly — every stall cycle attributed once, none invented — and the
//! critical path must partition the run's wall-clock cycles.
//!
//! This is the integration-level counterpart of the unit tests in
//! `hwgc_obs::attr`: those check the attribution rules on synthetic
//! event streams; this one checks the reconciliation on full probed
//! collections across contention regimes (lock-heavy, memory-heavy,
//! FIFO-overflow, starved).

use hwgc_bench::{assert_blame_reconciles, report_for_run, run_probed_heap};
use hwgc_core::GcConfig;
use hwgc_memsim::MemConfig;
use hwgc_workloads::{Preset, WorkloadSpec};

/// Reduced-scale spec: the reconciliation property is per-cycle exact,
/// so small heaps prove it as well as full-size ones — and keep the
/// debug-profile test run fast.
fn spec(preset: Preset) -> WorkloadSpec {
    WorkloadSpec {
        preset,
        seed: 42,
        scale: 0.2,
    }
}

fn reconcile(label: &str, spec: &WorkloadSpec, cfg: GcConfig) {
    let mut heap = spec.build();
    let (out, _trace, recording) = run_probed_heap(&mut heap, cfg, label, 16);
    let report = report_for_run(label, cfg.n_cores, &out, &recording, cfg.mem.bandwidth);
    assert_blame_reconciles(&report, &out.stats);
    assert!(
        report.path.total == out.stats.total_cycles,
        "{label}: critical path covers {} of {} cycles",
        report.path.total,
        out.stats.total_cycles
    );
}

#[test]
fn blame_reconciles_on_default_runs() {
    for preset in [Preset::Cup, Preset::Db, Preset::Search] {
        for cores in [1, 4] {
            reconcile(
                &format!("{preset}/{cores}c"),
                &spec(preset),
                GcConfig::with_cores(cores),
            );
        }
    }
}

#[test]
fn blame_reconciles_under_extra_latency() {
    // The Figure-6 regime: memory stalls dominate.
    let cfg = GcConfig {
        n_cores: 4,
        mem: MemConfig::default().with_extra_latency(20),
        ..GcConfig::default()
    };
    reconcile("javac/+20", &spec(Preset::Javac), cfg);
}

#[test]
fn blame_reconciles_with_fifo_overflow() {
    // A tiny header FIFO forces the overflow path (cup's Table II
    // pathology): `fifo.overflow` blame must still reconcile with the
    // header-store counter it is carved out of.
    let cfg = GcConfig {
        n_cores: 8,
        mem: MemConfig {
            header_fifo_capacity: 16,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    reconcile("cup/fifo16", &spec(Preset::Cup), cfg);
}

#[test]
fn blame_reconciles_with_multiport_sb() {
    // The what-if ablation config itself must also attribute cleanly.
    let cfg = GcConfig {
        n_cores: 8,
        multiport_sb: true,
        ..GcConfig::default()
    };
    reconcile("jlisp/multiport", &spec(Preset::Jlisp), cfg);
}
