//! The window-handshake primitive of the parallel engine (DESIGN §10).
//!
//! [`WindowGate`] is a scatter/gather epoch gate: one coordinator
//! publishes a job per epoch, a fixed set of persistent workers each
//! execute it once, and the coordinator blocks until every worker has
//! reported back. It is the *only* inter-thread synchronization the
//! parallel engine uses — the simulation state itself is never shared
//! (the planner runs on the coordinator; workers receive disjoint copy
//! ranges), so keeping this primitive small keeps the concurrency
//! auditable: the CI ThreadSanitizer leg and the unit tests below
//! exercise exactly this file.
//!
//! Memory ordering is inherited from the `Mutex`: the coordinator's
//! writes before [`WindowGate::dispatch`] happen-before each worker's
//! [`WindowGate::next_job`] return (job publication), and a worker's
//! writes before [`WindowGate::finish_one`] happen-before
//! [`WindowGate::await_done`] returning (result publication). Workers
//! never block each other: each waits only on the epoch counter.

use std::sync::{Condvar, Mutex};

struct GateState<T> {
    /// Monotonic job counter; bumped by every dispatch.
    epoch: u64,
    /// The current epoch's job; workers clone it out.
    job: Option<T>,
    /// Workers that have not yet finished the current epoch.
    pending: usize,
    /// One-way latch ending every worker loop.
    shutdown: bool,
}

/// Scatter/gather epoch gate (see the module docs).
pub struct WindowGate<T> {
    state: Mutex<GateState<T>>,
    /// Signalled on dispatch and shutdown (workers wait here).
    work: Condvar,
    /// Signalled when the last worker finishes (coordinator waits here).
    done: Condvar,
}

impl<T: Clone> WindowGate<T> {
    /// A gate with no job published.
    pub fn new() -> WindowGate<T> {
        WindowGate {
            state: Mutex::new(GateState {
                epoch: 0,
                job: None,
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    /// Publish `job` to `workers` workers and open a new epoch. Must not
    /// be called while an epoch is outstanding (single coordinator,
    /// [`WindowGate::await_done`] between dispatches).
    pub fn dispatch(&self, workers: usize, job: T) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.pending, 0, "dispatch with an epoch outstanding");
        s.epoch += 1;
        s.job = Some(job);
        s.pending = workers;
        drop(s);
        self.work.notify_all();
    }

    /// Block until every worker of the current epoch has called
    /// [`WindowGate::finish_one`]. Returns immediately if none are
    /// outstanding.
    pub fn await_done(&self) {
        let mut s = self.state.lock().unwrap();
        while s.pending > 0 {
            s = self.done.wait(s).unwrap();
        }
    }

    /// Worker side: block for the next epoch after `*last_epoch`, record
    /// it, and return its job — or `None` once the gate is shut down.
    pub fn next_job(&self, last_epoch: &mut u64) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                return None;
            }
            if s.epoch > *last_epoch {
                *last_epoch = s.epoch;
                return Some(s.job.as_ref().expect("epoch without a job").clone());
            }
            s = self.work.wait(s).unwrap();
        }
    }

    /// Worker side: report the current epoch's job complete.
    pub fn finish_one(&self) {
        let mut s = self.state.lock().unwrap();
        debug_assert!(s.pending > 0, "finish without a dispatch");
        s.pending -= 1;
        if s.pending == 0 {
            drop(s);
            self.done.notify_one();
        }
    }

    /// End every worker loop ([`WindowGate::next_job`] returns `None`).
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }
}

impl<T: Clone> Default for WindowGate<T> {
    fn default() -> WindowGate<T> {
        WindowGate::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn scatter_gather_runs_every_worker_every_epoch() {
        let gate: Arc<WindowGate<u64>> = Arc::new(WindowGate::new());
        let sum = Arc::new(AtomicU64::new(0));
        const WORKERS: usize = 3;
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let sum = Arc::clone(&sum);
                std::thread::spawn(move || {
                    let mut epoch = 0;
                    while let Some(job) = gate.next_job(&mut epoch) {
                        sum.fetch_add(job, Ordering::Relaxed);
                        gate.finish_one();
                    }
                })
            })
            .collect();

        let mut expect = 0;
        for job in [5u64, 11, 2, 40] {
            gate.dispatch(WORKERS, job);
            gate.await_done();
            expect += job * WORKERS as u64;
            // The gather is a barrier: after await_done every worker's
            // contribution for this epoch is visible.
            assert_eq!(sum.load(Ordering::Relaxed), expect);
        }
        gate.shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn await_done_without_dispatch_returns_immediately() {
        let gate: WindowGate<()> = WindowGate::new();
        gate.await_done();
        gate.shutdown();
        let mut epoch = 0;
        assert_eq!(gate.next_job(&mut epoch), None);
    }

    #[test]
    fn late_worker_still_sees_the_epoch() {
        // A worker that starts waiting after dispatch must still pick the
        // job up (the epoch counter, not the notification, carries it).
        let gate: Arc<WindowGate<u32>> = Arc::new(WindowGate::new());
        gate.dispatch(1, 7);
        let g = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let mut epoch = 0;
            let job = g.next_job(&mut epoch);
            g.finish_one();
            job
        });
        gate.await_done();
        gate.shutdown();
        assert_eq!(h.join().unwrap(), Some(7));
    }
}
