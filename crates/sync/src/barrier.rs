//! Barrier synchronization via "synchronizing" micro-instructions.
//!
//! Any micro-instruction can be marked as synchronizing; a core executing
//! one is stalled by the SB until *all* cores have reached a synchronizing
//! micro-instruction (paper Section V-C). The engine uses this to keep
//! cores out of the scan loop until core 1 has initialised `scan`/`free`,
//! and to hold the main processor stopped until all store buffers have
//! drained at the end of a cycle.

/// A reusable all-core barrier.
#[derive(Debug, Clone)]
pub struct Barrier {
    n_cores: usize,
    arrived: Vec<bool>,
    /// Generation counter; bumps every time the barrier opens.
    generation: u64,
}

impl Barrier {
    /// Barrier across `n_cores` cores.
    pub fn new(n_cores: usize) -> Barrier {
        assert!(n_cores > 0);
        Barrier {
            n_cores,
            arrived: vec![false; n_cores],
            generation: 0,
        }
    }

    /// `core` executes a synchronizing micro-instruction this cycle.
    /// Returns `true` when the barrier opens (all cores have arrived);
    /// the core may then proceed *this* cycle. Returns `false` while the
    /// core must keep stalling. A core that already arrived keeps calling
    /// this every stalled cycle; that is idempotent.
    pub fn arrive(&mut self, core: usize) -> bool {
        self.arrived[core] = true;
        if self.arrived.iter().all(|&a| a) {
            // Last arrival opens the barrier for everyone; reset for reuse.
            self.arrived.iter_mut().for_each(|a| *a = false);
            self.generation += 1;
            true
        } else {
            false
        }
    }

    /// Has the barrier opened since the observer last saw generation `gen`?
    /// Cores that arrived early use this to notice the opening: they record
    /// the generation when they start waiting and proceed once it bumps.
    pub fn opened_since(&self, gen: u64) -> bool {
        self.generation > gen
    }

    /// Current generation (bumps each time the barrier opens).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of cores participating.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_barrier_opens_immediately() {
        let mut b = Barrier::new(1);
        assert!(b.arrive(0));
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn barrier_waits_for_all() {
        let mut b = Barrier::new(3);
        assert!(!b.arrive(0));
        assert!(!b.arrive(1));
        assert!(b.arrive(2));
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn early_arrivals_observe_opening_via_generation() {
        let mut b = Barrier::new(2);
        let gen = b.generation();
        assert!(!b.arrive(0));
        assert!(!b.opened_since(gen));
        assert!(b.arrive(1));
        assert!(b.opened_since(gen));
    }

    #[test]
    fn barrier_is_reusable() {
        let mut b = Barrier::new(2);
        assert!(!b.arrive(0));
        assert!(b.arrive(1));
        // second round
        assert!(!b.arrive(1));
        assert!(b.arrive(0));
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn repeated_arrival_is_idempotent() {
        let mut b = Barrier::new(2);
        assert!(!b.arrive(0));
        assert!(!b.arrive(0));
        assert!(!b.arrive(0));
        assert!(b.arrive(1));
    }
}
