//! Software synchronization primitives for the real-thread collectors.
//!
//! These are what the paper argues is too expensive at object granularity
//! on stock shared-memory hardware: every acquisition is an atomic
//! read-modify-write on a shared cache line. The primitives count their
//! operations and contention so the experiment harness can report the
//! software synchronization cost next to the hardware model's zero-cost
//! acquisitions (ablation B in DESIGN.md).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A FIFO ticket spinlock with contention accounting.
///
/// Chosen over a test-and-set lock because it is fair (the hardware SB's
/// static prioritization is at least starvation-free in practice thanks to
/// the round-robin structure of the scan loop) and over `parking_lot` for
/// the short critical sections of the collector, where parking would
/// dominate the cost being measured.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicU32,
    serving: AtomicU32,
    /// Total acquisitions.
    acquisitions: AtomicU64,
    /// Total spin iterations while waiting (contention proxy).
    spins: AtomicU64,
}

impl TicketLock {
    /// New unlocked lock.
    pub const fn new() -> TicketLock {
        TicketLock {
            next: AtomicU32::new(0),
            serving: AtomicU32::new(0),
            acquisitions: AtomicU64::new(0),
            spins: AtomicU64::new(0),
        }
    }

    /// Acquire, spinning until the caller's ticket is served.
    pub fn lock(&self) -> TicketGuard<'_> {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u64;
        while self.serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            if spins.is_multiple_of(64) {
                // Under oversubscription the holder may be descheduled.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if spins > 0 {
            self.spins.fetch_add(spins, Ordering::Relaxed);
        }
        TicketGuard { lock: self }
    }

    /// (acquisitions, spin iterations) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.acquisitions.load(Ordering::Relaxed),
            self.spins.load(Ordering::Relaxed),
        )
    }
}

/// RAII guard for [`TicketLock`].
pub struct TicketGuard<'a> {
    lock: &'a TicketLock,
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        self.lock.serving.fetch_add(1, Ordering::Release);
    }
}

/// A sense-reversing spin barrier for the software collectors' phases.
#[derive(Debug)]
pub struct SpinBarrier {
    n: u32,
    count: AtomicU32,
    generation: AtomicU32,
}

impl SpinBarrier {
    /// Barrier across `n` threads.
    pub fn new(n: usize) -> SpinBarrier {
        assert!(n > 0);
        SpinBarrier {
            n: n as u32,
            count: AtomicU32::new(0),
            generation: AtomicU32::new(0),
        }
    }

    /// Block (spin) until all `n` threads have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
        }
    }
}

/// Tally of the atomic operations a software collector performed, for
/// comparison against the hardware model where the equivalent operations
/// are free. One instance per thread; summed afterwards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwSyncOps {
    /// CAS attempts on object headers (mark/lock bits).
    pub header_cas: u64,
    /// Failed header CAS attempts (lost races / contention).
    pub header_cas_failed: u64,
    /// Atomic fetch-adds on shared allocation or scan pointers.
    pub shared_fetch_add: u64,
    /// Lock acquisitions (scan/free/pool locks).
    pub lock_acquisitions: u64,
    /// Spin iterations across all waits.
    pub spin_iterations: u64,
}

impl SwSyncOps {
    /// Total heavy synchronization operations (everything but spins).
    pub fn total_ops(&self) -> u64 {
        self.header_cas + self.shared_fetch_add + self.lock_acquisitions
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &SwSyncOps) {
        self.header_cas += other.header_cas;
        self.header_cas_failed += other.header_cas_failed;
        self.shared_fetch_add += other.shared_fetch_add;
        self.lock_acquisitions += other.lock_acquisitions;
        self.spin_iterations += other.spin_iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticket_lock_mutual_exclusion() {
        let lock = TicketLock::new();
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        let _g = lock.lock();
                        // Non-atomic-looking RMW under the lock: any race
                        // would lose increments.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
        assert_eq!(lock.stats().0, 40_000);
    }

    #[test]
    fn ticket_lock_is_fifo_under_sequential_use() {
        let lock = TicketLock::new();
        drop(lock.lock());
        drop(lock.lock());
        let (acq, spins) = lock.stats();
        assert_eq!(acq, 2);
        assert_eq!(spins, 0, "uncontended acquisitions must not spin");
    }

    #[test]
    fn spin_barrier_synchronizes_phases() {
        let barrier = SpinBarrier::new(4);
        let phase1 = AtomicU64::new(0);
        let phase2_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    phase1.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    // Everyone must observe all phase-1 increments.
                    if phase1.load(Ordering::SeqCst) == 4 {
                        phase2_seen.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait(); // reusable
                });
            }
        });
        assert_eq!(phase2_seen.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sync_ops_merge() {
        let mut a = SwSyncOps {
            header_cas: 1,
            shared_fetch_add: 2,
            ..Default::default()
        };
        let b = SwSyncOps {
            header_cas: 10,
            header_cas_failed: 3,
            lock_acquisitions: 5,
            spin_iterations: 7,
            shared_fetch_add: 0,
        };
        a.merge(&b);
        assert_eq!(a.header_cas, 11);
        assert_eq!(a.total_ops(), 18);
    }
}
