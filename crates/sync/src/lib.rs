//! Synchronization block (SB) model of the multi-core GC coprocessor
//! (paper Section V-C), plus software synchronization primitives used by
//! the real-thread collectors in `hwgc-swgc`.
//!
//! The hardware SB provides:
//!
//! * the `scan` and `free` registers, readable by all cores, each guarded
//!   by a lock with **zero-cycle uncontended acquisition** and static
//!   priority arbitration (lowest core index wins),
//! * one **header-lock register** per core: acquiring a header lock
//!   compares the requested address against all other cores' registers in
//!   parallel; a match stalls the requester,
//! * the `ScanState` register of per-core busy bits, readable atomically
//!   together with the `scan`/`free` comparison (termination detection),
//! * barrier synchronization via "synchronizing" micro-instructions.
//!
//! The model is used by the single-threaded cycle simulator: the engine
//! ticks cores in index order each cycle, so a core may acquire a currently
//! free lock *within its own tick* (zero-cost), and a lock released by core
//! *i* can be re-acquired by core *j > i* in the same cycle — exactly the
//! paper's "a lock can be released by one core and reacquired by another
//! core in the same cycle". Static prioritization falls out of the tick
//! order.

pub mod barrier;
pub mod gate;
pub mod sb;
pub mod sw;

pub use barrier::Barrier;
pub use gate::WindowGate;
pub use sb::{event_fingerprint, LockKind, SbEvent, SbEventRecord, SyncBlock, SyncStats};
