//! The synchronization block: scan/free registers and locks, per-core
//! header-lock registers, and the `ScanState` busy-bit register.

/// Which SB lock a statistic or operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    Scan,
    Free,
    Header,
}

/// One SB operation, as recorded by the opt-in event log (see
/// [`SyncBlock::enable_event_log`]). Events carry the acting core and, for
/// register writes, the observed old and new values — enough for an
/// offline checker to replay the SB's state and flag any behaviour that
/// would violate the collector's three invariants (exactly-once claim,
/// exactly-once evacuation, exclusive tospace areas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbEvent {
    /// `init_pointers`: both registers initialised (start of a cycle).
    Init {
        scan: u32,
        free: u32,
    },
    AcquireScan {
        core: usize,
    },
    FailScan {
        core: usize,
    },
    ReleaseScan {
        core: usize,
    },
    SetScan {
        core: usize,
        from: u32,
        to: u32,
    },
    AcquireFree {
        core: usize,
    },
    FailFree {
        core: usize,
    },
    ReleaseFree {
        core: usize,
    },
    SetFree {
        core: usize,
        from: u32,
        to: u32,
    },
    LockHeader {
        core: usize,
        addr: u32,
    },
    FailHeader {
        core: usize,
        addr: u32,
    },
    UnlockHeader {
        core: usize,
        addr: u32,
    },
    SetBusy {
        core: usize,
    },
    ClearBusy {
        core: usize,
    },
    /// A core observed `scan == free` with every other busy bit clear and
    /// declared the collection finished (the atomic termination test).
    Termination {
        core: usize,
    },
}

/// An [`SbEvent`] stamped with the SB clock cycle it occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEventRecord {
    /// SB cycle number ([`SyncBlock::begin_cycle`] count, adjusted by the
    /// engine so it matches the engine's cycle numbering).
    pub cycle: u64,
    pub event: SbEvent,
}

/// FNV-1a fingerprint of an SB event stream. Two runs of the engine are
/// SB-equivalent iff their fingerprints match: every event's kind, every
/// operand (core, address, register values) and every cycle stamp feeds
/// the hash, in stream order. The parallel-engine parity harness compares
/// this across engines and host-thread counts instead of shipping whole
/// event logs around.
pub fn event_fingerprint(events: &[SbEventRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for rec in events {
        eat(rec.cycle);
        // (tag, a, b, c) canonical encoding of the event.
        let (tag, a, b, c) = match rec.event {
            SbEvent::Init { scan, free } => (0u64, u64::from(scan), u64::from(free), 0),
            SbEvent::AcquireScan { core } => (1, core as u64, 0, 0),
            SbEvent::FailScan { core } => (2, core as u64, 0, 0),
            SbEvent::ReleaseScan { core } => (3, core as u64, 0, 0),
            SbEvent::SetScan { core, from, to } => (4, core as u64, u64::from(from), u64::from(to)),
            SbEvent::AcquireFree { core } => (5, core as u64, 0, 0),
            SbEvent::FailFree { core } => (6, core as u64, 0, 0),
            SbEvent::ReleaseFree { core } => (7, core as u64, 0, 0),
            SbEvent::SetFree { core, from, to } => (8, core as u64, u64::from(from), u64::from(to)),
            SbEvent::LockHeader { core, addr } => (9, core as u64, u64::from(addr), 0),
            SbEvent::FailHeader { core, addr } => (10, core as u64, u64::from(addr), 0),
            SbEvent::UnlockHeader { core, addr } => (11, core as u64, u64::from(addr), 0),
            SbEvent::SetBusy { core } => (12, core as u64, 0, 0),
            SbEvent::ClearBusy { core } => (13, core as u64, 0, 0),
            SbEvent::Termination { core } => (14, core as u64, 0, 0),
        };
        eat(tag);
        eat(a);
        eat(b);
        eat(c);
    }
    h
}

/// Contention counters maintained by the SB model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Successful acquisitions per lock kind (scan, free, header).
    pub acquisitions: [u64; 3],
    /// Failed (stalled) acquisition attempts per lock kind.
    pub failed_attempts: [u64; 3],
}

impl SyncStats {
    fn idx(kind: LockKind) -> usize {
        match kind {
            LockKind::Scan => 0,
            LockKind::Free => 1,
            LockKind::Header => 2,
        }
    }

    /// Successful acquisitions of `kind`.
    pub fn acquired(&self, kind: LockKind) -> u64 {
        self.acquisitions[Self::idx(kind)]
    }

    /// Failed attempts (stall cycles at the SB) for `kind`.
    pub fn failed(&self, kind: LockKind) -> u64 {
        self.failed_attempts[Self::idx(kind)]
    }
}

/// The synchronization block of the GC coprocessor.
///
/// All methods are *synchronous*: they take effect immediately within the
/// calling core's tick. A `try_*` method returning `false` means the core
/// must stall this cycle and retry on its next tick (the SB would stall it
/// in hardware).
#[derive(Debug, Clone)]
pub struct SyncBlock {
    n_cores: usize,
    /// `scan` register (word address in tospace).
    scan: u32,
    /// `free` register (word address in tospace).
    free: u32,
    scan_owner: Option<usize>,
    free_owner: Option<usize>,
    /// One header-lock register per core; `None` = unlocked.
    header_regs: Vec<Option<u32>>,
    /// `ScanState`: one busy bit per core.
    busy: Vec<bool>,
    /// Number of set busy bits, maintained on every transition so the
    /// whole-register reads (`none_busy_except`, `busy_count`) are O(1) —
    /// they run in every idle core's poll loop, every cycle.
    busy_n: usize,
    /// Line-split extension: claimed-body offset of the object currently
    /// at `scan` (0 = unsplit / next claim starts a fresh object).
    scan_chunk_off: u32,
    /// Line-split extension: outstanding split objects as
    /// `(frame address, unfinished chunks)`. A handful of entries at most
    /// (bounded by the core count in practice).
    splits: Vec<(u32, u32)>,
    /// Register write ports: "at most one core may modify each of these
    /// two registers during a clock cycle" (paper Section V-C). Set on
    /// write, cleared by the engine at each cycle boundary; a second
    /// would-be writer cannot acquire the lock until the next cycle.
    scan_written: bool,
    free_written: bool,
    /// What-if ablation knob: pretend each register has one write port
    /// *per core*, so a same-cycle write no longer blocks the next
    /// acquirer. The locks themselves stay — genuine holds still enforce
    /// claim/evacuation atomicity — only the write-port conflict
    /// disappears. Not a paper configuration.
    multiport: bool,
    /// Incremental index of held header locks as `(addr, core)` pairs —
    /// the `Some` entries of `header_regs`. The hardware compares a lock
    /// attempt against all registers in parallel; scanning the whole
    /// vector per attempt made [`SyncBlock::try_lock_header`] O(n_cores)
    /// on the hottest simulator path. Conflict checks walk this list
    /// (O(#held), typically 0–2) instead; `header_regs` stays the
    /// authoritative register file and cross-checks the index under
    /// `debug_assert`.
    held_headers: Vec<(u32, u32)>,
    /// Sparse-engine wake lists (`None` = tracking off; the naive engine
    /// loop pays nothing). See [`SyncBlock::enable_wake_tracking`].
    wake: Option<WakeLists>,
    /// SB clock: number of `begin_cycle` calls (adjustable via
    /// `set_cycle` so event stamps match the engine's numbering).
    cycle: u64,
    /// Cycle-stamped operation log; `None` (the default) records nothing
    /// and costs nothing.
    events: Option<Vec<SbEventRecord>>,
    stats: SyncStats,
}

impl SyncBlock {
    /// Create an SB for `n_cores` cores (the paper's prototype supports up
    /// to 16; the model accepts any positive count).
    pub fn new(n_cores: usize) -> SyncBlock {
        assert!(n_cores > 0);
        SyncBlock {
            n_cores,
            scan: 0,
            free: 0,
            scan_owner: None,
            free_owner: None,
            header_regs: vec![None; n_cores],
            busy: vec![false; n_cores],
            busy_n: 0,
            scan_chunk_off: 0,
            // At most one outstanding split per claiming core: preallocate
            // so the simulation loop never allocates.
            splits: Vec::with_capacity(n_cores),
            scan_written: false,
            free_written: false,
            multiport: false,
            // At most one held header lock per core.
            held_headers: Vec::with_capacity(n_cores),
            wake: None,
            cycle: 0,
            events: None,
            stats: SyncStats::default(),
        }
    }

    // --- event log -----------------------------------------------------

    /// Turn on the cycle-stamped operation log. Intended for checkers and
    /// test harnesses; the engine leaves it off by default.
    pub fn enable_event_log(&mut self) {
        self.events = Some(Vec::new());
    }

    /// The recorded events, if logging is enabled.
    pub fn event_log(&self) -> Option<&[SbEventRecord]> {
        self.events.as_deref()
    }

    /// Take ownership of the recorded events (empty if logging was off).
    pub fn take_event_log(&mut self) -> Vec<SbEventRecord> {
        self.events.take().unwrap_or_default()
    }

    /// Current SB cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Align the SB clock with an external cycle counter (the engine does
    /// this after the sequential root phase, whose per-root `begin_cycle`
    /// calls undercount its multi-cycle cost).
    pub fn set_cycle(&mut self, cycle: u64) {
        assert!(cycle >= self.cycle, "SB clock may not go backwards");
        self.cycle = cycle;
    }

    /// Is the cycle-stamped operation log enabled? The engine must not
    /// fast-forward over lock-contention cycles while it is: every failed
    /// attempt emits a per-cycle event.
    pub fn event_log_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Skip `k` dead cycles in one jump: each skipped cycle would merely
    /// have called [`SyncBlock::begin_cycle`] on an SB no core touches, so
    /// the write ports are re-armed once and the clock advances by `k`.
    /// (The ports *may* be armed on entry — e.g. a core sets `free` and
    /// then stalls on a memory port in the same tick — which is exactly
    /// the state the first skipped `begin_cycle` would have cleared.)
    pub fn fast_forward(&mut self, k: u64) {
        if k > 0 {
            self.scan_written = false;
            self.free_written = false;
        }
        self.cycle += k;
    }

    /// Account `k` failed acquisition attempts of `kind` at once: a core
    /// stalled on a lock whose holder cannot move retries — and fails —
    /// identically every skipped cycle. Illegal while the event log is on
    /// (each failure would need its own cycle-stamped record).
    pub fn bulk_fail(&mut self, kind: LockKind, k: u64) {
        debug_assert!(
            self.events.is_none(),
            "bulk_fail would drop per-cycle fail events"
        );
        self.stats.failed_attempts[SyncStats::idx(kind)] += k;
    }

    fn log(&mut self, event: SbEvent) {
        if let Some(events) = &mut self.events {
            events.push(SbEventRecord {
                cycle: self.cycle,
                event,
            });
        }
    }

    /// Record that `core` detected termination (`scan == free`, no other
    /// busy bits). Called by the core microprogram, which is where the
    /// atomic ScanState + comparison read happens.
    pub fn log_termination(&mut self, core: usize) {
        self.log(SbEvent::Termination { core });
    }

    /// Number of cores this SB serves.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Enable or disable the multiport write-port relaxation (see the
    /// `multiport` field). Off by default — the paper's hardware has one
    /// write port per register.
    pub fn set_multiport(&mut self, on: bool) {
        self.multiport = on;
    }

    /// Is the multiport relaxation active?
    pub fn multiport(&self) -> bool {
        self.multiport
    }

    // --- scan/free registers -------------------------------------------

    /// Read the `scan` register (all cores may read simultaneously).
    pub fn scan(&self) -> u32 {
        self.scan
    }

    /// Read the `free` register (all cores may read simultaneously).
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Initialise both registers (done by core 1 at the start of a cycle).
    pub fn init_pointers(&mut self, scan: u32, free: u32) {
        self.scan = scan;
        self.free = free;
        self.log(SbEvent::Init { scan, free });
    }

    /// Write `scan`; only the lock owner may do this, at most once per
    /// clock cycle.
    pub fn set_scan(&mut self, core: usize, value: u32) {
        assert_eq!(self.scan_owner, Some(core), "scan write without lock");
        debug_assert!(
            self.multiport || !self.scan_written,
            "two scan writes in one cycle"
        );
        self.log(SbEvent::SetScan {
            core,
            from: self.scan,
            to: value,
        });
        self.scan = value;
        self.scan_written = true;
    }

    /// Write `free`; only the lock owner may do this, at most once per
    /// clock cycle.
    pub fn set_free(&mut self, core: usize, value: u32) {
        assert_eq!(self.free_owner, Some(core), "free write without lock");
        debug_assert!(
            self.multiport || !self.free_written,
            "two free writes in one cycle"
        );
        self.log(SbEvent::SetFree {
            core,
            from: self.free,
            to: value,
        });
        self.free = value;
        self.free_written = true;
        if let Some(w) = &mut self.wake {
            w.wake_empty();
        }
    }

    /// Cycle boundary: the engine calls this once per clock to re-arm the
    /// single write port of each register.
    pub fn begin_cycle(&mut self) {
        self.scan_written = false;
        self.free_written = false;
        self.cycle += 1;
    }

    /// Attempt to acquire the `scan` lock. Zero-cost when uncontended,
    /// but the register's write port admits one writer per cycle: after a
    /// same-cycle write the next acquirer stalls until the next cycle.
    pub fn try_acquire_scan(&mut self, core: usize) -> bool {
        if !self.multiport && self.scan_written && self.scan_owner.is_none() {
            self.stats.failed_attempts[0] += 1;
            self.log(SbEvent::FailScan { core });
            return false;
        }
        match self.scan_owner {
            None => {
                self.scan_owner = Some(core);
                self.stats.acquisitions[0] += 1;
                self.log(SbEvent::AcquireScan { core });
                true
            }
            Some(owner) => {
                debug_assert_ne!(owner, core, "recursive scan lock");
                self.stats.failed_attempts[0] += 1;
                self.log(SbEvent::FailScan { core });
                false
            }
        }
    }

    /// Release the `scan` lock.
    pub fn release_scan(&mut self, core: usize) {
        assert_eq!(self.scan_owner, Some(core), "scan release without lock");
        self.scan_owner = None;
        self.log(SbEvent::ReleaseScan { core });
        if let Some(w) = &mut self.wake {
            w.wake_scan_release();
        }
    }

    /// The core currently holding the `scan` lock, if any.
    pub fn scan_owner(&self) -> Option<usize> {
        self.scan_owner
    }

    /// Attempt to acquire the `free` lock. Zero-cost when uncontended,
    /// with the same one-write-per-cycle port limit as `scan`.
    pub fn try_acquire_free(&mut self, core: usize) -> bool {
        if !self.multiport && self.free_written && self.free_owner.is_none() {
            self.stats.failed_attempts[1] += 1;
            self.log(SbEvent::FailFree { core });
            return false;
        }
        match self.free_owner {
            None => {
                self.free_owner = Some(core);
                self.stats.acquisitions[1] += 1;
                self.log(SbEvent::AcquireFree { core });
                true
            }
            Some(owner) => {
                debug_assert_ne!(owner, core, "recursive free lock");
                self.stats.failed_attempts[1] += 1;
                self.log(SbEvent::FailFree { core });
                false
            }
        }
    }

    /// Release the `free` lock.
    pub fn release_free(&mut self, core: usize) {
        assert_eq!(self.free_owner, Some(core), "free release without lock");
        self.free_owner = None;
        self.log(SbEvent::ReleaseFree { core });
    }

    /// Does `core` currently hold the `scan` lock?
    pub fn holds_scan(&self, core: usize) -> bool {
        self.scan_owner == Some(core)
    }

    /// Does `core` currently hold the `free` lock?
    pub fn holds_free(&self, core: usize) -> bool {
        self.free_owner == Some(core)
    }

    // --- header-lock registers -----------------------------------------

    /// Attempt to lock the header at `addr` for `core`. The SB compares
    /// `addr` against every other core's header-lock register in parallel;
    /// a match means someone else holds that header and the core stalls.
    ///
    /// # Panics
    /// Panics if the core already holds a (different) header lock — each
    /// core owns exactly one header-lock register in hardware, and the
    /// algorithm never needs two.
    pub fn try_lock_header(&mut self, core: usize, addr: u32) -> bool {
        assert!(
            self.header_regs[core].is_none() || self.header_regs[core] == Some(addr),
            "core {core} already holds a different header lock"
        );
        let taken = self
            .held_headers
            .iter()
            .any(|&(a, c)| a == addr && c != core as u32);
        debug_assert_eq!(
            taken,
            self.header_regs
                .iter()
                .enumerate()
                .any(|(c, &reg)| c != core && reg == Some(addr)),
            "held-header index out of sync with the register file"
        );
        if taken {
            self.stats.failed_attempts[2] += 1;
            self.log(SbEvent::FailHeader { core, addr });
            false
        } else {
            if self.header_regs[core] != Some(addr) {
                self.stats.acquisitions[2] += 1;
                self.log(SbEvent::LockHeader { core, addr });
                self.held_headers.push((addr, core as u32));
            }
            self.header_regs[core] = Some(addr);
            true
        }
    }

    /// Release `core`'s header lock.
    pub fn unlock_header(&mut self, core: usize) {
        let addr = self.header_regs[core].expect("header unlock without lock");
        self.header_regs[core] = None;
        let idx = self
            .held_headers
            .iter()
            .position(|&(_, c)| c == core as u32)
            .expect("held-header index missing an entry");
        self.held_headers.swap_remove(idx);
        self.log(SbEvent::UnlockHeader { core, addr });
        if let Some(w) = &mut self.wake {
            w.wake_header(addr);
        }
    }

    /// The address currently locked by `core`, if any.
    pub fn header_lock_of(&self, core: usize) -> Option<u32> {
        self.header_regs[core]
    }

    // --- ScanState busy bits -------------------------------------------

    /// Set `core`'s busy bit (entering the main scanning loop).
    pub fn set_busy(&mut self, core: usize) {
        if !self.busy[core] {
            self.busy[core] = true;
            self.busy_n += 1;
        }
        self.log(SbEvent::SetBusy { core });
    }

    /// Clear `core`'s busy bit.
    pub fn clear_busy(&mut self, core: usize) {
        if self.busy[core] {
            self.busy[core] = false;
            self.busy_n -= 1;
            if let Some(w) = &mut self.wake {
                w.wake_empty();
            }
        }
        self.log(SbEvent::ClearBusy { core });
    }

    /// Is `core` busy?
    pub fn is_busy(&self, core: usize) -> bool {
        self.busy[core]
    }

    /// Atomic read of the whole `ScanState` register: true when *no* core
    /// other than `observer` is busy. Used together with the `scan == free`
    /// comparison for termination detection.
    pub fn none_busy_except(&self, observer: usize) -> bool {
        self.busy_n == 0 || (self.busy_n == 1 && self.busy[observer])
    }

    /// Number of busy cores (monitoring).
    pub fn busy_count(&self) -> usize {
        self.busy_n
    }

    // --- line-split extension (paper's future work item 1) -------------

    /// Claimed-body offset within the object currently at `scan`; only
    /// meaningful (and only mutated) under the scan lock.
    pub fn scan_chunk_off(&self) -> u32 {
        self.scan_chunk_off
    }

    /// Set the claimed-body offset (scan-lock holder only).
    pub fn set_scan_chunk_off(&mut self, core: usize, off: u32) {
        assert_eq!(
            self.scan_owner,
            Some(core),
            "chunk-off write without scan lock"
        );
        self.scan_chunk_off = off;
    }

    /// Register a split object with `chunks` outstanding chunks (called by
    /// the first claimant, under the scan lock).
    pub fn split_begin(&mut self, core: usize, frame: u32, chunks: u32) {
        assert_eq!(self.scan_owner, Some(core), "split_begin without scan lock");
        debug_assert!(chunks >= 2, "single-chunk objects are not split");
        debug_assert!(!self.splits.iter().any(|&(f, _)| f == frame));
        self.splits.push((frame, chunks));
    }

    /// Report one finished chunk of `frame`; returns `true` for the last
    /// finisher, which must blacken the object.
    pub fn split_finish(&mut self, frame: u32) -> bool {
        let idx = self
            .splits
            .iter()
            .position(|&(f, _)| f == frame)
            .expect("split_finish on unregistered frame");
        self.splits[idx].1 -= 1;
        if self.splits[idx].1 == 0 {
            self.splits.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// Contention statistics.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Consume the quiescent SB, yielding its statistics without a clone
    /// (end-of-collection epilogue).
    pub fn into_stats(self) -> SyncStats {
        self.stats
    }

    /// Assert that no lock is held (end-of-cycle hygiene check).
    pub fn assert_quiescent(&self) {
        assert!(self.scan_owner.is_none(), "scan lock leaked");
        assert!(self.free_owner.is_none(), "free lock leaked");
        assert!(
            self.header_regs.iter().all(Option::is_none),
            "header lock leaked"
        );
        assert!(self.held_headers.is_empty(), "held-header index leaked");
        assert!(self.busy.iter().all(|&b| !b), "busy bit leaked");
        assert!(self.splits.is_empty(), "split object leaked");
        assert_eq!(self.scan_chunk_off, 0, "chunk offset leaked");
    }

    // --- sparse-engine wake lists --------------------------------------

    /// Turn on the wake lists the sparse engine parks stalled cores on.
    /// Off by default — the naive loop and the checkers never consult
    /// them, and every hook below is a `None` test when off.
    pub fn enable_wake_tracking(&mut self) {
        self.wake = Some(WakeLists::new(self.n_cores));
    }

    /// Park `core` until the scan lock is next released.
    pub fn park_on_scan_release(&mut self, core: usize) {
        let w = self.wake.as_mut().expect("wake tracking off");
        w.scan_release |= 1u64 << core;
    }

    /// Park `core` until the header lock on `addr` is released.
    pub fn park_on_header(&mut self, core: usize, addr: u32) {
        let w = self.wake.as_mut().expect("wake tracking off");
        if w.header[core].replace(addr).is_none() {
            w.header_n += 1;
        }
    }

    /// Park `core` in the empty-worklist spin: woken when `free` moves or
    /// a busy bit clears (either can change the termination test it is
    /// polling).
    pub fn park_on_empty(&mut self, core: usize) {
        let w = self.wake.as_mut().expect("wake tracking off");
        w.empty |= 1u64 << core;
    }

    /// Remove `core` from every wake list (the engine woke it by other
    /// means — a timer, a memory retirement, or the done broadcast). A
    /// no-op if the core is not parked here or tracking is off.
    pub fn cancel_park(&mut self, core: usize) {
        if let Some(w) = &mut self.wake {
            w.scan_release &= !(1u64 << core);
            w.empty &= !(1u64 << core);
            if w.header[core].take().is_some() {
                w.header_n -= 1;
            }
        }
    }

    /// Cores woken by SB operations since the last
    /// [`SyncBlock::clear_wakes`], in ascending-core order per wake event.
    /// Woken cores have already been removed from their lists.
    pub fn wakes(&self) -> &[usize] {
        self.wake.as_ref().map_or(&[], |w| &w.woken)
    }

    /// Forget the drained wake notifications.
    pub fn clear_wakes(&mut self) {
        if let Some(w) = &mut self.wake {
            w.woken.clear();
        }
    }
}

/// Per-resource lists of parked cores for the sparse engine. A core on a
/// list has proven its next retry must fail until the listed SB operation
/// happens; the hooks in [`SyncBlock::release_scan`],
/// [`SyncBlock::unlock_header`], [`SyncBlock::set_free`] and
/// [`SyncBlock::clear_busy`] move it to `woken` the moment that operation
/// executes. Spurious wakes are safe (the core re-ticks and re-parks);
/// only a *missed* wake would break the sparse engine's bit-exactness.
#[derive(Debug, Clone)]
struct WakeLists {
    /// Cores parked until the scan lock's next release (bitmask).
    scan_release: u64,
    /// Cores parked in the empty-worklist spin (bitmask).
    empty: u64,
    /// Per-core header address the core is parked on.
    header: Vec<Option<u32>>,
    /// Number of `Some` entries in `header` (skip the scan when zero).
    header_n: usize,
    /// Cores woken since the engine last drained, in wake order.
    woken: Vec<usize>,
}

impl WakeLists {
    fn new(n_cores: usize) -> WakeLists {
        assert!(n_cores <= 64, "wake bitmasks hold at most 64 cores");
        WakeLists {
            scan_release: 0,
            empty: 0,
            header: vec![None; n_cores],
            header_n: 0,
            woken: Vec::with_capacity(n_cores),
        }
    }

    fn drain_mask(&mut self, mut mask: u64) {
        while mask != 0 {
            self.woken.push(mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
    }

    fn wake_scan_release(&mut self) {
        let m = self.scan_release;
        self.scan_release = 0;
        self.drain_mask(m);
    }

    fn wake_empty(&mut self) {
        let m = self.empty;
        self.empty = 0;
        self.drain_mask(m);
    }

    fn wake_header(&mut self, addr: u32) {
        if self.header_n == 0 {
            return;
        }
        for c in 0..self.header.len() {
            if self.header[c] == Some(addr) {
                self.header[c] = None;
                self.header_n -= 1;
                self.woken.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_lock_mutual_exclusion() {
        let mut sb = SyncBlock::new(4);
        assert!(sb.try_acquire_scan(0));
        assert!(!sb.try_acquire_scan(1));
        assert!(sb.holds_scan(0));
        sb.release_scan(0);
        assert!(sb.try_acquire_scan(1));
        assert_eq!(sb.stats().acquired(LockKind::Scan), 2);
        assert_eq!(sb.stats().failed(LockKind::Scan), 1);
        sb.release_scan(1);
    }

    #[test]
    fn free_lock_independent_of_scan_lock() {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_acquire_scan(0));
        assert!(sb.try_acquire_free(1));
        assert!(!sb.try_acquire_free(0));
        sb.release_scan(0);
        sb.release_free(1);
        sb.assert_quiescent();
    }

    #[test]
    #[should_panic(expected = "scan write without lock")]
    fn scan_write_requires_lock() {
        let mut sb = SyncBlock::new(2);
        sb.set_scan(0, 10);
    }

    #[test]
    fn pointer_registers_readable_by_all() {
        let mut sb = SyncBlock::new(2);
        sb.init_pointers(100, 100);
        assert_eq!(sb.scan(), 100);
        assert!(sb.try_acquire_free(1));
        sb.set_free(1, 120);
        sb.release_free(1);
        assert_eq!(sb.free(), 120);
        assert_eq!(sb.scan(), 100);
    }

    #[test]
    fn header_lock_parallel_compare() {
        let mut sb = SyncBlock::new(3);
        assert!(sb.try_lock_header(0, 0xA0));
        assert!(sb.try_lock_header(1, 0xB0)); // different header, fine
        assert!(!sb.try_lock_header(2, 0xA0)); // held by core 0
        sb.unlock_header(0);
        assert!(sb.try_lock_header(2, 0xA0)); // now free
        sb.unlock_header(1);
        sb.unlock_header(2);
        sb.assert_quiescent();
    }

    #[test]
    fn header_lock_reacquire_same_addr_is_idempotent() {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_lock_header(0, 7));
        assert!(sb.try_lock_header(0, 7));
        assert_eq!(sb.stats().acquired(LockKind::Header), 1);
        sb.unlock_header(0);
    }

    #[test]
    #[should_panic(expected = "already holds a different header lock")]
    fn one_header_lock_per_core() {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_lock_header(0, 1));
        let _ = sb.try_lock_header(0, 2);
    }

    #[test]
    fn busy_bits_and_termination_read() {
        let mut sb = SyncBlock::new(3);
        assert!(sb.none_busy_except(0));
        sb.set_busy(1);
        assert!(!sb.none_busy_except(0));
        assert!(sb.none_busy_except(1)); // the observer's own bit is excluded
        sb.clear_busy(1);
        assert!(sb.none_busy_except(0));
    }

    #[test]
    fn same_cycle_release_reacquire() {
        // Models the paper's "released by one core and reacquired by
        // another core in the same cycle": both happen within one engine
        // cycle as long as the releaser ticks first.
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_acquire_free(0));
        sb.release_free(0);
        assert!(sb.try_acquire_free(1));
        sb.release_free(1);
    }

    #[test]
    #[should_panic(expected = "scan lock leaked")]
    fn quiescence_check_catches_leak() {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_acquire_scan(0));
        sb.assert_quiescent();
    }

    #[test]
    fn event_fingerprint_separates_streams_by_operand_and_stamp() {
        let rec = |cycle, event| SbEventRecord { cycle, event };
        let base = vec![
            rec(0, SbEvent::Init { scan: 8, free: 8 }),
            rec(1, SbEvent::AcquireScan { core: 0 }),
            rec(
                1,
                SbEvent::LockHeader {
                    core: 0,
                    addr: 0x40,
                },
            ),
        ];
        let fp = event_fingerprint(&base);
        // Deterministic, and equal streams agree.
        assert_eq!(fp, event_fingerprint(&base.clone()));
        // A changed operand, kind, cycle stamp, order, or length each
        // produce a different fingerprint.
        let mut addr = base.clone();
        addr[2] = rec(
            1,
            SbEvent::LockHeader {
                core: 0,
                addr: 0x44,
            },
        );
        let mut kind = base.clone();
        kind[1] = rec(1, SbEvent::AcquireFree { core: 0 });
        let mut stamp = base.clone();
        stamp[1] = rec(2, SbEvent::AcquireScan { core: 0 });
        let mut order = base.clone();
        order.swap(1, 2);
        let mut longer = base.clone();
        longer.push(rec(3, SbEvent::Termination { core: 0 }));
        for other in [&addr, &kind, &stamp, &order, &longer] {
            assert_ne!(fp, event_fingerprint(other));
        }
        assert_ne!(event_fingerprint(&[]), fp);
    }

    #[test]
    fn event_log_off_by_default() {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_acquire_scan(0));
        sb.release_scan(0);
        assert!(sb.event_log().is_none());
        assert!(sb.take_event_log().is_empty());
    }

    #[test]
    fn event_log_records_cycle_stamped_operations() {
        let mut sb = SyncBlock::new(2);
        sb.enable_event_log();
        sb.init_pointers(100, 100);
        sb.begin_cycle(); // cycle 1
        assert!(sb.try_acquire_free(0));
        sb.set_free(0, 110);
        sb.release_free(0);
        sb.begin_cycle(); // cycle 2
        assert!(sb.try_lock_header(1, 0xA0));
        assert!(!sb.try_lock_header(0, 0xA0));
        sb.unlock_header(1);
        sb.log_termination(0);
        let events = sb.take_event_log();
        assert_eq!(
            events,
            vec![
                SbEventRecord {
                    cycle: 0,
                    event: SbEvent::Init {
                        scan: 100,
                        free: 100
                    }
                },
                SbEventRecord {
                    cycle: 1,
                    event: SbEvent::AcquireFree { core: 0 }
                },
                SbEventRecord {
                    cycle: 1,
                    event: SbEvent::SetFree {
                        core: 0,
                        from: 100,
                        to: 110
                    }
                },
                SbEventRecord {
                    cycle: 1,
                    event: SbEvent::ReleaseFree { core: 0 }
                },
                SbEventRecord {
                    cycle: 2,
                    event: SbEvent::LockHeader {
                        core: 1,
                        addr: 0xA0
                    }
                },
                SbEventRecord {
                    cycle: 2,
                    event: SbEvent::FailHeader {
                        core: 0,
                        addr: 0xA0
                    }
                },
                SbEventRecord {
                    cycle: 2,
                    event: SbEvent::UnlockHeader {
                        core: 1,
                        addr: 0xA0
                    }
                },
                SbEventRecord {
                    cycle: 2,
                    event: SbEvent::Termination { core: 0 }
                },
            ]
        );
    }

    #[test]
    fn fast_forward_advances_clock_and_bulk_fail_accounts() {
        let mut sb = SyncBlock::new(2);
        sb.begin_cycle();
        assert!(sb.try_acquire_scan(0));
        // Core 1 stalls on the scan lock for 10 skipped cycles.
        assert!(!sb.try_acquire_scan(1));
        sb.fast_forward(9);
        sb.bulk_fail(LockKind::Scan, 9);
        assert_eq!(sb.cycle(), 10);
        assert_eq!(sb.stats().failed(LockKind::Scan), 10);
        sb.release_scan(0);
    }

    #[test]
    fn single_port_blocks_second_writer_in_same_cycle() {
        let mut sb = SyncBlock::new(2);
        sb.begin_cycle();
        assert!(sb.try_acquire_scan(0));
        sb.set_scan(0, 4);
        sb.release_scan(0);
        // The register was written this cycle: the port is busy.
        assert!(!sb.try_acquire_scan(1));
        sb.begin_cycle();
        assert!(sb.try_acquire_scan(1));
        sb.release_scan(1);
        assert_eq!(sb.stats().failed(LockKind::Scan), 1);
    }

    #[test]
    fn multiport_removes_write_port_conflict_only() {
        let mut sb = SyncBlock::new(2);
        sb.set_multiport(true);
        assert!(sb.multiport());
        sb.begin_cycle();
        assert!(sb.try_acquire_scan(0));
        sb.set_scan(0, 4);
        sb.release_scan(0);
        // Same cycle, second writer: no port conflict under multiport.
        assert!(sb.try_acquire_scan(1));
        sb.set_scan(1, 8);
        sb.release_scan(1);
        assert_eq!(sb.scan(), 8);
        assert_eq!(sb.stats().failed(LockKind::Scan), 0);
        // Genuine holds still exclude — atomicity is untouched.
        assert!(sb.try_acquire_free(0));
        assert!(!sb.try_acquire_free(1));
        sb.release_free(0);
        sb.assert_quiescent();
    }

    #[test]
    fn set_cycle_aligns_the_clock() {
        let mut sb = SyncBlock::new(1);
        sb.begin_cycle();
        assert_eq!(sb.cycle(), 1);
        sb.set_cycle(10);
        sb.begin_cycle();
        assert_eq!(sb.cycle(), 11);
    }

    #[test]
    fn held_header_index_tracks_lock_churn() {
        // Exercise acquire / idempotent re-acquire / conflicting attempt /
        // swap-removed release; the debug_assert in try_lock_header
        // cross-checks the index against the register file on every call.
        let mut sb = SyncBlock::new(4);
        assert!(sb.try_lock_header(0, 0xA0));
        assert!(sb.try_lock_header(1, 0xB0));
        assert!(sb.try_lock_header(2, 0xC0));
        assert!(sb.try_lock_header(1, 0xB0)); // idempotent: no new entry
        assert!(!sb.try_lock_header(3, 0xB0));
        sb.unlock_header(0); // swap_remove moves the tail entry
        assert!(!sb.try_lock_header(0, 0xC0));
        assert!(sb.try_lock_header(0, 0xA0)); // released addr is free again
        sb.unlock_header(0);
        sb.unlock_header(1);
        assert!(sb.try_lock_header(3, 0xB0));
        sb.unlock_header(2);
        sb.unlock_header(3);
        sb.assert_quiescent();
    }

    #[test]
    fn wake_lists_fire_on_release_setfree_and_clearbusy() {
        let mut sb = SyncBlock::new(4);
        sb.enable_wake_tracking();
        assert!(sb.wakes().is_empty());

        // Scan-release wakes every core parked on it, ascending.
        assert!(sb.try_acquire_scan(0));
        sb.park_on_scan_release(2);
        sb.park_on_scan_release(1);
        sb.release_scan(0);
        assert_eq!(sb.wakes(), &[1, 2]);
        sb.clear_wakes();

        // Header wake matches the released address only.
        assert!(sb.try_lock_header(0, 0xA0));
        assert!(sb.try_lock_header(1, 0xB0));
        sb.park_on_header(2, 0xA0);
        sb.park_on_header(3, 0xB0);
        sb.unlock_header(0);
        assert_eq!(sb.wakes(), &[2]);
        sb.clear_wakes();
        sb.unlock_header(1);
        assert_eq!(sb.wakes(), &[3]);
        sb.clear_wakes();

        // set_free and a real busy-bit clear both wake the empty list.
        sb.park_on_empty(3);
        assert!(sb.try_acquire_free(0));
        sb.set_free(0, 8);
        sb.release_free(0);
        assert_eq!(sb.wakes(), &[3]);
        sb.clear_wakes();
        sb.park_on_empty(1);
        sb.set_busy(0);
        assert!(sb.wakes().is_empty()); // setting a bit wakes nobody
        sb.clear_busy(0);
        assert_eq!(sb.wakes(), &[1]);
        sb.clear_wakes();
        sb.clear_busy(0); // already clear: no transition, no wake
        assert!(sb.wakes().is_empty());
        sb.assert_quiescent();
    }

    #[test]
    fn cancel_park_removes_a_core_from_every_list() {
        let mut sb = SyncBlock::new(2);
        sb.enable_wake_tracking();
        assert!(sb.try_acquire_scan(0));
        sb.park_on_scan_release(1);
        sb.park_on_empty(1);
        assert!(sb.try_lock_header(0, 4));
        sb.park_on_header(1, 4);
        sb.cancel_park(1);
        sb.release_scan(0);
        sb.unlock_header(0);
        assert!(sb.wakes().is_empty());
    }
}
