//! Model-based property tests of the synchronization block.

use hwgc_sync::SyncBlock;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AcquireScan(usize),
    ReleaseScan(usize),
    AcquireFree(usize),
    ReleaseFree(usize),
    LockHeader(usize, u32),
    UnlockHeader(usize),
    SetBusy(usize),
    ClearBusy(usize),
}

fn ops(cores: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..cores).prop_map(Op::AcquireScan),
            (0..cores).prop_map(Op::ReleaseScan),
            (0..cores).prop_map(Op::AcquireFree),
            (0..cores).prop_map(Op::ReleaseFree),
            ((0..cores), (1u32..8)).prop_map(|(c, a)| Op::LockHeader(c, a)),
            (0..cores).prop_map(Op::UnlockHeader),
            (0..cores).prop_map(Op::SetBusy),
            (0..cores).prop_map(Op::ClearBusy),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// A shadow model tracks who should hold what; the SB must agree at
    /// every step, and mutual exclusion must never be violated.
    #[test]
    fn sb_agrees_with_shadow_model(ops in ops(4)) {
        let cores = 4;
        let mut sb = SyncBlock::new(cores);
        let mut scan_owner: Option<usize> = None;
        let mut free_owner: Option<usize> = None;
        let mut headers: Vec<Option<u32>> = vec![None; cores];
        let mut busy = vec![false; cores];

        for op in ops {
            match op {
                Op::AcquireScan(c) => {
                    let expect = scan_owner.is_none();
                    if scan_owner == Some(c) { continue; } // no recursion
                    prop_assert_eq!(sb.try_acquire_scan(c), expect);
                    if expect { scan_owner = Some(c); }
                }
                Op::ReleaseScan(c) => {
                    if scan_owner == Some(c) {
                        sb.release_scan(c);
                        scan_owner = None;
                    }
                }
                Op::AcquireFree(c) => {
                    let expect = free_owner.is_none();
                    if free_owner == Some(c) { continue; }
                    prop_assert_eq!(sb.try_acquire_free(c), expect);
                    if expect { free_owner = Some(c); }
                }
                Op::ReleaseFree(c) => {
                    if free_owner == Some(c) {
                        sb.release_free(c);
                        free_owner = None;
                    }
                }
                Op::LockHeader(c, a) => {
                    // One register per core: skip if holding another addr.
                    if headers[c].is_some() && headers[c] != Some(a) { continue; }
                    let taken = headers.iter().enumerate().any(|(o, &h)| o != c && h == Some(a));
                    prop_assert_eq!(sb.try_lock_header(c, a), !taken);
                    if !taken { headers[c] = Some(a); }
                }
                Op::UnlockHeader(c) => {
                    if headers[c].is_some() {
                        sb.unlock_header(c);
                        headers[c] = None;
                    }
                }
                Op::SetBusy(c) => { sb.set_busy(c); busy[c] = true; }
                Op::ClearBusy(c) => { sb.clear_busy(c); busy[c] = false; }
            }
            // Cross-check observable state.
            for c in 0..cores {
                prop_assert_eq!(sb.holds_scan(c), scan_owner == Some(c));
                prop_assert_eq!(sb.holds_free(c), free_owner == Some(c));
                prop_assert_eq!(sb.header_lock_of(c), headers[c]);
                prop_assert_eq!(sb.is_busy(c), busy[c]);
            }
            prop_assert_eq!(sb.busy_count(), busy.iter().filter(|&&b| b).count());
            for c in 0..cores {
                let none_other = busy.iter().enumerate().all(|(o, &b)| o == c || !b);
                prop_assert_eq!(sb.none_busy_except(c), none_other);
            }
        }
    }

    /// Split bookkeeping: exactly one finisher is told it was last,
    /// regardless of the finish order.
    #[test]
    fn split_finish_has_one_last(chunks in 2u32..20, order_seed in 0u64..1000) {
        let mut sb = SyncBlock::new(2);
        assert!(sb.try_acquire_scan(0));
        sb.split_begin(0, 1000, chunks);
        sb.release_scan(0);
        // Finish in a seed-scrambled order (order is irrelevant for a
        // counter, but the API must tolerate any interleaving).
        let mut last_count = 0;
        let mut x = order_seed | 1;
        for _ in 0..chunks {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if sb.split_finish(1000) {
                last_count += 1;
            }
        }
        prop_assert_eq!(last_count, 1);
        sb.assert_quiescent();
    }
}
