//! Shared infrastructure for the software collectors: the collector trait
//! and report, local allocation buffers, the immediate-copy evacuation
//! protocol, and work-counting termination.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hwgc_heap::header::{self, Header};
use hwgc_heap::{Addr, Heap, NULL};
use hwgc_obs::SharedProbe;
use hwgc_sync::sw::SwSyncOps;

use crate::arena::Arena;

/// Result of one software collection cycle.
#[derive(Debug, Clone)]
pub struct SwReport {
    /// Collector name.
    pub name: &'static str,
    /// Threads used.
    pub n_threads: usize,
    /// Final allocation frontier (includes fragmentation holes).
    pub free: Addr,
    /// Objects copied.
    pub objects_copied: u64,
    /// Words of live data copied (headers included).
    pub words_copied: u64,
    /// Tospace words lost to fragmentation (LAB tails, chunk tails).
    pub fragmentation_words: u64,
    /// Synchronization operations performed, summed over threads.
    pub ops: SwSyncOps,
    /// Wall-clock time of the parallel phase.
    pub elapsed: Duration,
}

/// What a collector's parallel phase returns.
#[derive(Debug, Clone, Default)]
pub struct ParallelOutcome {
    pub free: Addr,
    pub objects_copied: u64,
    pub words_copied: u64,
    pub fragmentation_words: u64,
    pub ops: SwSyncOps,
}

/// A software parallel copying collector.
pub trait SwCollector {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Collect: evacuate everything reachable from `roots` into the
    /// arena's tospace using `n_threads` threads, rewriting `roots` to the
    /// new copies. When `probe` is present, the collector reports its
    /// distribution mechanism onto the event bus —
    /// [`hwgc_obs::Event::Steal`] attempts, [`hwgc_obs::Event::PacketHandoff`]s
    /// — stamped with a global operation sequence number (real threads
    /// have no simulated clock). `None` must cost nothing.
    fn parallel_collect_observed(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
        probe: Option<&SharedProbe>,
    ) -> ParallelOutcome;

    /// [`SwCollector::parallel_collect_observed`] without observation.
    fn parallel_collect(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
    ) -> ParallelOutcome {
        self.parallel_collect_observed(arena, roots, n_threads, None)
    }

    /// Run a full cycle on `heap`: flip, snapshot into an atomic arena,
    /// run the parallel phase (timed), write back and fix up the mutator
    /// state.
    fn collect(&self, heap: &mut Heap, n_threads: usize) -> SwReport {
        self.collect_observed(heap, n_threads, None)
    }

    /// [`SwCollector::collect`] with the event bus attached.
    fn collect_observed(
        &self,
        heap: &mut Heap,
        n_threads: usize,
        probe: Option<&SharedProbe>,
    ) -> SwReport {
        assert!((1..=32).contains(&n_threads), "busy mask is 32 bits");
        heap.flip();
        let arena = Arena::from_heap(heap);
        let mut roots = heap.roots().to_vec();
        let start = Instant::now();
        let out = self.parallel_collect_observed(&arena, &mut roots, n_threads, probe);
        let elapsed = start.elapsed();
        arena.write_back(heap);
        for (i, &r) in roots.iter().enumerate() {
            heap.set_root(i, r);
        }
        heap.set_alloc_ptr(out.free);
        SwReport {
            name: self.name(),
            n_threads,
            free: out.free,
            objects_copied: out.objects_copied,
            words_copied: out.words_copied,
            fragmentation_words: out.fragmentation_words,
            ops: out.ops,
            elapsed,
        }
    }
}

/// Default local-allocation-buffer size in words (Flood's "local
/// allocation buffers"; also used by the packet collector).
pub const LAB_WORDS: u32 = 1024;

/// A thread-local bump allocator over a shared tospace frontier.
///
/// Threads reserve `lab_words` at a time with one `fetch_add` and then
/// allocate locally without synchronization; the unused tail of each
/// buffer is lost to fragmentation — the trade the paper's related work
/// accepts to reduce contention on `free`.
pub struct LabAllocator<'a> {
    shared_free: &'a AtomicU32,
    limit: Addr,
    lab_words: u32,
    cur: Addr,
    end: Addr,
    fragmentation: u64,
    shared_fetch_adds: u64,
}

impl<'a> LabAllocator<'a> {
    /// Allocator drawing LABs of `lab_words` from `shared_free`, never
    /// exceeding `limit`.
    pub fn new(shared_free: &'a AtomicU32, limit: Addr, lab_words: u32) -> LabAllocator<'a> {
        LabAllocator {
            shared_free,
            limit,
            lab_words,
            cur: 0,
            end: 0,
            fragmentation: 0,
            shared_fetch_adds: 0,
        }
    }

    /// Allocate `size` words.
    ///
    /// # Panics
    /// Panics on tospace overflow (a collector bug or an undersized heap —
    /// never acceptable to continue from).
    pub fn alloc(&mut self, size: u32) -> Addr {
        if size > self.lab_words {
            // Oversized objects bypass the LAB.
            self.shared_fetch_adds += 1;
            let a = self.shared_free.fetch_add(size, Ordering::Relaxed);
            assert!(a + size <= self.limit, "tospace overflow");
            return a;
        }
        if self.cur + size > self.end {
            self.fragmentation += (self.end - self.cur) as u64;
            self.shared_fetch_adds += 1;
            let a = self
                .shared_free
                .fetch_add(self.lab_words, Ordering::Relaxed);
            assert!(a + self.lab_words <= self.limit, "tospace overflow");
            self.cur = a;
            self.end = a + self.lab_words;
        }
        let a = self.cur;
        self.cur += size;
        a
    }

    /// Retire the allocator, returning (fragmentation including the
    /// current LAB tail, number of shared fetch-adds performed).
    pub fn finish(self) -> (u64, u64) {
        (
            self.fragmentation + (self.end - self.cur) as u64,
            self.shared_fetch_adds,
        )
    }
}

/// Count of work items that have been made visible but not fully
/// processed. All collectors that distribute gray objects through local
/// structures use this for termination: increment *before* publishing an
/// item, decrement *after* finishing it; when the count reaches zero there
/// is no work anywhere.
#[derive(Debug, Default)]
pub struct Inflight(AtomicU64);

impl Inflight {
    /// Zero outstanding work.
    pub fn new() -> Inflight {
        Inflight(AtomicU64::new(0))
    }

    /// Announce a new work item (before making it visible).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }

    /// Retire a finished work item.
    pub fn dec(&self) {
        let prev = self.0.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "inflight underflow");
    }

    /// Is all published work finished?
    pub fn idle(&self) -> bool {
        self.0.load(Ordering::Acquire) == 0
    }
}

/// Immediate-copy evacuation (Flood/Imai-Tick/Ossia style, unlike the
/// paper's frame-only evacuation): claim the object with a header CAS,
/// copy the whole body into space from `lab`, then publish the forwarding
/// pointer. Losers spin until the winner publishes. Returns the tospace
/// address and whether this call did the copy.
pub fn evacuate_now(
    arena: &Arena,
    lab: &mut LabAllocator<'_>,
    obj: Addr,
    ops: &mut SwSyncOps,
) -> (Addr, bool) {
    debug_assert_ne!(obj, NULL);
    ops.header_cas += 1;
    let (w0, won) = arena.try_mark(obj);
    if !won {
        let (fwd, spins) = arena.await_forward(obj);
        if spins > 0 {
            // A race genuinely in progress (the winner had not yet
            // published); a claim that merely finds the mark already set
            // is the common already-forwarded case, not contention.
            ops.header_cas_failed += 1;
        }
        ops.spin_iterations += spins;
        return (fwd, false);
    }
    let pi = header::pi_of(w0);
    let delta = header::delta_of(w0);
    let size = 2 + pi + delta;
    let dst = lab.alloc(size);
    for i in 0..pi + delta {
        arena.store(dst + 2 + i, arena.load(obj + 2 + i));
    }
    // The copy starts gray: its pointer slots still reference fromspace.
    // The scanner that processes it blackens it.
    let (gw0, _) = Header::gray(pi, delta, obj).encode();
    arena.store(dst, gw0);
    arena.store(dst + 1, 0);
    // Publish the forwarding pointer last: anyone who observes it also
    // observes the copied body (release/acquire pairing in the arena).
    arena.store_release(obj + 1, dst);
    (dst, true)
}

/// Scan one immediately-copied object: translate its pointer slots through
/// `evacuate_now`, pushing newly copied children to `on_new`, then blacken
/// it. Shared by the stealing, chunked and packet collectors.
pub fn scan_copied_object(
    arena: &Arena,
    lab: &mut LabAllocator<'_>,
    copy: Addr,
    ops: &mut SwSyncOps,
    mut on_new: impl FnMut(Addr),
) -> (u64, u32) {
    let w0 = arena.load(copy);
    let pi = header::pi_of(w0);
    let delta = header::delta_of(w0);
    let mut copied_words = 0;
    for slot in 0..pi {
        let child = arena.load(copy + 2 + slot);
        if child == NULL {
            continue;
        }
        debug_assert!(
            arena.in_fromspace(child),
            "pointer {child} escapes fromspace"
        );
        let (fwd, won) = evacuate_now(arena, lab, child, ops);
        if won {
            copied_words += header::size_of_w0(arena.load(child)) as u64;
            on_new(fwd);
        }
        arena.store(copy + 2 + slot, fwd);
    }
    let (bw0, bw1) = Header::black(pi, delta).encode();
    arena.store(copy, bw0);
    arena.store_release(copy + 1, bw1);
    (copied_words, 2 + pi + delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_allocates_and_tracks_fragmentation() {
        let free = AtomicU32::new(100);
        let mut lab = LabAllocator::new(&free, 100_000, 16);
        let a = lab.alloc(10);
        assert_eq!(a, 100);
        // 6 words left in the LAB; a 10-word allocation wastes them.
        let b = lab.alloc(10);
        assert_eq!(b, 116);
        let (frag, adds) = lab.finish();
        assert_eq!(frag, 6 + 6); // mid-LAB waste + final tail
        assert_eq!(adds, 2);
    }

    #[test]
    fn lab_oversized_bypass() {
        let free = AtomicU32::new(0);
        let mut lab = LabAllocator::new(&free, 100_000, 16);
        let a = lab.alloc(100);
        assert_eq!(a, 0);
        assert_eq!(free.load(Ordering::Relaxed), 100);
        let (frag, _) = lab.finish();
        assert_eq!(frag, 0);
    }

    #[test]
    #[should_panic(expected = "tospace overflow")]
    fn lab_overflow_panics() {
        let free = AtomicU32::new(0);
        let mut lab = LabAllocator::new(&free, 20, 16);
        let _ = lab.alloc(10);
        let _ = lab.alloc(10); // second LAB exceeds the limit
    }

    #[test]
    fn inflight_counts() {
        let f = Inflight::new();
        assert!(f.idle());
        f.inc();
        f.inc();
        f.dec();
        assert!(!f.idle());
        f.dec();
        assert!(f.idle());
    }

    #[test]
    fn evacuate_now_copies_and_forwards() {
        let mut heap = Heap::new(256);
        let obj = heap.alloc(1, 2).unwrap();
        heap.set_data(obj, 0, 7);
        heap.set_data(obj, 1, 8);
        heap.flip();
        let arena = Arena::from_heap(&heap);
        let free = AtomicU32::new(arena.to_base());
        let mut lab = LabAllocator::new(&free, arena.to_limit(), 64);
        let mut ops = SwSyncOps::default();
        let (dst, won) = evacuate_now(&arena, &mut lab, obj, &mut ops);
        assert!(won);
        assert_eq!(arena.load(dst + 3), 7);
        assert_eq!(arena.load(dst + 4), 8);
        let (dst2, won2) = evacuate_now(&arena, &mut lab, obj, &mut ops);
        assert!(!won2);
        assert_eq!(dst2, dst);
        assert_eq!(ops.header_cas, 2);
        // Losing to an already-published forward is not contention.
        assert_eq!(ops.header_cas_failed, 0);
    }

    #[test]
    fn scan_copied_object_translates_and_blackens() {
        let mut heap = Heap::new(256);
        let parent = heap.alloc(1, 1).unwrap();
        let child = heap.alloc(0, 1).unwrap();
        heap.set_ptr(parent, 0, child);
        heap.set_data(parent, 0, 1);
        heap.set_data(child, 0, 2);
        heap.flip();
        let arena = Arena::from_heap(&heap);
        let free = AtomicU32::new(arena.to_base());
        let mut lab = LabAllocator::new(&free, arena.to_limit(), 64);
        let mut ops = SwSyncOps::default();
        let (pcopy, _) = evacuate_now(&arena, &mut lab, parent, &mut ops);
        let mut new = Vec::new();
        let (words, _) = scan_copied_object(&arena, &mut lab, pcopy, &mut ops, |a| new.push(a));
        assert_eq!(new.len(), 1);
        assert_eq!(words, 3);
        let h = arena.header(pcopy);
        assert_eq!(h.color, hwgc_heap::Color::Black);
        assert_eq!(arena.load(pcopy + 2), new[0]);
    }
}
