//! Ossia et al.'s work-packet parallel collector (the paper's reference 13).
//!
//! Gray references are grouped into fixed-capacity *packets*. Each thread
//! drains an input packet, accumulating newly evacuated objects into an
//! output packet that is pushed to a shared pool when full — replacing
//! object-level worklist granularity with packet-level granularity. One
//! pool access per `packet_size` objects instead of two synchronized
//! pointer bumps per object, at the cost of an auxiliary dynamic
//! structure and delayed work publication (an almost-full private output
//! packet is invisible to idle threads).

use std::sync::atomic::{AtomicU32, Ordering};

use hwgc_heap::{Addr, NULL};
use hwgc_obs::{Event, SharedProbe};
use hwgc_sync::sw::SwSyncOps;
use parking_lot::Mutex;

use crate::arena::Arena;
use crate::common::{
    evacuate_now, scan_copied_object, Inflight, LabAllocator, ParallelOutcome, SwCollector,
    LAB_WORDS,
};

/// Default packet capacity (gray references per packet).
pub const PACKET_SIZE: usize = 256;

/// The work-packet collector.
#[derive(Debug, Clone, Copy)]
pub struct Packets {
    /// References per packet.
    pub packet_size: usize,
    /// LAB size in words (evacuation is immediate-copy, like Flood's).
    pub lab_words: u32,
}

impl Default for Packets {
    fn default() -> Packets {
        Packets {
            packet_size: PACKET_SIZE,
            lab_words: LAB_WORDS,
        }
    }
}

impl Packets {
    /// Collector with default packet and LAB sizes.
    pub fn new() -> Packets {
        Packets::default()
    }
}

impl SwCollector for Packets {
    fn name(&self) -> &'static str {
        "work-packets"
    }

    fn parallel_collect_observed(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
        probe: Option<&SharedProbe>,
    ) -> ParallelOutcome {
        let shared_free = AtomicU32::new(arena.to_base());
        let pool: Mutex<Vec<Vec<Addr>>> = Mutex::new(Vec::new());
        let inflight = Inflight::new();

        // Root phase: evacuate roots, seed the pool with packets.
        let mut root_ops = SwSyncOps::default();
        let mut root_lab = LabAllocator::new(&shared_free, arena.to_limit(), self.lab_words);
        let mut objects = 0u64;
        let mut words = 0u64;
        let mut packet: Vec<Addr> = Vec::with_capacity(self.packet_size);
        for r in roots.iter_mut() {
            if *r == NULL {
                continue;
            }
            let (fwd, won) = evacuate_now(arena, &mut root_lab, *r, &mut root_ops);
            if won {
                objects += 1;
                words += hwgc_heap::header::size_of_w0(arena.load(fwd)) as u64;
                inflight.inc();
                packet.push(fwd);
                if packet.len() == self.packet_size {
                    root_ops.lock_acquisitions += 1;
                    // The root phase hands off as pseudo-thread
                    // `n_threads` (the slot convention the simulator uses
                    // for its mutator).
                    if let Some(p) = probe {
                        p.record(&Event::PacketHandoff {
                            thread: n_threads as u32,
                            refs: packet.len() as u32,
                        });
                    }
                    pool.lock().push(std::mem::take(&mut packet));
                }
            }
            *r = fwd;
        }
        if !packet.is_empty() {
            if let Some(p) = probe {
                p.record(&Event::PacketHandoff {
                    thread: n_threads as u32,
                    refs: packet.len() as u32,
                });
            }
            pool.lock().push(packet);
        }
        let (root_frag, root_adds) = root_lab.finish();
        root_ops.shared_fetch_add += root_adds;

        let results: Vec<(SwSyncOps, u64, u64, u64)> = std::thread::scope(|s| {
            (0..n_threads)
                .map(|tid| {
                    let pool = &pool;
                    let inflight = &inflight;
                    let shared_free = &shared_free;
                    s.spawn(move || {
                        worker(
                            arena,
                            pool,
                            inflight,
                            shared_free,
                            self.packet_size,
                            self.lab_words,
                            tid,
                            probe,
                        )
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut out = ParallelOutcome {
            free: shared_free.load(Ordering::Acquire),
            objects_copied: objects,
            words_copied: words,
            fragmentation_words: root_frag,
            ..ParallelOutcome::default()
        };
        out.ops.merge(&root_ops);
        for (ops, o, w, f) in results {
            out.ops.merge(&ops);
            out.objects_copied += o;
            out.words_copied += w;
            out.fragmentation_words += f;
        }
        out
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    arena: &Arena,
    pool: &Mutex<Vec<Vec<Addr>>>,
    inflight: &Inflight,
    shared_free: &AtomicU32,
    packet_size: usize,
    lab_words: u32,
    tid: usize,
    probe: Option<&SharedProbe>,
) -> (SwSyncOps, u64, u64, u64) {
    let mut ops = SwSyncOps::default();
    let mut lab = LabAllocator::new(shared_free, arena.to_limit(), lab_words);
    let mut objects = 0u64;
    let mut words = 0u64;
    let mut input: Vec<Addr> = Vec::new();
    let mut output: Vec<Addr> = Vec::with_capacity(packet_size);
    loop {
        if let Some(copy) = input.pop() {
            let mut full_packets: Vec<Vec<Addr>> = Vec::new();
            let (copied, _) = scan_copied_object(arena, &mut lab, copy, &mut ops, |new| {
                objects += 1;
                inflight.inc();
                output.push(new);
                if output.len() == packet_size {
                    full_packets.push(std::mem::replace(
                        &mut output,
                        Vec::with_capacity(packet_size),
                    ));
                }
            });
            words += copied;
            if !full_packets.is_empty() {
                ops.lock_acquisitions += 1;
                if let Some(p) = probe {
                    for fp in &full_packets {
                        p.record(&Event::PacketHandoff {
                            thread: tid as u32,
                            refs: fp.len() as u32,
                        });
                    }
                }
                pool.lock().append(&mut full_packets);
            }
            inflight.dec();
            continue;
        }
        // Refill the input packet.
        ops.lock_acquisitions += 1;
        if let Some(p) = pool.lock().pop() {
            input = p;
            continue;
        }
        if !output.is_empty() {
            // Feed our own partial output packet back in.
            std::mem::swap(&mut input, &mut output);
            continue;
        }
        if inflight.idle() {
            break;
        }
        ops.spin_iterations += 1;
        if ops.spin_iterations % 16 == 0 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    let (frag, adds) = lab.finish();
    ops.shared_fetch_add += adds;
    (ops, objects, words, frag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{verify_collection_relaxed, GraphBuilder, Heap, Snapshot};

    #[test]
    fn packets_collect_tree() {
        for threads in [1, 2, 4] {
            let mut heap = Heap::new(60_000);
            let mut b = GraphBuilder::new(&mut heap);
            let mut s = Default::default();
            let root = hwgc_workloads::generators::kary_tree(&mut b, 7, 3, 3, &mut s);
            b.root(root);
            let snap = Snapshot::capture(&heap);
            let report = Packets::new().collect(&mut heap, threads);
            verify_collection_relaxed(&heap, report.free, &snap)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(report.objects_copied as usize, snap.live_objects());
        }
    }

    #[test]
    fn observed_run_reports_packet_handoffs() {
        use hwgc_obs::{OwnedEvent, SharedProbe};
        // Packet size 1 hands every evacuated object to the pool, so the
        // bus must see exactly one handoff reference per copied object.
        let mut heap = Heap::new(60_000);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = Default::default();
        let root = hwgc_workloads::generators::kary_tree(&mut b, 6, 3, 2, &mut s);
        b.root(root);
        let snap = Snapshot::capture(&heap);
        let probe = SharedProbe::new();
        let collector = Packets {
            packet_size: 1,
            ..Packets::default()
        };
        let report = collector.collect_observed(&mut heap, 4, Some(&probe));
        verify_collection_relaxed(&heap, report.free, &snap).unwrap();
        let rec = probe.take_recording();
        let handoffs: Vec<(u32, u32)> = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                OwnedEvent::PacketHandoff { thread, refs } => Some((*thread, *refs)),
                _ => None,
            })
            .collect();
        assert!(!handoffs.is_empty());
        let total_refs: u64 = handoffs.iter().map(|&(_, r)| r as u64).sum();
        assert_eq!(total_refs, report.objects_copied);
        // Worker tids 0..4; the root phase hands off as pseudo-thread 4.
        assert!(handoffs.iter().all(|&(t, _)| t <= 4));
    }

    #[test]
    fn small_packets_publish_work() {
        // A packet size of 1 forces a pool access per object — the
        // degenerate case that approaches fine-grained costs.
        let mut heap = Heap::new(60_000);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = Default::default();
        let root = hwgc_workloads::generators::kary_tree(&mut b, 6, 3, 2, &mut s);
        b.root(root);
        let snap = Snapshot::capture(&heap);
        let collector = Packets {
            packet_size: 1,
            ..Packets::default()
        };
        let report = collector.collect(&mut heap, 4);
        verify_collection_relaxed(&heap, report.free, &snap).unwrap();
        assert!(report.ops.lock_acquisitions as usize >= snap.live_objects());
    }
}
