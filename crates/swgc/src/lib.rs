//! Real-thread software parallel copying collectors.
//!
//! The paper's motivation (Sections I and III): on stock shared-memory
//! hardware, synchronizing at *object* granularity is prohibitively
//! expensive — every worklist operation and every object-graph access
//! needs an atomic read-modify-write on shared cache lines — so published
//! parallel collectors coarsen the work unit and decouple the processes,
//! paying with load imbalance, fragmentation, auxiliary data structures
//! and algorithmic complexity.
//!
//! This crate makes that trade-off measurable. It implements, with real
//! threads and atomics on a shared arena with the exact layout of
//! [`hwgc_heap::Heap`]:
//!
//! * [`FineGrained`] — a direct software transliteration of the paper's
//!   fine-grained algorithm (single shared worklist via `scan`/`free`,
//!   per-object header synchronization, scan-time body copy). What the
//!   coprocessor gets for free, this pays for in atomics: it is the
//!   software cost baseline.
//! * [`WorkStealing`] — Flood et al.'s scheme: per-thread deques of gray
//!   objects with stealing, and local allocation buffers (LABs) in
//!   tospace that trade contention for fragmentation.
//! * [`Chunked`] — Imai & Tick's scheme: the heap is partitioned into
//!   fixed-size chunks; a shared pool of scan chunks replaces the
//!   object-granular worklist; objects never span chunks, so chunk tails
//!   fragment.
//! * [`Packets`] — Ossia et al.'s work packets: gray references grouped
//!   into fixed-capacity packets exchanged through a shared pool.
//!
//! Every collector reports a [`SwReport`] with wall-clock time, the tally
//! of synchronization operations ([`hwgc_sync::sw::SwSyncOps`]) and the
//! fragmentation it introduced, so the experiment harness (ablation B in
//! DESIGN.md) can put the software costs next to the hardware model's
//! zero-cost synchronization.

pub mod arena;
pub mod chunked;
pub mod common;
pub mod fine;
pub mod packets;
pub mod stealing;

pub use arena::Arena;
pub use chunked::Chunked;
pub use common::{SwCollector, SwReport};
pub use fine::FineGrained;
pub use packets::Packets;
pub use stealing::WorkStealing;
