//! Shared atomic arena with the layout of [`hwgc_heap::Heap`].
//!
//! The software collectors operate on a `Vec<AtomicU32>` so that multiple
//! threads can mutate the heap without `unsafe`. The arena is constructed
//! from a [`Heap`] before a collection and written back afterwards; the
//! copies are excluded from the timed region by the callers.

use std::sync::atomic::{AtomicU32, Ordering};

use hwgc_heap::header::{self, Header};
use hwgc_heap::{Addr, Heap, Word};

/// Mark bit used by the software evacuation protocol, applied with a CAS
/// on header word 0. Reuses the same bit as the hardware model's mark so
/// the [`Header`] decoder understands both.
pub use hwgc_heap::header::SW_LOCK_BIT;

/// A word-addressed atomic view of the heap arena.
pub struct Arena {
    words: Vec<AtomicU32>,
    to_base: Addr,
    to_limit: Addr,
    from_base: Addr,
    from_limit: Addr,
}

impl Arena {
    /// Snapshot `heap` (after its flip) into an atomic arena.
    pub fn from_heap(heap: &Heap) -> Arena {
        Arena {
            words: heap.words().iter().map(|&w| AtomicU32::new(w)).collect(),
            to_base: heap.to_base(),
            to_limit: heap.to_limit(),
            from_base: heap.from_base(),
            from_limit: heap.from_limit(),
        }
    }

    /// Write the arena contents back into `heap`.
    pub fn write_back(&self, heap: &mut Heap) {
        for (i, w) in self.words.iter().enumerate() {
            heap.set_word(i as Addr, w.load(Ordering::Relaxed));
        }
    }

    /// Base of tospace.
    pub fn to_base(&self) -> Addr {
        self.to_base
    }

    /// One past the end of tospace.
    pub fn to_limit(&self) -> Addr {
        self.to_limit
    }

    /// Is `addr` in fromspace?
    pub fn in_fromspace(&self, addr: Addr) -> bool {
        addr >= self.from_base && addr < self.from_limit
    }

    /// Relaxed word load (single-writer or happens-before established by
    /// the caller's protocol).
    #[inline]
    pub fn load(&self, addr: Addr) -> Word {
        self.words[addr as usize].load(Ordering::Relaxed)
    }

    /// Acquire word load (pairs with [`Arena::store_release`]).
    #[inline]
    pub fn load_acquire(&self, addr: Addr) -> Word {
        self.words[addr as usize].load(Ordering::Acquire)
    }

    /// Relaxed word store.
    #[inline]
    pub fn store(&self, addr: Addr, value: Word) {
        self.words[addr as usize].store(value, Ordering::Relaxed);
    }

    /// Release word store (publishes preceding writes).
    #[inline]
    pub fn store_release(&self, addr: Addr, value: Word) {
        self.words[addr as usize].store(value, Ordering::Release);
    }

    /// Try to claim the object at `obj` for evacuation by atomically
    /// setting the mark bit in header word 0. Returns the pre-CAS word 0
    /// and whether *this* caller won the claim.
    pub fn try_mark(&self, obj: Addr) -> (Word, bool) {
        let w = &self.words[obj as usize];
        let mut cur = w.load(Ordering::Acquire);
        loop {
            if header::is_marked(cur) {
                return (cur, false);
            }
            match w.compare_exchange_weak(
                cur,
                header::with_mark(cur),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(prev) => return (prev, true),
                Err(prev) => cur = prev,
            }
        }
    }

    /// Wait (spin) for the forwarding pointer of a marked object to be
    /// published in header word 1 by the winning evacuator. Returns the
    /// forwarding address and the number of spin iterations.
    pub fn await_forward(&self, obj: Addr) -> (Addr, u64) {
        let mut spins = 0;
        loop {
            let fwd = self.load_acquire(obj + 1);
            if fwd != 0 {
                return (fwd, spins);
            }
            spins += 1;
            if spins % 64 == 0 {
                // The winner may be descheduled (oversubscribed hosts);
                // yield instead of burning the quantum.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Decode the header of the object at `addr` (relaxed; caller must
    /// hold exclusivity or tolerate staleness).
    pub fn header(&self, addr: Addr) -> Header {
        Header::decode(self.load(addr), self.load(addr + 1))
    }

    /// Store an encoded header (word 1 with release so a subsequent
    /// reader that observes word 1 also observes the body, when the
    /// caller's protocol publishes through word 1).
    pub fn store_header(&self, addr: Addr, h: Header) {
        let (w0, w1) = h.encode();
        self.store(addr, w0);
        self.store_release(addr + 1, w1);
    }

    /// Raw atomic access to a word (for CAS-based protocols such as the
    /// fine-grained collector's header spin locks).
    #[inline]
    pub fn word_atomic(&self, idx: usize) -> &AtomicU32 {
        &self.words[idx]
    }

    /// Arena length in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never empty in practice (reserved words exist).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_one_object() -> (Arena, Addr) {
        let mut heap = Heap::new(64);
        let obj = heap.alloc(1, 2).unwrap();
        heap.flip();
        (Arena::from_heap(&heap), obj)
    }

    #[test]
    fn roundtrip_through_heap() {
        let mut heap = Heap::new(32);
        let obj = heap.alloc(0, 1).unwrap();
        heap.set_data(obj, 0, 99);
        heap.flip();
        let arena = Arena::from_heap(&heap);
        arena.store(obj + 2, 123);
        arena.write_back(&mut heap);
        assert_eq!(heap.data(obj, 0), 123);
    }

    #[test]
    fn try_mark_is_exclusive() {
        let (arena, obj) = arena_with_one_object();
        let (w0a, won_a) = arena.try_mark(obj);
        let (w0b, won_b) = arena.try_mark(obj);
        assert!(won_a);
        assert!(!won_b);
        assert!(!header::is_marked(w0a));
        assert!(header::is_marked(w0b));
    }

    #[test]
    fn try_mark_races_have_one_winner() {
        let mut heap = Heap::new(4096);
        let objs: Vec<Addr> = (0..100).map(|_| heap.alloc(0, 1).unwrap()).collect();
        heap.flip();
        let arena = Arena::from_heap(&heap);
        let wins = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &o in &objs {
                        if arena.try_mark(o).1 {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn await_forward_sees_published_pointer() {
        let (arena, obj) = arena_with_one_object();
        arena.store_release(obj + 1, 42);
        let (fwd, spins) = arena.await_forward(obj);
        assert_eq!(fwd, 42);
        assert_eq!(spins, 0);
    }

    #[test]
    fn space_bounds() {
        let mut heap = Heap::new(100);
        heap.flip();
        let arena = Arena::from_heap(&heap);
        assert_eq!(arena.to_base(), heap.to_base());
        assert_eq!(arena.to_limit(), heap.to_limit());
        assert!(arena.in_fromspace(heap.from_base()));
        assert!(!arena.in_fromspace(heap.to_base()));
    }
}
