//! Flood et al.'s work-stealing parallel copying collector (the paper's reference 16).
//!
//! Gray objects (tospace copies whose pointer slots are untranslated) live
//! in per-thread deques; an idle thread steals from others. Evacuation
//! copies the whole object immediately into the thread's local allocation
//! buffer (LAB), so `free` is only touched once per LAB — the coarsening
//! that makes software synchronization affordable, paid for with tospace
//! fragmentation (the LAB tails) and the loss of strict compaction.

use std::sync::atomic::AtomicU32;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use hwgc_heap::{Addr, NULL};
use hwgc_obs::{Event, SharedProbe};
use hwgc_sync::sw::SwSyncOps;

use crate::arena::Arena;
use crate::common::{
    evacuate_now, scan_copied_object, Inflight, LabAllocator, ParallelOutcome, SwCollector,
    LAB_WORDS,
};

/// The work-stealing collector.
#[derive(Debug, Clone, Copy)]
pub struct WorkStealing {
    /// LAB size in words.
    pub lab_words: u32,
}

impl Default for WorkStealing {
    fn default() -> WorkStealing {
        WorkStealing {
            lab_words: LAB_WORDS,
        }
    }
}

impl WorkStealing {
    /// Collector with the default LAB size.
    pub fn new() -> WorkStealing {
        WorkStealing::default()
    }
}

impl SwCollector for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn parallel_collect_observed(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
        probe: Option<&SharedProbe>,
    ) -> ParallelOutcome {
        let shared_free = AtomicU32::new(arena.to_base());
        let inflight = Inflight::new();
        let injector: Injector<Addr> = Injector::new();

        let workers: Vec<Worker<Addr>> = (0..n_threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Addr>> = workers.iter().map(|w| w.stealer()).collect();

        // Root phase: evacuate roots into the injector.
        let mut root_ops = SwSyncOps::default();
        let mut root_lab = LabAllocator::new(&shared_free, arena.to_limit(), self.lab_words);
        let mut objects = 0u64;
        let mut words = 0u64;
        for r in roots.iter_mut() {
            if *r == NULL {
                continue;
            }
            let (fwd, won) = evacuate_now(arena, &mut root_lab, *r, &mut root_ops);
            if won {
                objects += 1;
                words += size_at(arena, fwd) as u64;
                inflight.inc();
                injector.push(fwd);
            }
            *r = fwd;
        }
        let (root_frag, root_adds) = root_lab.finish();
        root_ops.shared_fetch_add += root_adds;

        let results: Vec<(SwSyncOps, u64, u64, u64)> = std::thread::scope(|s| {
            workers
                .into_iter()
                .enumerate()
                .map(|(tid, worker)| {
                    let stealers = &stealers;
                    let injector = &injector;
                    let inflight = &inflight;
                    let shared_free = &shared_free;
                    let lab_words = self.lab_words;
                    s.spawn(move || {
                        run_worker(
                            arena,
                            worker,
                            stealers,
                            injector,
                            inflight,
                            shared_free,
                            lab_words,
                            tid,
                            probe,
                        )
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut out = ParallelOutcome {
            free: shared_free.load(std::sync::atomic::Ordering::Acquire),
            objects_copied: objects,
            words_copied: words,
            fragmentation_words: root_frag,
            ..ParallelOutcome::default()
        };
        out.ops.merge(&root_ops);
        for (ops, o, w, frag) in results {
            out.ops.merge(&ops);
            out.objects_copied += o;
            out.words_copied += w;
            out.fragmentation_words += frag;
        }
        out
    }
}

fn size_at(arena: &Arena, copy: Addr) -> u32 {
    hwgc_heap::header::size_of_w0(arena.load(copy))
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    arena: &Arena,
    worker: Worker<Addr>,
    stealers: &[Stealer<Addr>],
    injector: &Injector<Addr>,
    inflight: &Inflight,
    shared_free: &AtomicU32,
    lab_words: u32,
    tid: usize,
    probe: Option<&SharedProbe>,
) -> (SwSyncOps, u64, u64, u64) {
    let mut ops = SwSyncOps::default();
    let mut lab = LabAllocator::new(shared_free, arena.to_limit(), lab_words);
    let mut objects = 0u64;
    let mut words = 0u64;
    loop {
        let task = find_task(&worker, stealers, injector, tid, &mut ops, probe);
        match task {
            Some(copy) => {
                let (copied, _) = scan_copied_object(arena, &mut lab, copy, &mut ops, |new| {
                    objects += 1;
                    inflight.inc();
                    worker.push(new);
                });
                words += copied;
                inflight.dec();
            }
            None => {
                if inflight.idle() {
                    break;
                }
                ops.spin_iterations += 1;
                if ops.spin_iterations % 16 == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    let (frag, adds) = lab.finish();
    ops.shared_fetch_add += adds;
    (ops, objects, words, frag)
}

fn find_task(
    worker: &Worker<Addr>,
    stealers: &[Stealer<Addr>],
    injector: &Injector<Addr>,
    tid: usize,
    ops: &mut SwSyncOps,
    probe: Option<&SharedProbe>,
) -> Option<Addr> {
    if let Some(t) = worker.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => ops.spin_iterations += 1,
        }
    }
    // Round-robin over the other threads' deques. Each victim probe is a
    // steal attempt on the bus — hits and misses both, so the derived
    // `sw.steal.*` metrics expose how often idle threads come up empty.
    let n = stealers.len();
    for i in 1..n {
        let victim = (tid + i) % n;
        loop {
            match stealers[victim].steal() {
                Steal::Success(t) => {
                    if let Some(p) = probe {
                        p.record(&Event::Steal {
                            thief: tid as u32,
                            victim: victim as u32,
                            success: true,
                        });
                    }
                    return Some(t);
                }
                Steal::Empty => {
                    if let Some(p) = probe {
                        p.record(&Event::Steal {
                            thief: tid as u32,
                            victim: victim as u32,
                            success: false,
                        });
                    }
                    break;
                }
                Steal::Retry => ops.spin_iterations += 1,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{verify_collection_relaxed, GraphBuilder, Heap, Snapshot};

    #[test]
    fn stealing_collects_wide_graph() {
        for threads in [1, 2, 4] {
            let mut heap = Heap::new(40_000);
            let mut b = GraphBuilder::new(&mut heap);
            let mut s = Default::default();
            let root = hwgc_workloads::generators::kary_tree(&mut b, 6, 3, 2, &mut s);
            b.root(root);
            let snap = Snapshot::capture(&heap);
            let report = WorkStealing::new().collect(&mut heap, threads);
            verify_collection_relaxed(&heap, report.free, &snap)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(report.objects_copied as usize, snap.live_objects());
            assert_eq!(report.words_copied, snap.live_words);
        }
    }

    #[test]
    fn observed_run_reports_steals_without_perturbing() {
        use hwgc_obs::{OwnedEvent, SharedProbe};
        let mut heap = Heap::new(40_000);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = Default::default();
        let root = hwgc_workloads::generators::kary_tree(&mut b, 6, 3, 2, &mut s);
        b.root(root);
        let snap = Snapshot::capture(&heap);
        let probe = SharedProbe::new();
        let report = WorkStealing::new().collect_observed(&mut heap, 4, Some(&probe));
        verify_collection_relaxed(&heap, report.free, &snap).unwrap();
        assert_eq!(report.objects_copied as usize, snap.live_objects());
        let rec = probe.take_recording();
        let steals: Vec<(u32, u32, bool)> = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                OwnedEvent::Steal {
                    thief,
                    victim,
                    success,
                } => Some((*thief, *victim, *success)),
                _ => None,
            })
            .collect();
        // Every find_task miss probes the other deques, so attempts are
        // guaranteed even on a lucky schedule.
        assert!(!steals.is_empty());
        for &(thief, victim, _) in &steals {
            assert!(thief < 4 && victim < 4);
            assert_ne!(thief, victim, "no self-steals");
        }
    }

    #[test]
    fn stealing_reports_fragmentation() {
        let mut heap = Heap::new(40_000);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = Default::default();
        let root = hwgc_workloads::generators::kary_tree(&mut b, 6, 3, 2, &mut s);
        b.root(root);
        let report = WorkStealing::new().collect(&mut heap, 4);
        // LAB tails are inevitable with more than one thread and a
        // non-LAB-multiple live size.
        assert!(report.free as u64 >= heap.to_base() as u64 + report.words_copied);
        assert_eq!(
            report.free as u64 - heap.to_base() as u64,
            report.words_copied + report.fragmentation_words
        );
    }
}
