//! The paper's fine-grained algorithm, transliterated to software
//! synchronization.
//!
//! Identical structure to the hardware collector — a single worklist
//! bounded by `scan` and `free`, frame-only evacuation (Gray 1), body
//! copy at scan time (Gray 2), per-object header synchronization, busy
//! flags for termination — but every operation the synchronization block
//! performs for free costs an atomic read-modify-write here:
//!
//! * the `scan` critical section (header read + advance) is a ticket lock,
//! * the `free` critical section is a ticket lock,
//! * header locks are a spin bit (bit 31) in header word 0, CASed,
//! * busy flags are a shared atomic bitmask.
//!
//! Ablation B measures exactly this overhead against the hardware model
//! and against the coarser-grained baselines in the sibling modules.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use hwgc_heap::header::{self, Header, SW_LOCK_BIT};
use hwgc_heap::{Addr, NULL};
use hwgc_sync::sw::{SpinBarrier, SwSyncOps, TicketLock};

use crate::arena::Arena;
use crate::common::{ParallelOutcome, SwCollector};

/// The fine-grained software collector.
#[derive(Debug, Default, Clone, Copy)]
pub struct FineGrained;

impl FineGrained {
    /// Create a collector.
    pub fn new() -> FineGrained {
        FineGrained
    }
}

struct Shared<'a> {
    arena: &'a Arena,
    scan_lock: TicketLock,
    free_lock: TicketLock,
    scan: AtomicU32,
    free: AtomicU32,
    busy: AtomicU32,
    done: AtomicBool,
}

impl Shared<'_> {
    /// Lock the header of `obj` by CASing the spin bit into word 0.
    /// Returns the (locked) word-0 value.
    fn lock_header(&self, obj: Addr, ops: &mut SwSyncOps) -> u32 {
        let idx = obj as usize;
        loop {
            ops.header_cas += 1;
            let cur = self.arena_word(idx).load(Ordering::Acquire);
            if cur & SW_LOCK_BIT != 0 {
                ops.header_cas_failed += 1;
                ops.spin_iterations += 1;
                if ops.spin_iterations.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            match self.arena_word(idx).compare_exchange_weak(
                cur,
                cur | SW_LOCK_BIT,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return cur | SW_LOCK_BIT,
                Err(_) => {
                    ops.header_cas_failed += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Unlock a header by storing word 0 without the spin bit.
    fn unlock_header(&self, obj: Addr, w0: u32) {
        self.arena_word(obj as usize)
            .store(w0 & !SW_LOCK_BIT, Ordering::Release);
    }

    fn arena_word(&self, idx: usize) -> &AtomicU32 {
        // The arena exposes atomic words only through its own methods;
        // for the CAS-based header lock we need the raw atomic.
        self.arena.word_atomic(idx)
    }

    /// Frame-only evacuation under the caller-held header lock, exactly
    /// the paper's Gray-1 transition. Returns the frame address.
    fn evacuate_frame(&self, obj: Addr, w0_locked: u32, ops: &mut SwSyncOps) -> Addr {
        let pi = header::pi_of(w0_locked);
        let delta = header::delta_of(w0_locked);
        let size = 2 + pi + delta;
        ops.lock_acquisitions += 1;
        let guard = self.free_lock.lock();
        let dst = self.free.load(Ordering::Relaxed);
        assert!(dst + size <= self.arena.to_limit(), "tospace overflow");
        // Install the gray frame header *before* publishing the new free
        // value: a scanner that observes free > dst must observe the
        // header (release store on free).
        let (gw0, gw1) = Header::gray(pi, delta, obj).encode();
        self.arena.store(dst, gw0);
        self.arena.store(dst + 1, gw1);
        self.free.store(dst + size, Ordering::Release);
        drop(guard);
        // Publish the forwarding pointer, then mark + unlock the header.
        self.arena.store_release(obj + 1, dst);
        self.unlock_header(obj, header::with_mark(w0_locked));
        dst
    }

    /// The per-pointer child protocol: lock header, read, evacuate if
    /// unmarked, return the forwarding address.
    fn forward_child(&self, child: Addr, ops: &mut SwSyncOps) -> Addr {
        let w0 = self.lock_header(child, ops);
        if header::is_marked(w0) {
            let fwd = self.arena.load(child + 1);
            self.unlock_header(child, w0);
            fwd
        } else {
            self.evacuate_frame(child, w0, ops)
        }
    }
}

impl SwCollector for FineGrained {
    fn name(&self) -> &'static str {
        "fine-grained"
    }

    // The fine-grained collector has no steals or packets to report: its
    // distribution mechanism is the shared scan/free registers, which the
    // `SwSyncOps` counters already capture.
    fn parallel_collect_observed(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
        _probe: Option<&hwgc_obs::SharedProbe>,
    ) -> ParallelOutcome {
        let shared = Shared {
            arena,
            scan_lock: TicketLock::new(),
            free_lock: TicketLock::new(),
            scan: AtomicU32::new(arena.to_base()),
            free: AtomicU32::new(arena.to_base()),
            busy: AtomicU32::new(0),
            done: AtomicBool::new(false),
        };

        // Root phase (the hardware's core 1 does the same, sequentially).
        let mut root_ops = SwSyncOps::default();
        for r in roots.iter_mut() {
            if *r != NULL {
                *r = shared.forward_child(*r, &mut root_ops);
            }
        }

        let mut outcomes: Vec<(SwSyncOps, u64, u64)> = Vec::new();
        // Start barrier: workers begin the scan loop together, so the
        // timed region measures collection, not thread spawn skew.
        let start = SpinBarrier::new(n_threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|tid| {
                    let shared = &shared;
                    let start = &start;
                    s.spawn(move || {
                        start.wait();
                        worker(shared, tid)
                    })
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().expect("worker panicked"));
            }
        });

        let mut out = ParallelOutcome {
            free: shared.free.load(Ordering::Acquire),
            ..ParallelOutcome::default()
        };
        out.ops.merge(&root_ops);
        for (ops, objects, words) in outcomes {
            out.ops.merge(&ops);
            out.objects_copied += objects;
            out.words_copied += words;
        }
        // Count root evacuations (frames made by the root phase).
        // Every frame between to_base and the first worker claim was made
        // by the root phase; simplest exact accounting: objects = frames
        // scanned, which the workers count — plus nothing else, since
        // every evacuated frame is eventually scanned.
        out
    }
}

/// The main scanning loop of one worker thread.
fn worker(shared: &Shared<'_>, tid: usize) -> (SwSyncOps, u64, u64) {
    let my_bit = 1u32 << tid;
    let mut ops = SwSyncOps::default();
    let mut objects = 0u64;
    let mut words = 0u64;
    loop {
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        // Claim an object: the scan critical section covers the header
        // read and the advance, as in the paper's pseudo-code.
        ops.lock_acquisitions += 1;
        let guard = shared.scan_lock.lock();
        let scan = shared.scan.load(Ordering::Relaxed);
        let free = shared.free.load(Ordering::Acquire);
        if scan == free {
            // Atomic termination test: worklist empty + nobody busy.
            if shared.busy.load(Ordering::Acquire) == 0 {
                shared.done.store(true, Ordering::Release);
                drop(guard);
                break;
            }
            drop(guard);
            ops.spin_iterations += 1;
            if ops.spin_iterations % 16 == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        let w0 = shared.arena.load(scan);
        let backlink = shared.arena.load(scan + 1);
        let size = header::size_of_w0(w0);
        shared.busy.fetch_or(my_bit, Ordering::AcqRel);
        shared.scan.store(scan + size, Ordering::Relaxed);
        drop(guard);

        // Gray 2: copy the body, translating pointers as we go.
        let pi = header::pi_of(w0);
        let delta = header::delta_of(w0);
        debug_assert_eq!(
            Header::decode(w0, backlink).color,
            hwgc_heap::Color::Gray,
            "claimed frame at {scan} not gray"
        );
        for slot in 0..pi {
            let child = shared.arena.load(backlink + 2 + slot);
            let fwd = if child == NULL {
                NULL
            } else {
                shared.forward_child(child, &mut ops)
            };
            shared.arena.store(scan + 2 + slot, fwd);
        }
        for slot in 0..delta {
            shared.arena.store(
                scan + 2 + pi + slot,
                shared.arena.load(backlink + 2 + pi + slot),
            );
        }
        let (bw0, bw1) = Header::black(pi, delta).encode();
        shared.arena.store(scan, bw0);
        shared.arena.store_release(scan + 1, bw1);
        objects += 1;
        words += size as u64;
        shared.busy.fetch_and(!my_bit, Ordering::AcqRel);
    }
    (ops, objects, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{verify_collection, GraphBuilder, Heap, Snapshot};

    fn diamond() -> Heap {
        let mut heap = Heap::new(600);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let l = b.add(1, 2).unwrap();
        let rr = b.add(1, 2).unwrap();
        let bot = b.add(0, 4).unwrap();
        let dead = b.add(1, 8).unwrap();
        b.link(r, 0, l);
        b.link(r, 1, rr);
        b.link(l, 0, bot);
        b.link(rr, 0, bot);
        b.link(dead, 0, bot);
        b.root(r);
        heap
    }

    #[test]
    fn fine_grained_is_fully_compacting() {
        // The fine-grained collector preserves the paper's compaction
        // property: the strict verifier applies.
        for threads in [1, 2, 4] {
            let mut heap = diamond();
            let snap = Snapshot::capture(&heap);
            let report = FineGrained::new().collect(&mut heap, threads);
            verify_collection(&heap, report.free, &snap)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(report.fragmentation_words, 0);
        }
    }

    #[test]
    fn fine_grained_counts_sync_ops() {
        let mut heap = diamond();
        let report = FineGrained::new().collect(&mut heap, 2);
        // At least one CAS per object reference processed.
        assert!(report.ops.header_cas >= 4);
        assert!(report.ops.lock_acquisitions >= 4);
    }

    #[test]
    fn fine_grained_empty_roots() {
        let mut heap = Heap::new(100);
        let report = FineGrained::new().collect(&mut heap, 4);
        assert_eq!(report.free, heap.to_base());
        assert_eq!(report.objects_copied, 0);
    }
}
