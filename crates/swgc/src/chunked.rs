//! Imai & Tick's chunk-based parallel copying collector (the paper's reference 11).
//!
//! Tospace is partitioned into fixed-size chunks. Each thread owns a
//! *copy chunk* it evacuates into (Cheney-style, the chunk's scan pointer
//! chasing its fill pointer) and a *scan segment* — a closed chunk taken
//! from a shared pool of chunks that still contain unscanned objects.
//! The shared worklist is per-chunk rather than per-object, slashing
//! synchronization frequency; the price is fragmentation (objects never
//! span chunks, so every closed chunk wastes its tail — the paper's
//! drawback (1) for this scheme) and a dynamic auxiliary structure
//! (drawback (2)).

use std::sync::atomic::{AtomicU32, Ordering};

use hwgc_heap::header;
use hwgc_heap::{Addr, NULL};
use hwgc_sync::sw::SwSyncOps;
use parking_lot::Mutex;

use crate::arena::Arena;
use crate::common::{Inflight, ParallelOutcome, SwCollector};

/// Default chunk size in words.
pub const CHUNK_WORDS: u32 = 2048;

/// The chunk-based collector.
#[derive(Debug, Clone, Copy)]
pub struct Chunked {
    /// Chunk size in words (objects never span chunks).
    pub chunk_words: u32,
}

impl Default for Chunked {
    fn default() -> Chunked {
        Chunked {
            chunk_words: CHUNK_WORDS,
        }
    }
}

impl Chunked {
    /// Collector with the default chunk size.
    pub fn new() -> Chunked {
        Chunked::default()
    }
}

struct Shared {
    /// Next chunk index to hand out.
    next_chunk: AtomicU32,
    /// Closed chunks (or chunk spans) with unscanned objects:
    /// `(first unscanned word, fill)`.
    dirty: Mutex<Vec<(Addr, Addr)>>,
    inflight: Inflight,
    chunk_words: u32,
    to_base: Addr,
    to_limit: Addr,
}

impl Shared {
    /// Reserve `n` contiguous chunks; returns the base address.
    fn grab_chunks(&self, n: u32, ops: &mut SwSyncOps) -> Addr {
        ops.shared_fetch_add += 1;
        let idx = self.next_chunk.fetch_add(n, Ordering::Relaxed);
        let base = self.to_base + idx * self.chunk_words;
        assert!(
            base + n * self.chunk_words <= self.to_limit,
            "tospace overflow"
        );
        base
    }
}

/// Per-thread allocation + scan state.
struct ThreadState {
    /// Open copy chunk: `[base, limit)`, filled to `fill`, scanned to
    /// `scanned`.
    base: Addr,
    fill: Addr,
    scanned: Addr,
    limit: Addr,
    fragmentation: u64,
    objects: u64,
    words: u64,
}

impl ThreadState {
    fn fresh(shared: &Shared, ops: &mut SwSyncOps) -> ThreadState {
        let base = shared.grab_chunks(1, ops);
        ThreadState {
            base,
            fill: base,
            scanned: base,
            limit: base + shared.chunk_words,
            fragmentation: 0,
            objects: 0,
            words: 0,
        }
    }

    /// Evacuate `obj` (claimed by the caller via CAS) into this thread's
    /// chunks, full-copy style. Returns the copy address.
    fn copy_into_chunks(
        &mut self,
        arena: &Arena,
        shared: &Shared,
        obj: Addr,
        w0: u32,
        ops: &mut SwSyncOps,
    ) -> Addr {
        let size = header::size_of_w0(w0);
        let dst = if size > shared.chunk_words {
            // Oversized object: dedicated chunk span, pushed straight to
            // the dirty pool (it is not the open chunk).
            let n = size.div_ceil(shared.chunk_words);
            let base = shared.grab_chunks(n, ops);
            self.fragmentation += (n * shared.chunk_words - size) as u64;
            shared.inflight.inc();
            ops.lock_acquisitions += 1;
            // Copy before publishing the segment.
            copy_body(arena, obj, base, w0);
            shared.dirty.lock().push((base, base + size));
            base
        } else {
            if self.fill + size > self.limit {
                self.close_open_chunk(shared, ops);
            }
            let dst = self.fill;
            self.fill += size;
            copy_body(arena, obj, dst, w0);
            shared.inflight.inc();
            dst
        };
        self.objects += 1;
        self.words += size as u64;
        arena.store_release(obj + 1, dst);
        dst
    }

    /// Close the open copy chunk: push its unscanned part to the shared
    /// pool and account the tail as fragmentation.
    fn close_open_chunk(&mut self, shared: &Shared, ops: &mut SwSyncOps) {
        self.fragmentation += (self.limit - self.fill) as u64;
        if self.scanned < self.fill {
            ops.lock_acquisitions += 1;
            shared.dirty.lock().push((self.scanned, self.fill));
        }
        let base = shared.grab_chunks(1, ops);
        self.base = base;
        self.fill = base;
        self.scanned = base;
        self.limit = base + shared.chunk_words;
    }
}

fn copy_body(arena: &Arena, obj: Addr, dst: Addr, w0: u32) {
    let size = header::size_of_w0(w0);
    let (gw0, _) = hwgc_heap::Header::gray(header::pi_of(w0), header::delta_of(w0), obj).encode();
    arena.store(dst, gw0);
    arena.store(dst + 1, 0);
    for i in 2..size {
        arena.store(dst + i, arena.load(obj + i));
    }
}

/// Claim-or-forward built on the chunk allocator.
fn forward(
    arena: &Arena,
    shared: &Shared,
    st: &mut ThreadState,
    child: Addr,
    ops: &mut SwSyncOps,
) -> Addr {
    ops.header_cas += 1;
    let (w0, won) = arena.try_mark(child);
    if won {
        st.copy_into_chunks(arena, shared, child, w0, ops)
    } else {
        let (fwd, spins) = arena.await_forward(child);
        if spins > 0 {
            ops.header_cas_failed += 1;
        }
        ops.spin_iterations += spins;
        fwd
    }
}

/// Scan the copied object at `copy`: translate pointers, blacken.
fn scan_copy(
    arena: &Arena,
    shared: &Shared,
    st: &mut ThreadState,
    copy: Addr,
    ops: &mut SwSyncOps,
) -> u32 {
    let w0 = arena.load(copy);
    let pi = header::pi_of(w0);
    let delta = header::delta_of(w0);
    for slot in 0..pi {
        let child = arena.load(copy + 2 + slot);
        if child == NULL {
            continue;
        }
        let fwd = forward(arena, shared, st, child, ops);
        arena.store(copy + 2 + slot, fwd);
    }
    let (bw0, bw1) = hwgc_heap::Header::black(pi, delta).encode();
    arena.store(copy, bw0);
    arena.store_release(copy + 1, bw1);
    shared.inflight.dec();
    2 + pi + delta
}

impl SwCollector for Chunked {
    fn name(&self) -> &'static str {
        "chunked"
    }

    // The chunked collector claims chunks through an atomic counter; the
    // `SwSyncOps` counters already capture that traffic, so there is
    // nothing extra to put on the bus.
    fn parallel_collect_observed(
        &self,
        arena: &Arena,
        roots: &mut [Addr],
        n_threads: usize,
        _probe: Option<&hwgc_obs::SharedProbe>,
    ) -> ParallelOutcome {
        let shared = Shared {
            next_chunk: AtomicU32::new(0),
            dirty: Mutex::new(Vec::new()),
            inflight: Inflight::new(),
            chunk_words: self.chunk_words,
            to_base: arena.to_base(),
            to_limit: arena.to_limit(),
        };

        // Root phase on the main thread.
        let mut root_ops = SwSyncOps::default();
        let mut root_state = ThreadState::fresh(&shared, &mut root_ops);
        for r in roots.iter_mut() {
            if *r != NULL {
                *r = forward(arena, &shared, &mut root_state, *r, &mut root_ops);
            }
        }
        // Hand the root chunk's unscanned content to the pool.
        if root_state.scanned < root_state.fill {
            shared
                .dirty
                .lock()
                .push((root_state.scanned, root_state.fill));
            root_state.scanned = root_state.fill;
        }
        root_state.fragmentation += (root_state.limit - root_state.fill) as u64;

        let results: Vec<(SwSyncOps, u64, u64, u64)> = std::thread::scope(|s| {
            (0..n_threads)
                .map(|_| {
                    let shared = &shared;
                    s.spawn(move || worker(arena, shared))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let chunks = shared.next_chunk.load(Ordering::Acquire);
        let mut out = ParallelOutcome {
            free: arena.to_base() + chunks * self.chunk_words,
            objects_copied: root_state.objects,
            words_copied: root_state.words,
            fragmentation_words: root_state.fragmentation,
            ..ParallelOutcome::default()
        };
        out.ops.merge(&root_ops);
        for (ops, o, w, f) in results {
            out.ops.merge(&ops);
            out.objects_copied += o;
            out.words_copied += w;
            out.fragmentation_words += f;
        }
        out
    }
}

fn worker(arena: &Arena, shared: &Shared) -> (SwSyncOps, u64, u64, u64) {
    let mut ops = SwSyncOps::default();
    let mut st = ThreadState::fresh(shared, &mut ops);
    let mut segment: Option<(Addr, Addr)> = None;
    loop {
        if let Some((s, f)) = segment {
            let size = scan_copy(arena, shared, &mut st, s, &mut ops);
            let next = s + size;
            segment = if next < f { Some((next, f)) } else { None };
            continue;
        }
        // Refill: shared pool first, then our own open chunk.
        ops.lock_acquisitions += 1;
        if let Some(seg) = shared.dirty.lock().pop() {
            segment = Some(seg);
            continue;
        }
        if st.scanned < st.fill {
            // Claim the object by advancing `scanned` *before* scanning:
            // an evacuation inside scan_copy may close this very chunk and
            // publish its unscanned remainder, which must not include the
            // object we are working on.
            let at = st.scanned;
            st.scanned += header::size_of_w0(arena.load(at));
            scan_copy(arena, shared, &mut st, at, &mut ops);
            continue;
        }
        if shared.inflight.idle() {
            break;
        }
        ops.spin_iterations += 1;
        if ops.spin_iterations % 16 == 0 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
    st.fragmentation += (st.limit - st.fill) as u64;
    (ops, st.objects, st.words, st.fragmentation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{verify_collection_relaxed, GraphBuilder, Heap, Snapshot};

    fn tree_heap() -> Heap {
        let mut heap = Heap::new(60_000);
        let mut b = GraphBuilder::new(&mut heap);
        let mut s = Default::default();
        let root = hwgc_workloads::generators::kary_tree(&mut b, 7, 3, 3, &mut s);
        b.root(root);
        heap
    }

    #[test]
    fn chunked_collects_tree() {
        for threads in [1, 2, 4] {
            let mut heap = tree_heap();
            let snap = Snapshot::capture(&heap);
            let report = Chunked::new().collect(&mut heap, threads);
            verify_collection_relaxed(&heap, report.free, &snap)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            assert_eq!(report.objects_copied as usize, snap.live_objects());
            assert_eq!(report.words_copied, snap.live_words);
        }
    }

    #[test]
    fn chunked_space_accounting_balances() {
        let mut heap = tree_heap();
        let report = Chunked::new().collect(&mut heap, 3);
        assert_eq!(
            report.free as u64 - heap.to_base() as u64,
            report.words_copied + report.fragmentation_words,
            "chunks = live data + fragmentation"
        );
        assert!(report.fragmentation_words > 0, "chunk tails must fragment");
    }

    #[test]
    fn chunked_handles_oversized_objects() {
        let mut heap = Heap::new(40_000);
        let mut b = GraphBuilder::new(&mut heap);
        let big = b.add(1, 3000).unwrap(); // larger than one 2048-word chunk
        let small = b.add(0, 2).unwrap();
        b.link(big, 0, small);
        b.root(big);
        let snap = Snapshot::capture(&heap);
        let report = Chunked::new().collect(&mut heap, 2);
        verify_collection_relaxed(&heap, report.free, &snap).unwrap();
        assert_eq!(report.objects_copied, 2);
    }
}
