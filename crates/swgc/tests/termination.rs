//! Termination edge cases for the software collectors: eight threads
//! racing over no work (empty roots) or almost no work (a single object)
//! must all reach the work-counting termination barrier and exit. These
//! are the configurations where a miscounted `Inflight` or a lost wakeup
//! hangs the collection forever, so every test here doubles as a liveness
//! check — a regression shows up as a test timeout, not an assertion.

use hwgc_heap::{verify_collection, verify_collection_relaxed, Heap, Snapshot};
use hwgc_swgc::{FineGrained, SwCollector, WorkStealing};

const THREADS: usize = 8;
/// Repetitions per scenario: races near the termination barrier are
/// timing-dependent, so each shape is run many times.
const REPS: usize = 25;

/// A heap with no objects and no roots at all.
fn empty_heap() -> Heap {
    Heap::new(4096)
}

/// A heap with live data but an empty root set: everything is garbage,
/// and the collectors must copy nothing.
fn garbage_only_heap() -> Heap {
    let mut heap = Heap::new(4096);
    let a = heap.alloc(1, 1).unwrap();
    let b = heap.alloc(1, 1).unwrap();
    heap.set_ptr(a, 0, b);
    heap.set_ptr(b, 0, a);
    heap
}

/// One rooted object with no children: exactly one thread wins the only
/// evacuation and seven find the worklist empty from the start.
fn single_object_heap() -> Heap {
    let mut heap = Heap::new(4096);
    let obj = heap.alloc(0, 2).unwrap();
    heap.set_data(obj, 0, 11);
    heap.set_data(obj, 1, 22);
    heap.add_root(obj);
    heap
}

fn fine_grained_collects(make: fn() -> Heap, expect_copied: u64) {
    for rep in 0..REPS {
        let mut heap = make();
        let snapshot = Snapshot::capture(&heap);
        let report = FineGrained::new().collect(&mut heap, THREADS);
        assert_eq!(report.objects_copied, expect_copied, "rep {rep}");
        verify_collection(&heap, report.free, &snapshot)
            .unwrap_or_else(|e| panic!("rep {rep}: {e}"));
    }
}

fn work_stealing_collects(make: fn() -> Heap, expect_copied: u64) {
    for rep in 0..REPS {
        let mut heap = make();
        let snapshot = Snapshot::capture(&heap);
        // Small LABs so eight threads fit in the small tospace even if
        // every one of them grabs a buffer.
        let report = WorkStealing { lab_words: 64 }.collect(&mut heap, THREADS);
        assert_eq!(report.objects_copied, expect_copied, "rep {rep}");
        verify_collection_relaxed(&heap, report.free, &snapshot)
            .unwrap_or_else(|e| panic!("rep {rep}: {e}"));
    }
}

#[test]
fn fine_grained_terminates_with_empty_roots() {
    fine_grained_collects(empty_heap, 0);
}

#[test]
fn fine_grained_terminates_with_garbage_only() {
    fine_grained_collects(garbage_only_heap, 0);
}

#[test]
fn fine_grained_terminates_with_single_object() {
    fine_grained_collects(single_object_heap, 1);
}

#[test]
fn work_stealing_terminates_with_empty_roots() {
    work_stealing_collects(empty_heap, 0);
}

#[test]
fn work_stealing_terminates_with_garbage_only() {
    work_stealing_collects(garbage_only_heap, 0);
}

#[test]
fn work_stealing_terminates_with_single_object() {
    work_stealing_collects(single_object_heap, 1);
}
