//! The eight named benchmark presets.
//!
//! Each preset reproduces the GC-relevant signature of one of the paper's
//! Java benchmarks (see the crate docs for the mapping rationale). Object
//! counts are scaled down from the FPGA prototype's heaps so the full
//! parameter sweeps finish quickly; `scale` lets experiments dial them
//! back up. The *shapes* — which benchmarks parallelize, which overflow
//! the FIFO, which contend on header locks — are what matter and are
//! preserved at any scale.

use hwgc_heap::{GraphBuilder, Heap};

use crate::generators::{
    self, garbage, hub_graph, kary_tree, parallel_chains, random_graph, serial_chain, wide_fanout,
    GenStats,
};

/// One of the paper's eight benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// SPEC JVM98 `_201_compress`: LZW over large byte arrays — a highly
    /// linear graph of big objects; no object-level parallelism.
    Compress,
    /// CUP parser generator: a very wide gray frontier that overflows the
    /// header FIFO.
    Cup,
    /// SPEC JVM98 `_209_db`: a large flat database of small records.
    Db,
    /// SPEC JVM98 `_213_javac`: symbol/type objects referenced by many
    /// AST nodes — popular headers.
    Javac,
    /// JavaCC parser generator: a medium, well-parallelizable graph.
    Javacc,
    /// JFlex scanner generator: a forest with fewer independent branches
    /// than a 16-core coprocessor has cores.
    Jflex,
    /// A small Lisp interpreter: a tree of tiny cons cells.
    Jlisp,
    /// Binary-tree search benchmark: a linear access structure of large
    /// nodes; no object-level parallelism.
    Search,
}

impl Preset {
    /// All presets, in the paper's table order.
    pub const ALL: [Preset; 8] = [
        Preset::Compress,
        Preset::Cup,
        Preset::Db,
        Preset::Javac,
        Preset::Javacc,
        Preset::Jflex,
        Preset::Jlisp,
        Preset::Search,
    ];

    /// The benchmark's name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Compress => "compress",
            Preset::Cup => "cup",
            Preset::Db => "db",
            Preset::Javac => "javac",
            Preset::Javacc => "javacc",
            Preset::Jflex => "jflex",
            Preset::Jlisp => "jlisp",
            Preset::Search => "search",
        }
    }

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Build the preset's heap at scale 1 with the given seed.
    pub fn build(&self, seed: u64) -> Heap {
        WorkloadSpec {
            preset: *self,
            seed,
            scale: 1.0,
        }
        .build()
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A preset plus knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    pub preset: Preset,
    /// Seed for the randomized topologies (db, javac, javacc).
    pub seed: u64,
    /// Multiplier on object counts (1.0 = default size).
    pub scale: f64,
}

impl WorkloadSpec {
    /// Convenience constructor at scale 1.
    pub fn new(preset: Preset, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            preset,
            seed,
            scale: 1.0,
        }
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(1)
    }

    /// Build the heap: allocate the live graph plus ~30 % garbage, root
    /// it, and size the semispaces so roughly half of fromspace is
    /// occupied (the paper's rule of thumb: twice the minimal heap).
    pub fn build(&self) -> Heap {
        // Generously sized scratch heap; rebuilt tight below.
        let semi = self.semi_words();
        let mut heap = Heap::new(semi);
        let mut stats = GenStats::default();
        let mut rng = generators::rng(self.seed);
        let mut b = GraphBuilder::new(&mut heap);
        let root = match self.preset {
            Preset::Compress => {
                serial_chain(&mut b, self.scaled(2_500), 2, 16, 1, 12, 2, &mut stats)
            }
            Preset::Search => serial_chain(&mut b, self.scaled(2_500), 1, 24, 1, 4, 8, &mut stats),
            Preset::Cup => wide_fanout(&mut b, self.scaled(4_600), 100, 8, 1, 4, &mut stats),
            Preset::Db => random_graph(
                &mut b,
                self.scaled(16_000),
                (2, 4),
                (3, 8),
                0.25,
                &mut rng,
                &mut stats,
            ),
            Preset::Javac => hub_graph(&mut b, self.scaled(12_000), 4, 6, 4, &mut rng, &mut stats),
            Preset::Javacc => random_graph(
                &mut b,
                self.scaled(3_500),
                (1, 3),
                (2, 6),
                0.25,
                &mut rng,
                &mut stats,
            ),
            Preset::Jflex => parallel_chains(&mut b, 5, self.scaled(500), 4, &mut stats),
            Preset::Jlisp => kary_tree(&mut b, 12, 2, 2, &mut stats),
        };
        b.root(root);
        // ~30 % garbage by word volume, in smallish objects.
        let garbage_objects = (stats.words / 20).max(1) as usize;
        let mut gw = 0;
        garbage(&mut b, garbage_objects, 4, &mut gw);
        heap
    }

    /// Semispace size in words for this preset/scale.
    pub fn semi_words(&self) -> u32 {
        let base: u64 = match self.preset {
            // spine (2 + pi + delta) + leaves (2 + delta) per spine link
            Preset::Compress => 2_500 * (24 + 3 * 14),
            Preset::Search => 2_500 * (37 + 2 * 6),
            Preset::Cup => 4_600 * (11 + 6) + 48 * 103,
            Preset::Db => 16_000 * 11,
            Preset::Javac => 12_000 * 8,
            Preset::Javacc => 3_500 * 9,
            Preset::Jflex => 5 * 500 * (6 + 2 * 6) + 16,
            Preset::Jlisp => 8191 * 6,
        };
        // Room for the live graph, its garbage (~30 %) and slack.
        ((base as f64 * self.scale.max(1.0) * 1.6) as u32).max(4096) + 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::Snapshot;

    #[test]
    fn all_presets_build_and_are_reachable() {
        for p in Preset::ALL {
            let heap = p.build(1);
            let snap = Snapshot::capture(&heap);
            assert!(snap.live_objects() > 50, "{p}: {}", snap.live_objects());
            assert!(
                heap.allocated_words() as u64 > snap.live_words,
                "{p} must contain garbage"
            );
        }
    }

    #[test]
    fn preset_names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::by_name(p.name()), Some(p));
        }
        assert_eq!(Preset::by_name("nope"), None);
    }

    #[test]
    fn builds_are_deterministic() {
        for p in [Preset::Db, Preset::Javac, Preset::Javacc] {
            let a = Snapshot::capture(&p.build(9));
            let b = Snapshot::capture(&p.build(9));
            assert_eq!(a.live_words, b.live_words, "{p}");
            assert_eq!(a.objects.len(), b.objects.len(), "{p}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Snapshot::capture(&Preset::Db.build(1));
        let b = Snapshot::capture(&Preset::Db.build(2));
        // Same object count, different wiring → different live words is
        // not guaranteed, but the edge structure should differ.
        assert_eq!(a.objects.len(), b.objects.len());
        let edges = |s: &Snapshot| -> Vec<(u32, Vec<Option<u32>>)> {
            let mut v: Vec<_> = s
                .objects
                .iter()
                .map(|(k, r)| (*k, r.children.clone()))
                .collect();
            v.sort();
            v
        };
        assert_ne!(edges(&a), edges(&b));
    }

    #[test]
    fn scale_changes_size() {
        let small = WorkloadSpec {
            preset: Preset::Javacc,
            seed: 3,
            scale: 0.1,
        };
        let big = WorkloadSpec {
            preset: Preset::Javacc,
            seed: 3,
            scale: 1.0,
        };
        let a = Snapshot::capture(&small.build());
        let b = Snapshot::capture(&big.build());
        assert!(a.live_objects() * 5 < b.live_objects());
    }

    #[test]
    fn cup_frontier_exceeds_default_fifo() {
        // The cup preset must be able to overflow the default 4096-entry
        // FIFO: it has far more leaves than that.
        let heap = Preset::Cup.build(1);
        let snap = Snapshot::capture(&heap);
        assert!(snap.live_objects() > 5_000);
    }

    #[test]
    fn linear_presets_have_linear_spine() {
        for p in [Preset::Compress, Preset::Search] {
            let heap = p.build(1);
            let snap = Snapshot::capture(&heap);
            // The live graph must be a tree (every object referenced at
            // most once) whose interior nodes form a single chain — i.e.
            // at most one child of any object has children of its own.
            let mut in_degree = std::collections::HashMap::new();
            for rec in snap.objects.values() {
                for c in rec.children.iter().flatten() {
                    *in_degree.entry(*c).or_insert(0u32) += 1;
                }
                let interior_children = rec
                    .children
                    .iter()
                    .flatten()
                    .filter(|c| !snap.objects[c].children.is_empty())
                    .count();
                assert!(interior_children <= 1, "{p} spine must be linear");
            }
            assert!(
                in_degree.values().all(|&d| d == 1),
                "{p} must be tree-shaped"
            );
        }
    }
}
