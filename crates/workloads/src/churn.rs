//! Multi-cycle mutator churn.
//!
//! The paper measures steady-state collection cycles of running programs;
//! a single hand-built heap only exercises the first cycle. [`Churn`]
//! drives a heap through many allocate/drop/mutate steps and collections,
//! so tests and experiments can measure the collector in its steady state
//! (live-set size stabilised, fromspace containing survivors of previous
//! cycles rather than a freshly built graph).
//!
//! The mutator model is a *root table* (one pinned object whose pointer
//! slots are the program's variables) over which three operations run:
//!
//! * **allocate** a small linked structure and store it in a random slot
//!   (dropping whatever the slot referenced — garbage),
//! * **re-point** a random slot at another slot's structure (sharing),
//! * **clear** a random slot (death without replacement).
//!
//! All randomness is seeded; a churn run is deterministic.

use hwgc_heap::{Addr, Heap, NULL};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Churn parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSpec {
    /// Semispace size in words.
    pub semi_words: u32,
    /// Pointer slots in the root table.
    pub table_slots: u32,
    /// Objects per allocated structure (a small chain).
    pub structure_len: u32,
    /// Data words per allocated object.
    pub obj_delta: u32,
    /// Out of 100: probability a step allocates (vs. re-points / clears).
    pub alloc_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> ChurnSpec {
        ChurnSpec {
            semi_words: 64 * 1024,
            table_slots: 256,
            structure_len: 3,
            obj_delta: 6,
            alloc_percent: 70,
            seed: 0xC0FFEE,
        }
    }
}

/// A heap plus the mutator state driving it between collections.
pub struct Churn {
    heap: Heap,
    rng: SmallRng,
    spec: ChurnSpec,
    next_id: u32,
    /// Steps performed since the last collection was requested.
    steps_since_gc: u64,
}

/// Outcome of one churn step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step completed; keep going.
    Ok,
    /// The semispace is full: the caller must run a collection (any of the
    /// collectors in this workspace) and then continue stepping.
    NeedsGc,
}

impl Churn {
    /// Fresh heap with an empty root table.
    pub fn new(spec: ChurnSpec) -> Churn {
        let mut heap = Heap::new(spec.semi_words);
        let table = heap
            .alloc(spec.table_slots, 1)
            .expect("semispace must fit the root table");
        // The table is object id 1.
        heap.set_data(table, 0, 1);
        heap.add_root(table);
        Churn {
            heap,
            rng: SmallRng::seed_from_u64(spec.seed),
            spec,
            next_id: 2,
            steps_since_gc: 0,
        }
    }

    /// The heap (e.g. to hand to a collector).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Immutable heap access.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Address of the root table (always `roots()[0]`).
    pub fn table(&self) -> Addr {
        self.heap.roots()[0]
    }

    /// Perform one mutator step.
    pub fn step(&mut self) -> StepOutcome {
        self.steps_since_gc += 1;
        let spec = self.spec;
        let slot = self.rng.random_range(0..spec.table_slots);
        let action = self.rng.random_range(0..100u32);
        if action < spec.alloc_percent {
            // Allocate a small chain and store it.
            match self.alloc_structure() {
                Some(head) => {
                    let t = self.table();
                    self.heap.set_ptr(t, slot, head);
                    StepOutcome::Ok
                }
                None => StepOutcome::NeedsGc,
            }
        } else if action < spec.alloc_percent + (100 - spec.alloc_percent) / 2 {
            // Share: point this slot at another slot's structure.
            let other = self.rng.random_range(0..spec.table_slots);
            let t = self.table();
            let v = self.heap.ptr(t, other);
            self.heap.set_ptr(t, slot, v);
            StepOutcome::Ok
        } else {
            // Drop.
            let t = self.table();
            self.heap.set_ptr(t, slot, NULL);
            StepOutcome::Ok
        }
    }

    fn alloc_structure(&mut self) -> Option<Addr> {
        let spec = self.spec;
        let mut head = NULL;
        // Build back-to-front so each node can point at the previous one.
        for _ in 0..spec.structure_len {
            let obj = self.heap.alloc(1, spec.obj_delta)?;
            let id = self.next_id;
            self.next_id += 1;
            self.heap.set_data(obj, 0, id);
            for d in 1..spec.obj_delta {
                self.heap.set_data(obj, d, id ^ (d << 16));
            }
            self.heap.set_ptr(obj, 0, head);
            head = obj;
        }
        Some(head)
    }

    /// Steps performed since the last [`Churn::gc_done`].
    pub fn steps_since_gc(&self) -> u64 {
        self.steps_since_gc
    }

    /// Tell the churn driver a collection has happened.
    pub fn gc_done(&mut self) {
        self.steps_since_gc = 0;
    }

    /// Live words currently allocated (mutator view).
    pub fn allocated_words(&self) -> u32 {
        self.heap.allocated_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::Snapshot;

    #[test]
    fn churn_steps_until_full() {
        let mut churn = Churn::new(ChurnSpec {
            semi_words: 4096,
            ..ChurnSpec::default()
        });
        let mut steps = 0u64;
        while churn.step() == StepOutcome::Ok {
            steps += 1;
            assert!(steps < 100_000, "a 4Ki semispace must fill");
        }
        assert!(steps > 10);
    }

    #[test]
    fn churn_graph_is_snapshotable() {
        let mut churn = Churn::new(ChurnSpec {
            semi_words: 8192,
            ..ChurnSpec::default()
        });
        while churn.step() == StepOutcome::Ok {}
        let snap = Snapshot::capture(churn.heap());
        assert!(snap.live_objects() > 1);
        // Live data must be below what was allocated (garbage exists).
        assert!(snap.live_words < churn.allocated_words() as u64);
    }

    #[test]
    fn churn_is_deterministic() {
        let run = || {
            let mut churn = Churn::new(ChurnSpec {
                semi_words: 8192,
                ..ChurnSpec::default()
            });
            let mut steps = 0;
            while churn.step() == StepOutcome::Ok {
                steps += 1;
            }
            (steps, Snapshot::capture(churn.heap()).live_words)
        };
        assert_eq!(run(), run());
    }
}
