//! Parameterized object-graph topologies.
//!
//! All generators are deterministic for a given seed, build through the
//! [`GraphBuilder`] (so every object carries an id and verifiable content
//! stamps), and return the set of objects they created so callers can
//! compose topologies.

use hwgc_heap::{GraphBuilder, ObjId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a generator built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    pub objects: u64,
    pub words: u64,
    pub edges: u64,
}

impl GenStats {
    fn count(&mut self, pi: u32, delta: u32) {
        self.objects += 1;
        self.words += 2 + pi as u64 + delta as u64;
    }
}

/// A chain of `n` objects, each pointing at its successor: the degenerate
/// graph of `compress`/`search`. Every object has one pointer slot and
/// `delta` data words. The head is rooted. Returns the chain head.
pub fn linear_chain(b: &mut GraphBuilder<'_>, n: usize, delta: u32, stats: &mut GenStats) -> ObjId {
    assert!(n > 0);
    let head = b.add(1, delta).expect("fromspace full");
    stats.count(1, delta);
    let mut prev = head;
    for _ in 1..n {
        let obj = b.add(1, delta).expect("fromspace full");
        stats.count(1, delta);
        b.link(prev, 0, obj);
        stats.edges += 1;
        prev = obj;
    }
    head
}

/// A chain of spine nodes, each carrying `leaves` private leaf objects:
/// the `compress`/`search` shape refined for the paper's Table I numbers.
///
/// The next-spine pointer sits in the *middle* of the pointer area, with
/// leaves on both sides. A scanning core therefore (a) reaches the next
/// spine only partway through its pointer sweep, bounding the chain's
/// pipeline parallelism at roughly two cores, and (b) always leaves a
/// trailing leaf in the work list when the next spine is claimed, so a
/// single core never sees an empty work list (Table I: compress is 0.01 %
/// empty at 1 core yet ≈ 99 % empty at ≥ 4 cores). Returns the chain
/// head.
pub fn leafy_chain(
    b: &mut GraphBuilder<'_>,
    n_spines: usize,
    leaves: u32,
    leaf_delta: u32,
    spine_delta: u32,
    stats: &mut GenStats,
) -> ObjId {
    assert!(n_spines > 0);
    let pi = leaves + 1;
    let next_slot = leaves / 2; // leaves before and after the spine edge
    let head = b.add(pi, spine_delta).expect("fromspace full");
    stats.count(pi, spine_delta);
    let mut prev = head;
    for i in 1..=n_spines {
        for slot in 0..pi {
            if slot == next_slot {
                continue;
            }
            let leaf = b.add(0, leaf_delta).expect("fromspace full");
            stats.count(0, leaf_delta);
            b.link(prev, slot, leaf);
            stats.edges += 1;
        }
        if i == n_spines {
            break;
        }
        let next = b.add(pi, spine_delta).expect("fromspace full");
        stats.count(pi, spine_delta);
        b.link(prev, next_slot, next);
        stats.edges += 1;
        prev = next;
    }
    head
}

/// A chain whose spine nodes have a *null-padded* pointer area with the
/// next-spine edge near the end, plus private leaf objects before and
/// after it. The null slots are scanned cheaply but delay the evacuation
/// of the next spine until late in the parent's sweep, so the spine is
/// effectively serial (pipeline depth ≈ 1); the leaves provide exactly
/// enough side work to keep one or two extra cores busy. Tuning
/// `leaf_delta` against the spine sweep length dials the plateau speedup
/// between ≈ 1.3 (`search`) and ≈ 2 (`compress`) and keeps the work list
/// non-empty at 1 core (paper Table I). Returns the chain head.
#[allow(clippy::too_many_arguments)]
pub fn serial_chain(
    b: &mut GraphBuilder<'_>,
    n_spines: usize,
    leaves_pre: u32,
    nulls: u32,
    leaves_post: u32,
    leaf_delta: u32,
    spine_delta: u32,
    stats: &mut GenStats,
) -> ObjId {
    assert!(n_spines > 0);
    let pi = leaves_pre + nulls + 1 + leaves_post;
    let next_slot = leaves_pre + nulls;
    let head = b.add(pi, spine_delta).expect("fromspace full");
    stats.count(pi, spine_delta);
    let mut prev = head;
    for i in 1..=n_spines {
        for slot in (0..leaves_pre).chain(next_slot + 1..pi) {
            let leaf = b.add(0, leaf_delta).expect("fromspace full");
            stats.count(0, leaf_delta);
            b.link(prev, slot, leaf);
            stats.edges += 1;
        }
        if i == n_spines {
            break;
        }
        let next = b.add(pi, spine_delta).expect("fromspace full");
        stats.count(pi, spine_delta);
        b.link(prev, next_slot, next);
        stats.edges += 1;
        prev = next;
    }
    head
}

/// A forest of `k` independent leafy chains hanging off one root object:
/// the `jflex` shape, whose object-level parallelism saturates at roughly
/// `2k` cores. Returns the root.
pub fn parallel_chains(
    b: &mut GraphBuilder<'_>,
    k: usize,
    len: usize,
    delta: u32,
    stats: &mut GenStats,
) -> ObjId {
    assert!(k >= 1 && k <= hwgc_heap::MAX_FIELD as usize);
    let root = b.add(k as u32, 1).expect("fromspace full");
    stats.count(k as u32, 1);
    for i in 0..k {
        let head = leafy_chain(b, len, 2, delta, 1, stats);
        b.link(root, i as u32, head);
        stats.edges += 1;
    }
    root
}

/// A complete `k`-ary tree of the given depth (depth 0 = a single leaf).
/// Interior nodes have `k` pointer slots; every node has `delta` data
/// words. Returns the tree root.
pub fn kary_tree(
    b: &mut GraphBuilder<'_>,
    depth: u32,
    k: u32,
    delta: u32,
    stats: &mut GenStats,
) -> ObjId {
    let pi = if depth == 0 { 0 } else { k };
    let node = b.add(pi, delta).expect("fromspace full");
    stats.count(pi, delta);
    if depth > 0 {
        for slot in 0..k {
            let child = kary_tree(b, depth - 1, k, delta, stats);
            b.link(node, slot, child);
            stats.edges += 1;
        }
    }
    node
}

/// A root that fans out (through intermediate array objects of `arity`
/// pointer slots each) to `width` record objects, each with `leaf_delta`
/// data words and `leaf_children` private child objects of `child_delta`
/// data words: the `cup` shape. Scanning the arrays turns all `width`
/// records gray long before they can be consumed, producing a standing
/// gray frontier of ~`width` objects that overflows any FIFO smaller than
/// that; the records' own pointers keep header-load traffic high, as in
/// the paper's cup row of Table II. Returns the root.
#[allow(clippy::too_many_arguments)]
pub fn wide_fanout(
    b: &mut GraphBuilder<'_>,
    width: usize,
    arity: u32,
    leaf_delta: u32,
    leaf_children: u32,
    child_delta: u32,
    stats: &mut GenStats,
) -> ObjId {
    assert!((1..=hwgc_heap::MAX_FIELD).contains(&arity));
    let n_arrays = width.div_ceil(arity as usize);
    assert!(
        n_arrays <= hwgc_heap::MAX_FIELD as usize,
        "width too large for two levels"
    );
    let root = b.add(n_arrays as u32, 1).expect("fromspace full");
    stats.count(n_arrays as u32, 1);
    let mut remaining = width;
    for slot in 0..n_arrays {
        let here = remaining.min(arity as usize) as u32;
        remaining -= here as usize;
        let arr = b.add(here, 1).expect("fromspace full");
        stats.count(here, 1);
        b.link(root, slot as u32, arr);
        stats.edges += 1;
        for leaf_slot in 0..here {
            let leaf = b.add(leaf_children, leaf_delta).expect("fromspace full");
            stats.count(leaf_children, leaf_delta);
            b.link(arr, leaf_slot, leaf);
            stats.edges += 1;
            for c in 0..leaf_children {
                let child = b.add(0, child_delta).expect("fromspace full");
                stats.count(0, child_delta);
                b.link(leaf, c, child);
                stats.edges += 1;
            }
        }
    }
    root
}

/// `n_parents` objects arranged as a complete binary tree (slots 0 and 1
/// are the tree edges); every further slot (2..`parent_pi`) points at one
/// of `n_hubs` shared hub objects, chosen uniformly: the `javac` shape —
/// "a few objects are referenced by many objects". The tree provides
/// abundant object-level parallelism; the hubs concentrate header-lock
/// traffic, reproducing javac's 29.4 % header-lock stalls in Table II.
/// Returns the tree root.
pub fn hub_graph(
    b: &mut GraphBuilder<'_>,
    n_parents: usize,
    parent_pi: u32,
    n_hubs: usize,
    hub_delta: u32,
    rng: &mut SmallRng,
    stats: &mut GenStats,
) -> ObjId {
    assert!(n_parents >= 1 && n_hubs >= 1 && parent_pi >= 3);
    let hubs: Vec<ObjId> = (0..n_hubs)
        .map(|_| {
            let h = b.add(0, hub_delta).expect("fromspace full");
            stats.count(0, hub_delta);
            h
        })
        .collect();
    let mut parents = Vec::with_capacity(n_parents);
    for i in 0..n_parents {
        let p = b.add(parent_pi, 1).expect("fromspace full");
        stats.count(parent_pi, 1);
        for slot in 2..parent_pi {
            let hub = hubs[rng.random_range(0..n_hubs)];
            b.link(p, slot, hub);
            stats.edges += 1;
        }
        if i > 0 {
            let parent_idx = (i - 1) / 2;
            let slot = ((i - 1) % 2) as u32;
            b.link(parents[parent_idx], slot, p);
            stats.edges += 1;
        }
        parents.push(p);
    }
    parents[0]
}

/// A connected random graph of `n` objects: object `i` gets `pi` pointer
/// slots drawn from `pi_range` and `delta` data words from `delta_range`;
/// slot 0 of each object (except the first) points at a random *earlier*
/// object's... rather, each object past the first is given one incoming
/// edge from a random earlier object (guaranteeing reachability from the
/// first object), and remaining slots point at uniformly random objects
/// (which may create cycles, self-loops and sharing) or stay null with
/// probability `null_fraction`. Returns the first object (the root).
#[allow(clippy::too_many_arguments)]
pub fn random_graph(
    b: &mut GraphBuilder<'_>,
    n: usize,
    pi_range: (u32, u32),
    delta_range: (u32, u32),
    null_fraction: f64,
    rng: &mut SmallRng,
    stats: &mut GenStats,
) -> ObjId {
    assert!(n >= 1);
    assert!(
        pi_range.0 >= 1,
        "objects need a slot for the connectivity edge"
    );
    let mut objs: Vec<ObjId> = Vec::with_capacity(n);
    let mut free_slots: Vec<(ObjId, u32)> = Vec::new();
    for _ in 0..n {
        let pi = rng.random_range(pi_range.0..=pi_range.1);
        let delta = rng.random_range(delta_range.0..=delta_range.1);
        let o = b.add(pi, delta).expect("fromspace full");
        stats.count(pi, delta);
        if let Some(&last) = objs.last() {
            // Connectivity edge from a random earlier object with a spare
            // slot; fall back to the previous object's slot 0 (overwrite).
            if let Some(pos) = pick_slot(&mut free_slots, rng) {
                b.link(pos.0, pos.1, o);
            } else {
                b.link(last, 0, o);
            }
            stats.edges += 1;
        }
        for slot in 0..pi {
            free_slots.push((o, slot));
        }
        objs.push(o);
    }
    // Fill remaining slots with random edges or nulls.
    for (obj, slot) in free_slots {
        if rng.random_bool(null_fraction) {
            continue;
        }
        let target = objs[rng.random_range(0..objs.len())];
        b.link(obj, slot, target);
        stats.edges += 1;
    }
    objs[0]
}

fn pick_slot(free: &mut Vec<(ObjId, u32)>, rng: &mut SmallRng) -> Option<(ObjId, u32)> {
    if free.is_empty() {
        return None;
    }
    let i = rng.random_range(0..free.len());
    Some(free.swap_remove(i))
}

/// A chain of `n` large *reference* arrays: each object has `nulls`
/// empty pointer slots followed by one pointer to the next array (think
/// of the chunked backbone of a large list). Because the chain edge is
/// the last slot of a long pointer area, the successor only becomes
/// claimable at the very end of the parent's scan — the chain is strictly
/// serial at object granularity, which is the workload that motivates the
/// paper's proposed cache-line-granularity work distribution
/// (conclusions, item 1). Returns the chain head.
pub fn big_array_chain(
    b: &mut GraphBuilder<'_>,
    n: usize,
    nulls: u32,
    stats: &mut GenStats,
) -> ObjId {
    assert!(n > 0 && nulls < hwgc_heap::MAX_FIELD);
    let pi = nulls + 1;
    let head = b.add(pi, 1).expect("fromspace full");
    stats.count(pi, 1);
    let mut prev = head;
    for _ in 1..n {
        let next = b.add(pi, 1).expect("fromspace full");
        stats.count(pi, 1);
        b.link(prev, nulls, next);
        stats.edges += 1;
        prev = next;
    }
    head
}

/// Allocate `n` unreachable garbage objects (never rooted, never linked
/// from live data). A copying collector's cost must not depend on them.
pub fn garbage(b: &mut GraphBuilder<'_>, n: usize, delta: u32, stats_words: &mut u64) {
    for _ in 0..n {
        let _ = b.add(0, delta).expect("fromspace full");
        *stats_words += 2 + delta as u64;
    }
}

/// A deterministic RNG for workload construction.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::{Heap, Snapshot};

    fn with_builder<R>(semi: u32, f: impl FnOnce(&mut GraphBuilder<'_>) -> R) -> (Heap, R) {
        let mut heap = Heap::new(semi);
        let r = {
            let mut b = GraphBuilder::new(&mut heap);
            f(&mut b)
        };
        (heap, r)
    }

    #[test]
    fn chain_is_fully_reachable() {
        let (mut heap, _) = with_builder(10_000, |b| {
            let mut s = GenStats::default();
            let head = linear_chain(b, 50, 5, &mut s);
            b.root(head);
            assert_eq!(s.objects, 50);
            assert_eq!(s.edges, 49);
            assert_eq!(s.words, 50 * 8);
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 50);
        heap.clear_roots();
    }

    #[test]
    fn parallel_chains_shape() {
        let (heap, _) = with_builder(100_000, |b| {
            let mut s = GenStats::default();
            let root = parallel_chains(b, 4, 25, 3, &mut s);
            b.root(root);
            // root + per chain: 25 spines with 2 leaves each
            assert_eq!(s.objects, 1 + 4 * (25 + 50));
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 301);
    }

    #[test]
    fn kary_tree_counts() {
        let (heap, _) = with_builder(100_000, |b| {
            let mut s = GenStats::default();
            let root = kary_tree(b, 3, 2, 1, &mut s);
            b.root(root);
            assert_eq!(s.objects, 15); // complete binary tree, depth 3
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 15);
    }

    #[test]
    fn wide_fanout_width() {
        let (heap, _) = with_builder(200_000, |b| {
            let mut s = GenStats::default();
            let root = wide_fanout(b, 1000, 64, 2, 1, 3, &mut s);
            b.root(root);
            // root + ceil(1000/64)=16 arrays + 1000 records + 1000 children
            assert_eq!(s.objects, 1 + 16 + 2000);
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 2017);
    }

    #[test]
    fn hub_graph_is_connected_and_shares() {
        let (heap, _) = with_builder(200_000, |b| {
            let mut s = GenStats::default();
            let mut r = rng(7);
            let root = hub_graph(b, 100, 4, 5, 2, &mut r, &mut s);
            b.root(root);
            assert_eq!(s.objects, 105);
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 105);
    }

    #[test]
    fn random_graph_reaches_all_objects() {
        for seed in 0..5 {
            let (heap, _) = with_builder(400_000, |b| {
                let mut s = GenStats::default();
                let mut r = rng(seed);
                let root = random_graph(b, 500, (1, 4), (1, 6), 0.3, &mut r, &mut s);
                b.root(root);
                assert_eq!(s.objects, 500);
            });
            let snap = Snapshot::capture(&heap);
            assert_eq!(snap.live_objects(), 500, "seed {seed}");
        }
    }

    #[test]
    fn random_graph_is_deterministic() {
        let build = |seed| {
            let (heap, _) = with_builder(400_000, |b| {
                let mut s = GenStats::default();
                let mut r = rng(seed);
                let root = random_graph(b, 300, (1, 3), (1, 4), 0.2, &mut r, &mut s);
                b.root(root);
            });
            Snapshot::capture(&heap)
        };
        let a = build(42);
        let b = build(42);
        assert_eq!(a.objects.len(), b.objects.len());
        assert_eq!(a.live_words, b.live_words);
    }

    #[test]
    fn garbage_is_unreachable() {
        let (heap, _) = with_builder(10_000, |b| {
            let mut s = GenStats::default();
            let head = linear_chain(b, 10, 2, &mut s);
            b.root(head);
            let mut gw = 0;
            garbage(b, 20, 4, &mut gw);
            assert_eq!(gw, 20 * 6);
        });
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 10);
    }
}
