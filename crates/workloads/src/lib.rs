//! Synthetic heap-graph workloads.
//!
//! The paper evaluates on eight single-threaded Java programs (compress,
//! cup, db, javac, javacc, jflex, jlisp, search). We cannot run Java on the
//! simulated coprocessor, but the collector never sees the *program* — it
//! sees the object graph at flip time. Table I, Table II and the prose of
//! Section VI give each benchmark's GC-relevant signature:
//!
//! * **compress, search** — "highly linear structures" with essentially no
//!   object-level parallelism: a chain of large objects. One gray object
//!   at a time; extra cores only spin (Tab. I: ≈99 % empty work list at
//!   ≥4 cores).
//! * **cup** — a gray frontier wider than the header FIFO: the FIFO
//!   overflows and the resulting memory reads lengthen the scan-lock
//!   critical section (Tab. II: 10.49 % scan-lock stalls, 38.6 % header
//!   load stalls).
//! * **javac** — "a few objects are referenced by many objects": popular
//!   hub objects whose header locks become contended (Tab. II: 29.4 %
//!   header-lock stalls).
//! * **db** — a large, well-connected graph of small record objects:
//!   plenty of parallelism, stall profile dominated by child header loads
//!   and body copies.
//! * **javacc, jlisp** — moderately sized, well-parallelizable trees/DAGs.
//! * **jflex** — parallelism that saturates below 16 cores (Tab. I: 35 %
//!   empty at 16 cores): a forest with fewer independent branches than
//!   cores.
//!
//! [`Preset`] builds a heap whose graph has exactly these properties
//! (plus unreachable garbage, since a copying collector's cost must be
//! independent of it). [`generators`] exposes the underlying
//! parameterized topologies for custom experiments.

pub mod churn;
pub mod generators;
pub mod presets;

pub use churn::{Churn, ChurnSpec, StepOutcome};
pub use generators::{
    big_array_chain, hub_graph, kary_tree, linear_chain, parallel_chains, random_graph,
    serial_chain, wide_fanout, GenStats,
};
pub use presets::{Preset, WorkloadSpec};
