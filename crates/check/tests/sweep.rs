//! The schedule-exploration sweep (ISSUE acceptance: ≥ 200 policy-seed ×
//! core-count combinations in the CI smoke run, every one verified).

use hwgc_check::graphs;
use hwgc_check::{run_sweep, PolicyKind, SweepConfig};

#[test]
fn smoke_sweep_covers_at_least_200_combinations() {
    let cfg = SweepConfig::smoke();
    assert!(
        cfg.combos() >= 200,
        "smoke config shrank to {} combos",
        cfg.combos()
    );
    // The shared hub maximizes header-lock contention: every spoke scan
    // races for the same fromspace header.
    let outcome = run_sweep(&|| graphs::shared_hub(48), &cfg);
    assert_eq!(outcome.combos, cfg.combos());
    assert!(
        outcome.cycle_range.0 < outcome.cycle_range.1,
        "200 schedules produced identical timing {:?} — the policies are not reaching the engine",
        outcome.cycle_range
    );
}

#[test]
fn quick_sweep_on_every_catalog_shape() {
    // A narrow sweep per shape keeps CI time bounded while still running
    // every adversarial structure under both seeded policies.
    let cfg = SweepConfig {
        core_counts: vec![2, 8],
        seeds: vec![0x5EED, 0xFACE],
        policies: vec![PolicyKind::Random, PolicyKind::Adversarial],
        lint: true,
    };
    for (name, heap) in graphs::catalog() {
        let outcome = run_sweep(&|| heap.clone(), &cfg);
        assert_eq!(outcome.combos, cfg.combos(), "{name}");
    }
}

/// The nightly full sweep: every catalog shape × the environment-scaled
/// configuration (defaults: 7 core counts × 2 policies × 100 seeds = 1400
/// combinations per shape). Run with `cargo test -p hwgc-check --test
/// sweep -- --ignored`, scaled by `HWGC_SWEEP_SEEDS` / `HWGC_SWEEP_CORES`
/// / `HWGC_SWEEP_LINT`.
#[test]
#[ignore = "full sweep — minutes of runtime; run nightly or on demand"]
fn full_sweep_all_shapes() {
    let cfg = SweepConfig::from_env();
    for (name, heap) in graphs::catalog() {
        let outcome = run_sweep(&|| heap.clone(), &cfg);
        assert_eq!(outcome.combos, cfg.combos(), "{name}");
        println!(
            "{name}: {} combos, cycle range {:?}",
            outcome.combos, outcome.cycle_range
        );
    }
}
