//! Differential matrix for the sparse active-set engine (the PR 5
//! acceptance contract): on every workload preset × {1, 4, 16} cores,
//! and on every adversarial graph in the catalog, the sparse engine must
//! report *exactly* what the naive per-cycle loop reports — the same
//! `GcStats` (total cycles, per-core stall attribution, memory and SB
//! counters), the same allocation frontier, the same cycle-stamped SB
//! event stream and trace rows, and the same probe-bus recording —
//! including under schedule policies, which the sparse engine composes
//! with (unlike the PR 2 fast-forward, which they suppress).
//!
//! The matrix rides the `HWGC_JOBS` worker pool; every pair is an
//! independent simulation. `sparse: true` is explicit everywhere so the
//! differential still bites when CI exports `HWGC_SPARSE=0`.

use hwgc_check::{graphs, par_map};
use hwgc_core::schedule::{Adversarial, RandomOrder, SchedulePolicy};
use hwgc_core::{EngineKind, GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Heap;
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_obs::Recorder;
use hwgc_workloads::{Preset, WorkloadSpec};

fn sparse_config(cores: usize, extra: u32) -> GcConfig {
    GcConfig {
        mem: MemConfig::default().with_extra_latency(extra),
        // Pinned: the unpinned default auto-selects the naive loop at a
        // single core (see `GcConfig::effective_engine`), which would
        // quietly turn the 1-core legs into naive-vs-naive.
        engine: Some(EngineKind::Sparse),
        sparse: true,
        ..GcConfig::with_cores(cores)
    }
}

fn naive_config(cores: usize, extra: u32) -> GcConfig {
    GcConfig {
        engine: Some(EngineKind::Naive),
        sparse: false,
        fast_forward: false,
        ..sparse_config(cores, extra)
    }
}

fn with_backend(mut cfg: GcConfig, backend: MemBackendKind) -> GcConfig {
    cfg.mem = cfg.mem.with_backend(backend);
    cfg
}

/// The DRAM leg of the backend axis: the default open-page model and the
/// fastest preset under closed-page (different latency shape per access,
/// exercising the conflict/precharge paths of the horizon contracts).
fn dram_backends() -> [(&'static str, MemBackendKind); 2] {
    [
        ("dram-open", MemBackendKind::Dram(DramConfig::default())),
        (
            "dram-closed",
            MemBackendKind::Dram(DramConfig {
                page_policy: PagePolicy::Closed,
                ..DramConfig::preset("80ns").expect("preset exists")
            }),
        ),
    ]
}

#[test]
fn every_preset_is_bit_exact_under_sparse() {
    let mut combos: Vec<(Preset, usize, u32)> = Vec::new();
    for preset in Preset::ALL {
        for cores in [1usize, 4, 16] {
            // Default latency (lock-bound parks) and the Figure 6 regime
            // (+20 per access, memory-bound parks).
            for extra in [0u32, 20] {
                combos.push((preset, cores, extra));
            }
        }
    }
    par_map(&combos, |_, &(preset, cores, extra)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut sparse_heap = base.clone();
        let mut naive_heap = base;
        let sparse = SimCollector::new(sparse_config(cores, extra)).collect(&mut sparse_heap);
        let naive = SimCollector::new(naive_config(cores, extra)).collect(&mut naive_heap);
        assert_eq!(
            sparse.stats,
            naive.stats,
            "{}/{cores}c +{extra}: stats diverged under sparse",
            preset.name()
        );
        assert_eq!(
            sparse.free,
            naive.free,
            "{}/{cores}c +{extra}: allocation frontier diverged",
            preset.name()
        );
    });
}

/// Backend axis of the parity matrix: the sparse engine must stay
/// bit-exact when per-access latency is bank/row dependent. DRAM retire
/// calendars are sparser and more irregular than the fixed model's, so
/// this is the hardest regime for the horizon contracts.
#[test]
fn every_preset_is_bit_exact_under_sparse_with_dram_backend() {
    let mut combos: Vec<(Preset, usize, MemBackendKind, &'static str)> = Vec::new();
    for preset in Preset::ALL {
        for cores in [1usize, 4, 16] {
            for (name, backend) in dram_backends() {
                combos.push((preset, cores, backend, name));
            }
        }
    }
    par_map(&combos, |_, &(preset, cores, backend, name)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut sparse_heap = base.clone();
        let mut naive_heap = base;
        let sparse = SimCollector::new(with_backend(sparse_config(cores, 0), backend))
            .collect(&mut sparse_heap);
        let naive = SimCollector::new(with_backend(naive_config(cores, 0), backend))
            .collect(&mut naive_heap);
        assert_eq!(
            sparse.stats,
            naive.stats,
            "{}/{cores}c/{name}: stats diverged under sparse",
            preset.name()
        );
        assert_eq!(
            sparse.free,
            naive.free,
            "{}/{cores}c/{name}: allocation frontier diverged",
            preset.name()
        );
    });
}

/// SB event-stream and trace-row parity under the DRAM backend, on the
/// adversarial graph catalog (lock convoys + bank conflicts together).
#[test]
fn catalog_graphs_preserve_the_sb_event_stream_under_sparse_with_dram() {
    let catalog: Vec<(&'static str, Heap)> = graphs::catalog();
    par_map(&catalog, |_, (name, heap)| {
        for cores in [1usize, 4, 16] {
            for (backend_name, backend) in dram_backends() {
                let mut sparse_heap = heap.clone();
                let mut naive_heap = heap.clone();
                let mut sparse_trace = SignalTrace::with_events(1 << 40);
                let mut naive_trace = SignalTrace::with_events(1 << 40);
                let sparse = SimCollector::new(with_backend(sparse_config(cores, 0), backend))
                    .collect_traced(&mut sparse_heap, &mut sparse_trace);
                let naive = SimCollector::new(with_backend(naive_config(cores, 0), backend))
                    .collect_traced(&mut naive_heap, &mut naive_trace);
                assert_eq!(
                    sparse.stats, naive.stats,
                    "{name}/{cores}c/{backend_name}: stats diverged under sparse"
                );
                assert_eq!(
                    sparse.free, naive.free,
                    "{name}/{cores}c/{backend_name}: allocation frontier diverged"
                );
                assert_eq!(
                    sparse_trace.events(),
                    naive_trace.events(),
                    "{name}/{cores}c/{backend_name}: SB event streams diverged"
                );
                assert_eq!(
                    sparse_trace.rows(),
                    naive_trace.rows(),
                    "{name}/{cores}c/{backend_name}: sampled trace rows diverged"
                );
            }
        }
    });
}

#[test]
fn every_catalog_graph_preserves_the_sb_event_stream_under_sparse() {
    let catalog: Vec<(&'static str, Heap)> = graphs::catalog();
    par_map(&catalog, |_, (name, heap)| {
        for cores in [1usize, 4, 16] {
            let mut sparse_heap = heap.clone();
            let mut naive_heap = heap.clone();
            // Event capture forbids parking the lock classes (each
            // per-cycle failure logs an event), so this exercises the
            // restricted park catalog; streams must match record for
            // record.
            let mut sparse_trace = SignalTrace::with_events(1 << 40);
            let mut naive_trace = SignalTrace::with_events(1 << 40);
            let sparse = SimCollector::new(sparse_config(cores, 0))
                .collect_traced(&mut sparse_heap, &mut sparse_trace);
            let naive = SimCollector::new(naive_config(cores, 0))
                .collect_traced(&mut naive_heap, &mut naive_trace);
            assert_eq!(
                sparse.stats, naive.stats,
                "{name}/{cores}c: stats diverged under sparse"
            );
            assert_eq!(
                sparse.free, naive.free,
                "{name}/{cores}c: allocation frontier diverged"
            );
            assert_eq!(
                sparse_trace.events(),
                naive_trace.events(),
                "{name}/{cores}c: SB event streams diverged"
            );
            assert_eq!(
                sparse_trace.rows(),
                naive_trace.rows(),
                "{name}/{cores}c: sampled trace rows diverged"
            );
        }
    });
}

/// The sweep-smoke differential: schedule-policy runs are *unchanged* by
/// the sparse engine. Policies reorder only runnable cores and their
/// per-cycle `arrange` stream is replayed through clock jumps, so every
/// (policy, seed, cores) combination times out identically.
#[test]
fn schedule_policy_sweeps_are_unchanged_under_sparse() {
    let mut combos: Vec<(u8, u64, usize, u32)> = Vec::new();
    for kind in [0u8, 1] {
        for seed in [0x5EEDu64, 0xFACE, 42] {
            for cores in [2usize, 4, 16] {
                for extra in [0u32, 20] {
                    combos.push((kind, seed, cores, extra));
                }
            }
        }
    }
    par_map(&combos, |_, &(kind, seed, cores, extra)| {
        let mk = |s: u64| -> Box<dyn SchedulePolicy> {
            match kind {
                0 => Box::new(RandomOrder::new(s)),
                _ => Box::new(Adversarial::new(s)),
            }
        };
        let base = WorkloadSpec::new(Preset::Javac, 42).build();
        let mut sparse_heap = base.clone();
        let mut naive_heap = base;
        let mut p1 = mk(seed);
        let mut p2 = mk(seed);
        let sparse = SimCollector::new(sparse_config(cores, extra))
            .collect_scheduled(&mut sparse_heap, p1.as_mut());
        let naive = SimCollector::new(naive_config(cores, extra))
            .collect_scheduled(&mut naive_heap, p2.as_mut());
        assert_eq!(
            sparse.stats,
            naive.stats,
            "{}/{seed:#x}/{cores}c +{extra}: scheduled stats diverged under sparse",
            p1.name()
        );
        assert_eq!(sparse.free, naive.free);
    });
}

/// Probe-bus parity: the full recording (stall spans, state edges,
/// worklist claims, samples, SB events) is bit-identical, with both a
/// sampling recorder — which forces the sparse jump to land on sample
/// cycles — and a transition-only one.
#[test]
fn probe_recordings_are_identical_under_sparse() {
    let mut combos: Vec<(usize, u32, Option<u64>)> = Vec::new();
    for cores in [1usize, 4, 16] {
        for extra in [0u32, 20] {
            for sample in [Some(64u64), None] {
                combos.push((cores, extra, sample));
            }
        }
    }
    par_map(&combos, |_, &(cores, extra, sample)| {
        let mk = || match sample {
            Some(n) => Recorder::sampling(n),
            None => Recorder::new(),
        };
        let base = WorkloadSpec::new(Preset::Javac, 42).build();
        let mut sparse_heap = base.clone();
        let mut naive_heap = base;
        let mut r1 = mk();
        let mut r2 = mk();
        let sparse = SimCollector::new(sparse_config(cores, extra))
            .collect_probed(&mut sparse_heap, &mut r1);
        let naive =
            SimCollector::new(naive_config(cores, extra)).collect_probed(&mut naive_heap, &mut r2);
        assert_eq!(sparse.stats, naive.stats, "{cores}c +{extra} {sample:?}");
        assert_eq!(
            r1.recording().events,
            r2.recording().events,
            "{cores}c +{extra} {sample:?}: probe recordings diverged"
        );
    });
}
