//! Trace-lint integration: real collections lint clean; deliberately
//! injected invariant violations are detected at their exact cycle
//! (the ISSUE's mutation-test acceptance criterion).

use hwgc_check::graphs;
use hwgc_check::lint::{lint_trace, Violation};
use hwgc_core::schedule::Adversarial;
use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_sync::{SbEvent, SbEventRecord};

fn traced_collection(heap_name: &str, mut heap: hwgc_heap::Heap, cores: usize) -> SignalTrace {
    let mut trace = SignalTrace::with_events(1);
    let mut policy = Adversarial::new(0xBEEF);
    SimCollector::new(GcConfig::with_cores(cores)).collect_scheduled_traced(
        &mut heap,
        &mut policy,
        &mut trace,
    );
    assert!(
        !trace.events().is_empty(),
        "{heap_name}: no events captured"
    );
    trace
}

#[test]
fn real_collections_lint_clean() {
    for (name, heap) in graphs::catalog() {
        for cores in [1, 4, 16] {
            let trace = traced_collection(name, heap.clone(), cores);
            let violations = lint_trace(&trace);
            assert!(
                violations.is_empty(),
                "{name} at {cores} cores: {}",
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
}

/// The mutation test: forge a second `LockHeader` for an address another
/// core already holds, and assert the lint reports the double lock at
/// exactly the forged cycle.
#[test]
fn injected_double_header_lock_is_reported_at_its_cycle() {
    let mut trace = traced_collection("shared_hub", graphs::shared_hub(48), 4);
    let mut events = trace.events().to_vec();
    // Find a real acquisition and inject a conflicting one from another
    // core one cycle later, before the genuine unlock.
    let (idx, victim_cycle, victim_addr, victim_core) = events
        .iter()
        .enumerate()
        .find_map(|(i, r)| match r.event {
            SbEvent::LockHeader { core, addr } => Some((i, r.cycle, addr, core)),
            _ => None,
        })
        .expect("no header lock in a 48-spoke hub collection");
    let forged_cycle = victim_cycle + 1;
    let forged_core = (victim_core + 1) % 4;
    events.insert(
        idx + 1,
        SbEventRecord {
            cycle: forged_cycle,
            event: SbEvent::LockHeader {
                core: forged_core,
                addr: victim_addr,
            },
        },
    );
    trace.set_events(events);

    let violations = lint_trace(&trace);
    let double = violations
        .iter()
        .find_map(|v| match v {
            Violation::DoubleHeaderLock {
                cycle,
                addr,
                holder,
                core,
            } => Some((*cycle, *addr, *holder, *core)),
            _ => None,
        })
        .expect("injected double header lock not detected");
    assert_eq!(
        double,
        (forged_cycle, victim_addr, victim_core, forged_core),
        "double lock misattributed"
    );
}

/// Forging a `free` movement without the lock (the invariant-3 mutation)
/// is caught, cycle included.
#[test]
fn injected_unlocked_free_write_is_reported() {
    let mut trace = traced_collection("deep_list", graphs::deep_list(64), 2);
    let mut events = trace.events().to_vec();
    // After the last genuine event, append an unlocked free write.
    let last_cycle = events.last().unwrap().cycle;
    events.push(SbEventRecord {
        cycle: last_cycle + 3,
        event: SbEvent::SetFree {
            core: 1,
            from: 0,
            to: 4,
        },
    });
    trace.set_events(events);
    let violations = lint_trace(&trace);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::SetWithoutLock { core: 1, .. } if v.cycle() == last_cycle + 3
        )),
        "unlocked free write not detected: {violations:?}"
    );
}

/// Forging an early termination while a busy bit is still set (the
/// invariant-1/termination mutation) is caught.
#[test]
fn injected_premature_termination_is_reported() {
    let mut trace = traced_collection("diamond_mesh", graphs::diamond_mesh(12), 4);
    let mut events = trace.events().to_vec();
    // Insert a termination claim right after the first SetBusy, while the
    // worklist is non-empty and the busy bit is set.
    let idx = events
        .iter()
        .position(|r| matches!(r.event, SbEvent::SetBusy { .. }))
        .expect("no busy bit set during collection");
    let cycle = events[idx].cycle;
    let busy_core = match events[idx].event {
        SbEvent::SetBusy { core } => core,
        _ => unreachable!(),
    };
    let claimant = (busy_core + 1) % 4;
    events.insert(
        idx + 1,
        SbEventRecord {
            cycle,
            event: SbEvent::Termination { core: claimant },
        },
    );
    trace.set_events(events);
    let violations = lint_trace(&trace);
    let hit = violations
        .iter()
        .find(|v| matches!(v, Violation::PrematureTermination { .. }))
        .unwrap_or_else(|| panic!("premature termination not detected: {violations:?}"));
    assert_eq!(hit.cycle(), cycle);
}
