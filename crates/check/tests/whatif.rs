//! Predictor-vs-simulator differential: the what-if bottleneck
//! predictions (`hwgc_obs::predict`, derived analytically from one
//! probed run's blame matrix) must track *actually re-running* the
//! simulator with each resource relaxed.
//!
//! For every modeled resource the relaxation has an exact configuration
//! counterpart:
//!
//! | prediction               | ablation re-run                         |
//! |--------------------------|-----------------------------------------|
//! | `multiport_sb`           | `GcConfig::multiport_sb = true`         |
//! | `dram_bandwidth_plus_1`  | `MemConfig::bandwidth + 1`              |
//! | `header_fifo_depth`      | `MemConfig::header_fifo_capacity` large |
//!
//! The acceptance budget is 15% **relative error on the predicted
//! speedup** against the measured speedup of the re-run, per resource,
//! across contention regimes of the reduced Figure-6 catalog (the
//! trace-smoke configuration, a FIFO-starved variant, and a lock-heavy
//! many-core run).

use hwgc_core::{GcConfig, GcOutcome, SimCollector};
use hwgc_heap::{verify_collection, Snapshot};
use hwgc_memsim::MemConfig;
use hwgc_obs::{Recorder, Recording, RunMeta, RunReport};
use hwgc_workloads::{Preset, WorkloadSpec};

/// Relative-error budget on predicted vs. measured speedup.
const BUDGET: f64 = 0.15;

fn probed(spec: &WorkloadSpec, cfg: GcConfig, label: &str) -> (GcOutcome, Recording) {
    let mut heap = spec.build();
    let snap = Snapshot::capture(&heap);
    let mut recorder = Recorder::new();
    let out = SimCollector::new(cfg).collect_probed(&mut heap, &mut recorder);
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    (out, recorder.into_recording())
}

fn rerun(spec: &WorkloadSpec, cfg: GcConfig, label: &str) -> GcOutcome {
    let mut heap = spec.build();
    let snap = Snapshot::capture(&heap);
    let out = SimCollector::new(cfg).collect(&mut heap);
    verify_collection(&heap, out.free, &snap)
        .unwrap_or_else(|e| panic!("{label} failed verification: {e}"));
    out
}

/// The ablated configuration a prediction claims to model.
fn ablated(base: GcConfig, resource: &str) -> GcConfig {
    match resource {
        "multiport_sb" => GcConfig {
            multiport_sb: true,
            ..base
        },
        "dram_bandwidth_plus_1" => GcConfig {
            mem: MemConfig {
                bandwidth: base.mem.bandwidth + 1,
                ..base.mem
            },
            ..base
        },
        "header_fifo_depth" => GcConfig {
            mem: MemConfig {
                header_fifo_capacity: 1 << 20,
                ..base.mem
            },
            ..base
        },
        other => panic!("unmodeled resource {other}"),
    }
}

/// Predict on `base`, re-run each ablation, compare speedups.
fn check_config(name: &str, spec: &WorkloadSpec, base: GcConfig) {
    let (out, recording) = probed(spec, base, name);
    let meta = RunMeta {
        name: name.to_string(),
        n_cores: base.n_cores,
        total_cycles: out.stats.total_cycles,
    };
    let report = RunReport::analyze(&recording, &meta, base.mem.bandwidth);
    report.validate().unwrap();
    assert_eq!(report.predictions.len(), 3, "all three resources modeled");
    for p in &report.predictions {
        let actual = rerun(spec, ablated(base, p.resource), name);
        let actual_speedup = out.stats.total_cycles as f64 / actual.stats.total_cycles as f64;
        let err = (p.predicted_speedup - actual_speedup).abs() / actual_speedup;
        println!(
            "{name}/{}: predicted {:.4}x, measured {:.4}x ({} -> {} cycles), err {:.1}%",
            p.resource,
            p.predicted_speedup,
            actual_speedup,
            out.stats.total_cycles,
            actual.stats.total_cycles,
            err * 100.0
        );
        assert!(
            err <= BUDGET,
            "{name}/{}: predicted speedup {:.4} vs measured {:.4} — relative error {:.1}% \
             exceeds the {:.0}% budget",
            p.resource,
            p.predicted_speedup,
            actual_speedup,
            err * 100.0,
            BUDGET * 100.0
        );
    }
}

fn reduced(preset: Preset) -> WorkloadSpec {
    WorkloadSpec {
        preset,
        seed: 42,
        scale: 0.2,
    }
}

#[test]
fn predictions_track_ablations_on_the_fig6_config() {
    // The trace-smoke configuration: javac at 0.2 scale, +20 cycles
    // memory latency, 4 cores.
    let cfg = GcConfig {
        n_cores: 4,
        mem: MemConfig::default().with_extra_latency(20),
        ..GcConfig::default()
    };
    check_config("javac/+20/4c", &reduced(Preset::Javac), cfg);
}

#[test]
fn predictions_track_ablations_when_the_fifo_starves() {
    // cup with a cramped header FIFO: `header_fifo_depth` is the
    // dominant prediction and must match the deep-FIFO re-run.
    let cfg = GcConfig {
        n_cores: 8,
        mem: MemConfig {
            header_fifo_capacity: 128,
            ..MemConfig::default()
        },
        ..GcConfig::default()
    };
    check_config("cup/fifo128/8c", &reduced(Preset::Cup), cfg);
}

#[test]
fn predictions_track_ablations_under_write_port_pressure() {
    // jlisp at 16 cores: evacuation-dense, so the scan/free write port
    // queues — the regime `multiport_sb` models.
    let cfg = GcConfig::with_cores(16);
    check_config("jlisp/16c", &reduced(Preset::Jlisp), cfg);
}
