//! Differential oracle over the full graph catalog: the sequential
//! reference, the simulated collector (all configuration axes) and the
//! four software collectors must agree on every adversarial shape.

use hwgc_check::{differential, graphs};
use hwgc_heap::MAX_FIELD;

#[test]
fn catalog_shapes_agree_across_all_collectors() {
    for (name, heap) in graphs::catalog() {
        let outcome = differential(name, &heap);
        assert!(outcome.runs >= 25, "{name}: only {} runs", outcome.runs);
        assert!(outcome.live_objects > 0, "{name}");
    }
}

#[test]
fn max_fanout_object_agrees_across_all_collectors() {
    // The widest object the header encoding supports: one root with 4095
    // pointer slots. A single scan floods the work list.
    let heap = graphs::wide_fanout(MAX_FIELD);
    let outcome = differential("wide_fanout(max)", &heap);
    assert_eq!(outcome.live_objects, MAX_FIELD as usize + 1);
}

#[test]
fn random_mixes_agree_across_seeds() {
    for seed in [3u64, 0x1234_5678, u64::MAX] {
        let heap = graphs::random_mix(seed, 128);
        differential(&format!("random_mix({seed:#x})"), &heap);
    }
}
