//! Differential contract of the content-addressed result cache (the PR 9
//! acceptance gate): with `HWGC_CACHE=off` vs `rw`, every job produces a
//! digest-identical `GcOutcome`; a warm cache serves hits without
//! simulating; `verify` mode catches an injected stale record; and the
//! payload codec round-trips `GcStats` digest-exactly — including the
//! DRAM sub-stats the fixed backend omits.
//!
//! Tests never mutate the process environment (it is shared mutable
//! state across the test harness's threads): caches are opened with
//! explicit modes and paths, and the parallel legs ride `par_map`'s
//! default worker pool.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use hwgc_check::{outcome_from_json, outcome_to_json, par_map, CacheError, CacheMode, ResultCache};
use hwgc_core::{EngineKind, GcConfig, GcOutcome, SimCollector};
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig};
use hwgc_obs::json::Json;
use hwgc_obs::{JobOutcome, LedgerRecord, LedgerStore};
use hwgc_workloads::{Preset, WorkloadSpec};

/// The job matrix: small but engine/backend/core diverse.
fn matrix() -> Vec<(Preset, usize, bool)> {
    vec![
        (Preset::Compress, 1, false),
        (Preset::Compress, 4, false),
        (Preset::Javac, 4, false),
        (Preset::Javac, 4, true),
        (Preset::Jlisp, 16, false),
    ]
}

fn config(cores: usize, dram: bool) -> GcConfig {
    let mem = if dram {
        MemConfig::default().with_backend(MemBackendKind::Dram(DramConfig::default()))
    } else {
        MemConfig::default().with_extra_latency(20)
    };
    GcConfig {
        mem,
        engine: Some(EngineKind::Sparse),
        sparse: true,
        ..GcConfig::with_cores(cores)
    }
}

fn simulate(preset: Preset, cores: usize, dram: bool) -> GcOutcome {
    let mut heap = WorkloadSpec::new(preset, 42).build();
    SimCollector::new(config(cores, dram)).collect(&mut heap)
}

/// The ledger identity of one matrix job (outputs left empty — the cache
/// fills them).
fn key(preset: Preset, cores: usize, dram: bool) -> LedgerRecord {
    LedgerRecord {
        binary: "cache_test".to_string(),
        workload: format!("{preset:?}/seed42"),
        engine: "sparse".to_string(),
        backend: if dram { "dram" } else { "fixed" }.to_string(),
        config: vec![
            ("n_cores".to_string(), cores.to_string()),
            ("dram".to_string(), dram.to_string()),
        ],
        env: Vec::new(),
        ..LedgerRecord::default()
    }
}

fn temp_cache_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hwgc_cache_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn payload_codec_round_trips_digest_exactly() {
    // Fixed and DRAM backends: the latter populates `mem.dram`, the
    // codec's only optional substructure.
    for (preset, cores, dram) in matrix() {
        let outcome = simulate(preset, cores, dram);
        let encoded = outcome_to_json(&outcome).to_string_compact();
        let decoded = outcome_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.free, outcome.free);
        assert_eq!(decoded.stats, outcome.stats);
        assert_eq!(decoded.stats.digest(), outcome.stats.digest());
        assert_eq!(decoded.stats.mem.dram.is_some(), dram);
    }
}

#[test]
fn off_vs_rw_is_bit_exact_and_warm_cache_hits() {
    let path = temp_cache_file("off_vs_rw");
    let jobs = matrix();

    // Leg 1: cache off — the reference digests.
    let off = ResultCache::disabled();
    let reference: Vec<GcOutcome> = par_map(&jobs, |_, &(p, c, d)| {
        let (out, how) = off.run_cached(&key(p, c, d), || simulate(p, c, d)).unwrap();
        assert_eq!(how, JobOutcome::Miss);
        out
    });
    assert_eq!(off.counters().misses, jobs.len());

    // Leg 2: cold rw cache — all misses, digest-identical, payloads
    // appended.
    let cold = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let cold_results: Vec<GcOutcome> = par_map(&jobs, |_, &(p, c, d)| {
        let (out, how) = cold
            .run_cached(&key(p, c, d), || simulate(p, c, d))
            .unwrap();
        assert_eq!(how, JobOutcome::Miss);
        out
    });
    assert_eq!(cold.counters().misses, jobs.len());

    // Leg 3: warm rw cache — all hits, nothing simulated, still
    // digest-identical.
    let warm = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    assert_eq!(warm.records_loaded(), jobs.len());
    let simulated = AtomicUsize::new(0);
    let warm_results: Vec<GcOutcome> = par_map(&jobs, |_, &(p, c, d)| {
        let (out, how) = warm
            .run_cached(&key(p, c, d), || {
                simulated.fetch_add(1, Ordering::Relaxed);
                simulate(p, c, d)
            })
            .unwrap();
        assert_eq!(how, JobOutcome::Hit);
        out
    });
    assert_eq!(
        simulated.load(Ordering::Relaxed),
        0,
        "hits must not simulate"
    );
    assert_eq!(warm.counters().hits, jobs.len());

    for ((a, b), c) in reference.iter().zip(&cold_results).zip(&warm_results) {
        assert_eq!(a.stats.digest(), b.stats.digest());
        assert_eq!(a.stats.digest(), c.stats.digest());
        assert_eq!(a.free, c.free);
        assert_eq!(a.stats, c.stats);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn verify_mode_catches_an_injected_stale_record() {
    let path = temp_cache_file("stale");
    let (p, c, d) = (Preset::Compress, 4, false);

    // Inject a *plausible* stale record: internally consistent (payload
    // digest matches the record's stats_digest) but recording a different
    // configuration's result under this configuration's key — exactly
    // what a cache poisoned by a simulator change looks like.
    let other = simulate(Preset::Javac, 4, false);
    let mut stale = key(p, c, d);
    stale.stats_digest = other.stats.digest();
    stale.total_cycles = Some(other.stats.total_cycles);
    stale.result = Some(outcome_to_json(&other));
    stale.append_jsonl(&path).unwrap();

    // Plain rw mode trusts the internally-consistent record (that is the
    // point of verify mode existing).
    let trusting = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let (out, how) = trusting
        .run_cached(&key(p, c, d), || simulate(p, c, d))
        .unwrap();
    assert_eq!(how, JobOutcome::Hit);
    assert_eq!(out.stats.digest(), other.stats.digest());

    // Verify mode with 100% sampling re-simulates and must refuse.
    let paranoid = ResultCache::open(CacheMode::Verify, &[], Some(&path))
        .unwrap()
        .with_verify_sampling(100, 0);
    let err = paranoid
        .run_cached(&key(p, c, d), || simulate(p, c, d))
        .unwrap_err();
    match err {
        CacheError::StaleRecord {
            verified,
            recorded,
            fresh,
            ..
        } => {
            assert!(verified);
            assert_eq!(recorded, other.stats.digest());
            assert_eq!(fresh, simulate(p, c, d).stats.digest());
        }
        other => panic!("expected StaleRecord, got {other:?}"),
    }

    // 0% sampling means verify degrades to rw (the sampling knob works).
    let sampled_out = ResultCache::open(CacheMode::Verify, &[], Some(&path))
        .unwrap()
        .with_verify_sampling(0, 0);
    let (_, how) = sampled_out
        .run_cached(&key(p, c, d), || simulate(p, c, d))
        .unwrap();
    assert_eq!(how, JobOutcome::Hit);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_payload_is_rejected_even_on_a_plain_hit() {
    let path = temp_cache_file("corrupt");
    let (p, c, d) = (Preset::Compress, 1, false);
    let real = simulate(p, c, d);
    let mut rec = key(p, c, d);
    rec.stats_digest = real.stats.digest();
    // Payload tampered after the digest was recorded.
    let mut tampered = real.clone();
    tampered.stats.total_cycles += 1;
    rec.result = Some(outcome_to_json(&tampered));
    rec.append_jsonl(&path).unwrap();

    let cache = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let err = cache
        .run_cached(&key(p, c, d), || simulate(p, c, d))
        .unwrap_err();
    assert!(matches!(err, CacheError::CorruptPayload { .. }), "{err:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn digest_only_records_become_regression_assertions() {
    // The committed BENCH_ledger.jsonl shape: digest, no payload. The
    // default ro mode must still simulate, then cross-check.
    let path = temp_cache_file("digest_only");
    let (p, c, d) = (Preset::Jlisp, 4, false);
    let real = simulate(p, c, d);
    let mut rec = key(p, c, d);
    rec.stats_digest = real.stats.digest();
    rec.total_cycles = Some(real.stats.total_cycles);
    rec.append_jsonl(&path).unwrap();

    let cache = ResultCache::open(CacheMode::Ro, &[&path], None).unwrap();
    let simulated = AtomicUsize::new(0);
    let (out, how) = cache
        .run_cached(&key(p, c, d), || {
            simulated.fetch_add(1, Ordering::Relaxed);
            simulate(p, c, d)
        })
        .unwrap();
    assert_eq!(how, JobOutcome::DigestCheck);
    assert_eq!(simulated.load(Ordering::Relaxed), 1);
    assert_eq!(out.stats.digest(), real.stats.digest());
    assert_eq!(cache.counters().digest_checks, 1);

    // A drifted digest-only record must hard-fail the run.
    let mut drifted = rec.clone();
    drifted.stats_digest ^= 1;
    let drifted_path = temp_cache_file("digest_only_drifted");
    drifted.append_jsonl(&drifted_path).unwrap();
    let cache = ResultCache::open(CacheMode::Ro, &[&drifted_path], None).unwrap();
    let err = cache
        .run_cached(&key(p, c, d), || simulate(p, c, d))
        .unwrap_err();
    match err {
        CacheError::StaleRecord { verified, .. } => assert!(!verified),
        other => panic!("expected StaleRecord, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&drifted_path);
}

#[test]
fn conflicting_cache_sources_hard_fail_at_open() {
    let path = temp_cache_file("conflict");
    let mut a = key(Preset::Compress, 4, false);
    a.stats_digest = 7;
    a.append_jsonl(&path).unwrap();
    let mut b = key(Preset::Compress, 4, false);
    b.stats_digest = 8;
    b.append_jsonl(&path).unwrap();
    let err = match ResultCache::open(CacheMode::Ro, &[&path], None) {
        Err(e) => e,
        Ok(_) => panic!("conflicting sources must fail open"),
    };
    assert!(matches!(err, CacheError::Load(_)), "{err:?}");
    assert!(err.to_string().contains("stats_digest"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn parallel_workers_count_and_replay_deterministically() {
    // Hit/miss/verify determinism with par_map's full worker pool
    // (HWGC_JOBS semantics: the pool defaults to available parallelism).
    let path = temp_cache_file("parallel");
    // Duplicate each matrix job 4x: within one cold pass, the first
    // worker to finish a config appends it, but same-process lookups hit
    // the preloaded store only — so every duplicate still simulates
    // (misses), and the appended file holds mergeable duplicates.
    let mut jobs = Vec::new();
    for _ in 0..4 {
        jobs.extend(matrix());
    }
    let cold = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let cold_digests: Vec<u64> = par_map(&jobs, |_, &(p, c, d)| {
        let (out, how) = cold
            .run_cached(&key(p, c, d), || simulate(p, c, d))
            .unwrap();
        assert_eq!(how, JobOutcome::Miss);
        out.stats.digest()
    });
    assert_eq!(cold.counters().misses, jobs.len());

    // Identical duplicates merge cleanly; the file loads into one record
    // per distinct config.
    let store = LedgerStore::load(&path).unwrap();
    assert_eq!(store.len(), matrix().len());

    // Warm parallel pass: all hits, digests replayed in deterministic
    // input order.
    let warm = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let warm_digests: Vec<u64> = par_map(&jobs, |_, &(p, c, d)| {
        let (out, how) = warm
            .run_cached(&key(p, c, d), || simulate(p, c, d))
            .unwrap();
        assert_eq!(how, JobOutcome::Hit);
        out.stats.digest()
    });
    assert_eq!(warm.counters().hits, jobs.len());
    assert_eq!(cold_digests, warm_digests);
    let _ = std::fs::remove_file(&path);
}
