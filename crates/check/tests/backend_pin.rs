//! Differential regression wall for the `MemBackend` trait refactor.
//!
//! The engine used to drive `MemorySystem` directly; it now goes through
//! the `MemBackend` trait (statically dispatched). That refactor claimed
//! bit-exactness. This file makes the claim permanent:
//!
//! 1. every cycle count in the committed `BENCH_simulator.json` baseline
//!    must still be reproduced *exactly* by the default (fixed-latency)
//!    backend, and
//! 2. on the Figure 6 configuration (+20 cycles per access, the regime
//!    where memory timing dominates), the cycle-stamped SB event stream
//!    must match the committed fingerprint byte for byte.
//!
//! A mismatch here means a semantic change to the default timing model —
//! which invalidates every committed experiment table. If the change is
//! *intentional*, re-run `bench_baseline` to refresh the baseline and
//! update the pinned fingerprint printed in the failure message.

use hwgc_check::par_map;
use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_workloads::{Preset, WorkloadSpec};
use std::fmt::Write as _;

/// Parse the `combos` array of `BENCH_simulator.json` without a JSON
/// dependency: each combo is one line shaped
/// `{"preset": "javac", "cores": 4, "cycles": 106237, ...}`.
fn baseline_combos() -> Vec<(Preset, usize, u64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simulator.json");
    let text = std::fs::read_to_string(path).expect("read BENCH_simulator.json");
    let mut combos = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"preset\": \"") else {
            continue;
        };
        let field = |key: &str| -> u64 {
            let tag = format!("\"{key}\": ");
            let at = rest
                .find(&tag)
                .unwrap_or_else(|| panic!("no {key} in {line}"));
            rest[at + tag.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("numeric field")
        };
        let name: String = rest.chars().take_while(|&c| c != '"').collect();
        let preset = Preset::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("unknown preset {name:?} in baseline"));
        combos.push((preset, field("cores") as usize, field("cycles")));
    }
    assert!(
        combos.len() >= 24,
        "baseline parse found only {} combos — format drift?",
        combos.len()
    );
    combos
}

/// Every committed baseline cycle count, reproduced exactly through the
/// trait-dispatched default backend.
#[test]
fn default_backend_reproduces_the_committed_baseline_exactly() {
    let combos = baseline_combos();
    par_map(&combos, |_, &(preset, cores, want_cycles)| {
        let mut heap = WorkloadSpec::new(preset, 42).build();
        let out = SimCollector::new(GcConfig::with_cores(cores)).collect(&mut heap);
        assert_eq!(
            out.stats.total_cycles,
            want_cycles,
            "{}/{cores}c: trait-dispatched default backend diverged from \
             BENCH_simulator.json — the refactor is no longer bit-exact \
             (or the timing model changed without refreshing the baseline)",
            preset.name()
        );
    });
}

/// FNV-1a, stable and dependency-free; collisions are irrelevant here —
/// the test asks "did anything change", not "what changed".
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Committed fingerprint of the Figure 6 SB event stream (javac, 4
/// cores, +20 cycles per access): (event count, total cycles, FNV-1a of
/// the Debug rendering of every record in order).
const FIG6_EVENTS: usize = 213201;
const FIG6_CYCLES: u64 = 603516;
const FIG6_FNV: u64 = 0xd5ca_4752_de69_1272;

#[test]
fn fig6_sb_event_stream_matches_the_committed_fingerprint() {
    let mut heap = WorkloadSpec::new(Preset::Javac, 42).build();
    let cfg = GcConfig {
        n_cores: 4,
        mem: hwgc_memsim::MemConfig::default().with_extra_latency(20),
        ..GcConfig::default()
    };
    let mut trace = SignalTrace::with_events(1 << 40);
    let out = SimCollector::new(cfg).collect_traced(&mut heap, &mut trace);

    let mut rendered = String::new();
    for rec in trace.events() {
        writeln!(rendered, "{rec:?}").unwrap();
    }
    let got = (
        trace.events().len(),
        out.stats.total_cycles,
        fnv1a(rendered.as_bytes()),
    );
    assert_eq!(
        got,
        (FIG6_EVENTS, FIG6_CYCLES, FIG6_FNV),
        "fig6 SB event stream diverged from the committed fingerprint \
         (got {} events, {} cycles, fnv {:#018x}). If the timing change is \
         intentional, refresh BENCH_simulator.json via bench_baseline and \
         update FIG6_EVENTS/FIG6_CYCLES/FIG6_FNV to these values.",
        got.0,
        got.1,
        got.2
    );
}
