//! Differential check of the event-horizon fast-forward: on every
//! workload preset and every adversarial graph in the catalog, the
//! fast-forwarding engine must report *exactly* what the naive per-cycle
//! loop reports — the same `GcStats` (total cycles, stall attribution,
//! memory and SB counters), the same allocation frontier, and, where the
//! SB event log is captured, the same cycle-stamped event stream.
//!
//! The workload matrix rides the `HWGC_JOBS` worker pool; every pair is
//! an independent simulation.

use hwgc_check::{graphs, par_map};
use hwgc_core::{GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Heap;
use hwgc_workloads::{Preset, WorkloadSpec};

fn ff_config(cores: usize) -> GcConfig {
    // The sparse engine is pinned off on both sides: this differential
    // isolates the event-horizon fast-forward against the naive loop
    // (the sparse engine has its own matrix in `tests/sparse.rs`).
    let cfg = GcConfig {
        sparse: false,
        ..GcConfig::with_cores(cores)
    };
    assert!(cfg.fast_forward, "fast-forward must be the default");
    cfg
}

fn naive_config(cores: usize) -> GcConfig {
    GcConfig {
        fast_forward: false,
        ..ff_config(cores)
    }
}

#[test]
fn every_preset_is_bit_exact_under_fast_forward() {
    let mut pairs: Vec<(Preset, usize)> = Vec::new();
    for preset in Preset::ALL {
        for cores in [1usize, 4, 16] {
            pairs.push((preset, cores));
        }
    }
    par_map(&pairs, |_, &(preset, cores)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut fast_heap = base.clone();
        let mut naive_heap = base;
        let fast = SimCollector::new(ff_config(cores)).collect(&mut fast_heap);
        let naive = SimCollector::new(naive_config(cores)).collect(&mut naive_heap);
        assert_eq!(
            fast.stats,
            naive.stats,
            "{}/{cores}c: stats diverged under fast-forward",
            preset.name()
        );
        assert_eq!(
            fast.free,
            naive.free,
            "{}/{cores}c: allocation frontier diverged",
            preset.name()
        );
    });
}

#[test]
fn every_catalog_graph_preserves_the_sb_event_stream() {
    let catalog: Vec<(&'static str, Heap)> = graphs::catalog();
    par_map(&catalog, |_, (name, heap)| {
        for cores in [1usize, 4, 16] {
            let mut fast_heap = heap.clone();
            let mut naive_heap = heap.clone();
            // Event capture forces k = 0 whenever a skipped window would
            // drop per-cycle lock-failure events, so the streams must
            // match record for record.
            let mut fast_trace = SignalTrace::with_events(1 << 40);
            let mut naive_trace = SignalTrace::with_events(1 << 40);
            let fast =
                SimCollector::new(ff_config(cores)).collect_traced(&mut fast_heap, &mut fast_trace);
            let naive = SimCollector::new(naive_config(cores))
                .collect_traced(&mut naive_heap, &mut naive_trace);
            assert_eq!(
                fast.stats, naive.stats,
                "{name}/{cores}c: stats diverged under fast-forward"
            );
            assert_eq!(
                fast.free, naive.free,
                "{name}/{cores}c: allocation frontier diverged"
            );
            assert_eq!(
                fast_trace.events(),
                naive_trace.events(),
                "{name}/{cores}c: SB event streams diverged"
            );
            assert_eq!(
                fast_trace.rows(),
                naive_trace.rows(),
                "{name}/{cores}c: sampled trace rows diverged"
            );
        }
    });
}
