//! Differential matrix for the parallel window engine (the PR 7
//! acceptance contract): `EngineKind::Par` — the sparse loop plus
//! conservative time windows with host-thread copy fan-out — must report
//! *exactly* what the sparse engine reports on every workload preset ×
//! {1, 4, 16} cores × latency regime, at every host-thread count, and
//! must leave the identical heap image. Where windows cannot soundly
//! open (DRAM backend, schedule policies, tracing), the engine must
//! degrade to the plain sparse loop — still bit-exact.
//!
//! The matrix rides the `HWGC_JOBS` worker pool; every pair is an
//! independent simulation. `engine` is explicit everywhere so the
//! differential still bites when CI exports `HWGC_ENGINE`.

use hwgc_check::{graphs, par_map};
use hwgc_core::{EngineKind, GcConfig, SignalTrace, SimCollector};
use hwgc_heap::Heap;
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_workloads::{Preset, WorkloadSpec};

fn sparse_config(cores: usize, extra: u32) -> GcConfig {
    GcConfig {
        mem: MemConfig::default().with_extra_latency(extra),
        engine: Some(EngineKind::Sparse),
        sparse: true,
        ..GcConfig::with_cores(cores)
    }
}

/// Par with a 1-word copy threshold, so even tiny windows exercise the
/// pool dispatch path when `host_threads > 1`.
fn par_config(cores: usize, extra: u32, host_threads: usize) -> GcConfig {
    GcConfig {
        engine: Some(EngineKind::Par),
        host_threads,
        par_copy_threshold: 1,
        ..sparse_config(cores, extra)
    }
}

fn with_backend(mut cfg: GcConfig, backend: MemBackendKind) -> GcConfig {
    cfg.mem = cfg.mem.with_backend(backend);
    cfg
}

#[test]
fn every_preset_is_bit_exact_under_par() {
    let mut combos: Vec<(Preset, usize, u32)> = Vec::new();
    for preset in Preset::ALL {
        for cores in [1usize, 4, 16] {
            // Default latency (lock-bound parks) and the Figure 6 regime
            // (+20 per access — the window-rich regime).
            for extra in [0u32, 20] {
                combos.push((preset, cores, extra));
            }
        }
    }
    par_map(&combos, |_, &(preset, cores, extra)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut par_heap = base.clone();
        let mut sparse_heap = base;
        let par = SimCollector::new(par_config(cores, extra, 2)).collect(&mut par_heap);
        let sparse = SimCollector::new(sparse_config(cores, extra)).collect(&mut sparse_heap);
        assert_eq!(
            par.stats,
            sparse.stats,
            "{}/{cores}c +{extra}: stats diverged under par",
            preset.name()
        );
        assert_eq!(
            par.free,
            sparse.free,
            "{}/{cores}c +{extra}: allocation frontier diverged",
            preset.name()
        );
        assert_eq!(
            par_heap.words(),
            sparse_heap.words(),
            "{}/{cores}c +{extra}: heap image diverged under par",
            preset.name()
        );
    });
}

/// Every host-thread count must produce the identical collection — the
/// thread pool only moves heap words; nothing timing-visible may depend
/// on the host. The window-rich Figure 6 regime at 16 cores is the
/// hardest case.
#[test]
fn host_thread_count_is_invisible() {
    let combos: Vec<(Preset, usize)> = vec![
        (Preset::Javac, 16),
        (Preset::Compress, 16),
        (Preset::Javac, 4),
    ];
    par_map(&combos, |_, &(preset, cores)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut reference_heap = base.clone();
        let reference = SimCollector::new(par_config(cores, 20, 1)).collect(&mut reference_heap);
        for host_threads in [2usize, 4, 8] {
            let mut heap = base.clone();
            let out = SimCollector::new(par_config(cores, 20, host_threads)).collect(&mut heap);
            assert_eq!(
                out.stats,
                reference.stats,
                "{}/{cores}c: stats changed at {host_threads} host threads",
                preset.name()
            );
            assert_eq!(out.free, reference.free);
            assert_eq!(
                heap.words(),
                reference_heap.words(),
                "{}/{cores}c: heap image changed at {host_threads} host threads",
                preset.name()
            );
        }
    });
}

/// Adversarial graph catalog under plain stats collection — windows on.
#[test]
fn every_catalog_graph_is_bit_exact_under_par() {
    let catalog: Vec<(&'static str, Heap)> = graphs::catalog();
    par_map(&catalog, |_, (name, heap)| {
        for cores in [1usize, 4, 16] {
            for extra in [0u32, 20] {
                let mut par_heap = heap.clone();
                let mut sparse_heap = heap.clone();
                let par = SimCollector::new(par_config(cores, extra, 2)).collect(&mut par_heap);
                let sparse =
                    SimCollector::new(sparse_config(cores, extra)).collect(&mut sparse_heap);
                assert_eq!(
                    par.stats, sparse.stats,
                    "{name}/{cores}c +{extra}: stats diverged under par"
                );
                assert_eq!(par.free, sparse.free);
                assert_eq!(
                    par_heap.words(),
                    sparse_heap.words(),
                    "{name}/{cores}c +{extra}: heap image diverged under par"
                );
            }
        }
    });
}

/// Backend axis: the DRAM backend opts out of windows (`window_ready`
/// is always false there), so par must degrade to the plain sparse loop
/// — bit-exact, windows or not.
#[test]
fn par_degrades_to_sparse_under_the_dram_backend() {
    let backends = [
        ("dram-open", MemBackendKind::Dram(DramConfig::default())),
        (
            "dram-closed",
            MemBackendKind::Dram(DramConfig {
                page_policy: PagePolicy::Closed,
                ..DramConfig::preset("80ns").expect("preset exists")
            }),
        ),
    ];
    let mut combos: Vec<(Preset, usize, MemBackendKind, &'static str)> = Vec::new();
    for preset in [Preset::Javac, Preset::Compress] {
        for cores in [1usize, 16] {
            for (name, backend) in backends {
                combos.push((preset, cores, backend, name));
            }
        }
    }
    par_map(&combos, |_, &(preset, cores, backend, name)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut par_heap = base.clone();
        let mut sparse_heap = base;
        let par = SimCollector::new(with_backend(par_config(cores, 0, 4), backend))
            .collect(&mut par_heap);
        let sparse = SimCollector::new(with_backend(sparse_config(cores, 0), backend))
            .collect(&mut sparse_heap);
        assert_eq!(
            par.stats,
            sparse.stats,
            "{}/{cores}c/{name}: stats diverged under par",
            preset.name()
        );
        assert_eq!(par.free, sparse.free);
        assert_eq!(par_heap.words(), sparse_heap.words());
    });
}

/// Observability axis: tracing logs SB events, which forbids windows
/// (quiet mode), so par under a trace must degrade to the sparse loop —
/// identical stats, event streams and sampled rows.
#[test]
fn par_degrades_to_sparse_under_tracing() {
    let combos: Vec<(Preset, usize)> = vec![(Preset::Javac, 16), (Preset::Db, 4)];
    par_map(&combos, |_, &(preset, cores)| {
        let base = WorkloadSpec::new(preset, 42).build();
        let mut par_heap = base.clone();
        let mut sparse_heap = base;
        let mut par_trace = SignalTrace::with_events(1 << 40);
        let mut sparse_trace = SignalTrace::with_events(1 << 40);
        let par = SimCollector::new(par_config(cores, 20, 4))
            .collect_traced(&mut par_heap, &mut par_trace);
        let sparse = SimCollector::new(sparse_config(cores, 20))
            .collect_traced(&mut sparse_heap, &mut sparse_trace);
        assert_eq!(
            par.stats,
            sparse.stats,
            "{}/{cores}c traced: stats diverged under par",
            preset.name()
        );
        assert_eq!(par.free, sparse.free);
        assert_eq!(
            par_trace.events(),
            sparse_trace.events(),
            "{}/{cores}c traced: SB event streams diverged",
            preset.name()
        );
        assert_eq!(par_trace.rows(), sparse_trace.rows());
    });
}
