//! Differential oracle: every collector in the workspace, run on clones of
//! the same heap, must agree on the functional outcome.
//!
//! The baseline is the sequential Cheney reference ([`SeqCheney`]); against
//! it the oracle runs the cycle-level [`SimCollector`] across core counts,
//! FIFO/header-cache/memory-reordering settings and schedule policies, and
//! the four real-thread software collectors. Agreement means:
//!
//! * the live set (objects and words copied) is identical,
//! * every run passes [`verify_collection`] against the same pre-cycle
//!   [`Snapshot`] — which pins the final root targets to the same object
//!   ids — strict for compacting collectors, relaxed for the fragmenting
//!   software baselines,
//! * compacting collectors produce the same allocation frontier.
//!
//! A disagreement panics with the graph name, the diverging configuration
//! and both outcomes.

use hwgc_core::schedule::{Adversarial, RandomOrder, SchedulePolicy};
use hwgc_core::{GcConfig, SeqCheney, SimCollector};
use hwgc_heap::{verify_collection, verify_collection_relaxed, Heap, Snapshot};
use hwgc_memsim::MemConfig;
use hwgc_swgc::{Chunked, FineGrained, Packets, SwCollector, WorkStealing};

use crate::par::par_map;

/// Summary of one differential run.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Live objects every collector agreed on.
    pub live_objects: usize,
    /// Live words every collector agreed on.
    pub live_words: u64,
    /// Number of collector configurations exercised.
    pub runs: usize,
}

/// The simulated-collector configurations the oracle sweeps: core counts
/// 1–16 at defaults, then FIFO off, header cache on, reordered DRAM
/// service and their combination at contention-prone core counts.
pub fn sim_configs() -> Vec<(String, GcConfig)> {
    let mut configs: Vec<(String, GcConfig)> = Vec::new();
    for cores in [1usize, 2, 4, 8, 16] {
        configs.push((format!("sim/{cores}c"), GcConfig::with_cores(cores)));
    }
    for cores in [2usize, 8] {
        configs.push((
            format!("sim/{cores}c/fifo-off"),
            GcConfig {
                mem: MemConfig {
                    header_fifo_capacity: 0,
                    ..MemConfig::default()
                },
                ..GcConfig::with_cores(cores)
            },
        ));
        configs.push((
            format!("sim/{cores}c/hdr-cache"),
            GcConfig {
                mem: MemConfig {
                    header_cache_entries: 64,
                    ..MemConfig::default()
                },
                ..GcConfig::with_cores(cores)
            },
        ));
        configs.push((
            format!("sim/{cores}c/mem-reorder"),
            GcConfig {
                mem: MemConfig::default().with_service_reorder(0xD15C_0D15),
                ..GcConfig::with_cores(cores)
            },
        ));
        configs.push((
            format!("sim/{cores}c/fifo-off/hdr-cache/mem-reorder"),
            GcConfig {
                mem: MemConfig {
                    header_fifo_capacity: 0,
                    header_cache_entries: 64,
                    ..MemConfig::default()
                }
                .with_service_reorder(0xFEED),
                ..GcConfig::with_cores(cores)
            },
        ));
    }
    configs
}

/// Run every collector on clones of `heap` and check agreement. Panics
/// (with `name` and the diverging configuration) on any disagreement.
pub fn differential(name: &str, heap: &Heap) -> OracleOutcome {
    let snapshot = Snapshot::capture(heap);
    let mut runs = 0;

    // --- sequential reference -----------------------------------------
    let mut seq_heap = heap.clone();
    let seq = SeqCheney::new().collect(&mut seq_heap);
    verify_collection(&seq_heap, seq.free, &snapshot)
        .unwrap_or_else(|e| panic!("{name}: seq reference failed verification: {e}"));
    assert_eq!(
        seq.objects_copied as usize,
        snapshot.live_objects(),
        "{name}: seq live-object count disagrees with the snapshot"
    );
    assert_eq!(
        seq.words_copied, snapshot.live_words,
        "{name}: seq live words"
    );
    runs += 1;

    // --- simulated collector across configurations --------------------
    // Every remaining run owns its heap clone, so the three sections fan
    // out on the `HWGC_JOBS` worker pool; checks still name the exact
    // diverging configuration because each closure carries its label.
    let configs = sim_configs();
    runs += par_map(&configs, |_, (cfg_name, cfg)| {
        let mut h = heap.clone();
        let out = SimCollector::new(*cfg).collect(&mut h);
        check_sim(name, cfg_name, &h, &snapshot, &seq, out.free, &out.stats);
    })
    .len();

    // --- simulated collector under schedule policies -------------------
    let policy_runs: Vec<(u64, bool)> = [1u64, 0xACE5]
        .into_iter()
        .flat_map(|seed| [(seed, false), (seed, true)])
        .collect();
    runs += par_map(&policy_runs, |_, &(seed, adversarial)| {
        let mut policy: Box<dyn SchedulePolicy> = if adversarial {
            Box::new(Adversarial::new(seed))
        } else {
            Box::new(RandomOrder::new(seed))
        };
        let cfg_name = format!("sim/4c/{}/{seed:#x}", policy.name());
        let mut h = heap.clone();
        let out =
            SimCollector::new(GcConfig::with_cores(4)).collect_scheduled(&mut h, policy.as_mut());
        check_sim(name, &cfg_name, &h, &snapshot, &seq, out.free, &out.stats);
    })
    .len();

    // --- real-thread software collectors --------------------------------
    type SwBuild = fn() -> Box<dyn SwCollector>;
    let sw_kinds: [(SwBuild, bool); 4] = [
        (|| Box::new(FineGrained::new()), true),
        (|| Box::new(WorkStealing::new()), false),
        (|| Box::new(Chunked::new()), false),
        (|| Box::new(Packets::new()), false),
    ];
    let sw_runs: Vec<((SwBuild, bool), usize)> = sw_kinds
        .into_iter()
        .flat_map(|kind| [1usize, 4].map(|threads| (kind, threads)))
        .collect();
    runs += par_map(&sw_runs, |_, &((build, compacting), threads)| {
        let collector = build();
        let mut h = heap.clone();
        let report = collector.collect(&mut h, threads);
        let cfg_name = format!("swgc/{}/{threads}t", report.name);
        let result = if compacting {
            verify_collection(&h, report.free, &snapshot)
        } else {
            verify_collection_relaxed(&h, report.free, &snapshot)
        };
        result.unwrap_or_else(|e| panic!("{name}: {cfg_name} failed verification: {e}"));
        assert_eq!(
            report.objects_copied, seq.objects_copied,
            "{name}: {cfg_name} copied a different number of objects"
        );
        assert_eq!(
            report.words_copied, seq.words_copied,
            "{name}: {cfg_name} copied a different number of words"
        );
        if compacting {
            assert_eq!(
                report.free, seq.free,
                "{name}: {cfg_name} compacted to a different frontier"
            );
        }
    })
    .len();

    OracleOutcome {
        live_objects: snapshot.live_objects(),
        live_words: snapshot.live_words,
        runs,
    }
}

fn check_sim(
    graph: &str,
    cfg_name: &str,
    heap: &Heap,
    snapshot: &Snapshot,
    seq: &hwgc_core::SeqOutcome,
    free: u32,
    stats: &hwgc_core::GcStats,
) {
    verify_collection(heap, free, snapshot)
        .unwrap_or_else(|e| panic!("{graph}: {cfg_name} failed verification: {e}"));
    assert_eq!(
        stats.objects_copied, seq.objects_copied,
        "{graph}: {cfg_name} copied a different number of objects"
    );
    assert_eq!(
        stats.words_copied, seq.words_copied,
        "{graph}: {cfg_name} copied a different number of words"
    );
    assert_eq!(
        free, seq.free,
        "{graph}: {cfg_name} compacted to a different frontier"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;

    #[test]
    fn oracle_accepts_a_small_shared_graph() {
        let outcome = differential("shared_hub", &graphs::shared_hub(12));
        assert_eq!(outcome.live_objects, 13);
        assert!(outcome.runs > 25, "only {} runs", outcome.runs);
    }

    #[test]
    fn sim_config_matrix_covers_the_advertised_axes() {
        let configs = sim_configs();
        assert!(configs.len() >= 13);
        assert!(configs.iter().any(|(n, _)| n.contains("fifo-off")));
        assert!(configs.iter().any(|(n, _)| n.contains("hdr-cache")));
        assert!(configs.iter().any(|(n, _)| n.contains("mem-reorder")));
        assert!(configs.iter().any(|(_, c)| c.n_cores == 16));
    }
}
