//! Deterministic adversarial object graphs for the harness.
//!
//! Each generator produces a shape that stresses one of the collector's
//! three invariants (paper Section IV):
//!
//! * deep lists — the work list never holds more than one gray object, so
//!   `scan`-lock contention (invariant 1) dominates and most cores spin,
//! * wide fanouts — one scan yields thousands of children at once; the
//!   `free` lock (invariant 3) and the header FIFO are hammered,
//! * shared hubs / diamond meshes — the same child is reached over many
//!   edges, so several cores race to lock the same fromspace header
//!   (invariant 2: the object must still be evacuated exactly once),
//! * cyclic rings and self-loops — the forwarded-pointer path must hold
//!   under re-entry into already-claimed objects,
//! * minimal objects — maximum header-traffic rate per copied word,
//! * a seeded random mix with garbage — everything at once.
//!
//! All generators are deterministic (the random mix takes an explicit
//! seed), so failures reproduce exactly.

use hwgc_heap::{GraphBuilder, Heap, ObjId};

fn heap_for(objects: u32, words_per_obj: u32) -> Heap {
    // Generous slack: the software baselines allocate LABs (1024 words per
    // thread) and fixed-size 2048-word chunks in tospace, so a
    // tightly-sized semispace overflows even when the live data fits.
    Heap::new(objects * words_per_obj + 24 * 1024)
}

/// A singly linked list of `n` objects (`pi = 1`, `delta = 1`), rooted at
/// the head. The gray work list holds at most one object at a time.
pub fn deep_list(n: usize) -> Heap {
    let mut heap = heap_for(n as u32, 4);
    let mut b = GraphBuilder::new(&mut heap);
    let head = b.add(1, 1).unwrap();
    let mut prev = head;
    for _ in 1..n {
        let next = b.add(1, 1).unwrap();
        b.link(prev, 0, next);
        prev = next;
    }
    b.root(head);
    heap
}

/// One root object with `children` pointer slots, each to its own leaf.
/// A single scan floods the work list and the `free` register.
pub fn wide_fanout(children: u32) -> Heap {
    let mut heap = heap_for(children + 1, 4);
    let mut b = GraphBuilder::new(&mut heap);
    let root = b.add(children, 1).unwrap();
    for i in 0..children {
        let leaf = b.add(0, 1).unwrap();
        b.link(root, i, leaf);
    }
    b.root(root);
    heap
}

/// `spokes` two-slot objects, every one pointing at one shared hub (and
/// chained so all are reachable from a single root). Every spoke scan
/// races for the hub's header lock.
pub fn shared_hub(spokes: usize) -> Heap {
    let mut heap = heap_for(spokes as u32 + 1, 5);
    let mut b = GraphBuilder::new(&mut heap);
    let hub = b.add(0, 2).unwrap();
    let first = b.add(2, 1).unwrap();
    b.link(first, 0, hub);
    let mut prev = first;
    for _ in 1..spokes {
        let spoke = b.add(2, 1).unwrap();
        b.link(spoke, 0, hub);
        b.link(prev, 1, spoke);
        prev = spoke;
    }
    b.root(first);
    heap
}

/// A ring of `n` objects: each points at the next, the last closes the
/// cycle back to the first. Exercises the forwarded-header path.
pub fn cyclic_ring(n: usize) -> Heap {
    assert!(n >= 1);
    let mut heap = heap_for(n as u32, 4);
    let mut b = GraphBuilder::new(&mut heap);
    let first = b.add(1, 1).unwrap();
    let mut prev = first;
    for _ in 1..n {
        let next = b.add(1, 1).unwrap();
        b.link(prev, 0, next);
        prev = next;
    }
    b.link(prev, 0, first);
    b.root(first);
    heap
}

/// A chain of `n` objects each of which also points at itself. A core
/// scanning an object immediately re-encounters the object it (or another
/// core) just claimed.
pub fn self_loops(n: usize) -> Heap {
    let mut heap = heap_for(n as u32, 5);
    let mut b = GraphBuilder::new(&mut heap);
    let first = b.add(2, 1).unwrap();
    b.link(first, 0, first);
    let mut prev = first;
    for _ in 1..n {
        let next = b.add(2, 1).unwrap();
        b.link(next, 0, next);
        b.link(prev, 1, next);
        prev = next;
    }
    b.root(first);
    heap
}

/// A diamond mesh of `layers` layers of two objects each: every object
/// points at *both* objects of the next layer, so every object below the
/// apex is reached twice — maximal sharing on a small heap.
pub fn diamond_mesh(layers: usize) -> Heap {
    assert!(layers >= 2);
    let mut heap = heap_for(2 * layers as u32 + 1, 5);
    let mut b = GraphBuilder::new(&mut heap);
    let apex = b.add(2, 1).unwrap();
    let mut upper: [ObjId; 2] = [apex, apex];
    for layer in 0..layers {
        let left = b.add(2, 1).unwrap();
        let right = b.add(2, 1).unwrap();
        if layer == 0 {
            b.link(apex, 0, left);
            b.link(apex, 1, right);
        } else {
            for parent in upper {
                b.link(parent, 0, left);
                b.link(parent, 1, right);
            }
        }
        upper = [left, right];
    }
    b.root(apex);
    heap
}

/// `n` minimal objects (`pi = 0`, `delta = 1`), each its own root: the
/// smallest objects the model supports, maximizing header traffic per
/// copied word (the whole collection is header handling).
pub fn minimal_objects(n: usize) -> Heap {
    let mut heap = heap_for(n as u32, 3);
    let mut b = GraphBuilder::new(&mut heap);
    for _ in 0..n {
        let o = b.add(0, 1).unwrap();
        b.root(o);
    }
    heap
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A seeded random object soup: varied `pi`/`delta`, a connected spine,
/// random cross/back edges (sharing and cycles), and unreachable garbage.
pub fn random_mix(seed: u64, n: usize) -> Heap {
    assert!(n >= 2);
    let mut state = seed | 1;
    let mut heap = heap_for(n as u32, 8);
    let mut b = GraphBuilder::new(&mut heap);
    let mut objs: Vec<(ObjId, u32)> = Vec::with_capacity(n);
    for _ in 0..n {
        let pi = (xorshift(&mut state) % 4) as u32;
        let delta = 1 + (xorshift(&mut state) % 3) as u32;
        objs.push((b.add(pi, delta).unwrap(), pi));
    }
    // Spine: every object with a pointer slot links to its successor, so a
    // prefix of the soup is reachable from the first object.
    for i in 0..n - 1 {
        let (obj, pi) = objs[i];
        if pi > 0 {
            b.link(obj, 0, objs[i + 1].0);
        }
    }
    // Random extra edges — forward (sharing) and backward (cycles).
    for _ in 0..n {
        let src = (xorshift(&mut state) as usize) % n;
        let dst = (xorshift(&mut state) as usize) % n;
        let (s, pi) = objs[src];
        if pi > 1 {
            let slot = 1 + (xorshift(&mut state) % (pi as u64 - 1)) as u32;
            b.link(s, slot, objs[dst].0);
        }
    }
    // A few roots into the middle; the tail past the last pointer-free
    // spine break stays garbage.
    b.root(objs[0].0);
    for _ in 0..3 {
        let r = (xorshift(&mut state) as usize) % n;
        b.root(objs[r].0);
    }
    heap
}

/// The standard small-instance catalog the harness sweeps: every shape at
/// a size that keeps a single simulated collection in the low thousands of
/// cycles.
pub fn catalog() -> Vec<(&'static str, Heap)> {
    vec![
        ("deep_list", deep_list(64)),
        ("wide_fanout", wide_fanout(128)),
        ("shared_hub", shared_hub(48)),
        ("cyclic_ring", cyclic_ring(40)),
        ("self_loops", self_loops(32)),
        ("diamond_mesh", diamond_mesh(12)),
        ("minimal_objects", minimal_objects(48)),
        ("random_mix", random_mix(0xBADC_0FFE, 96)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_heap::Snapshot;

    #[test]
    fn catalog_shapes_are_live_and_deterministic() {
        for (name, heap) in catalog() {
            let snap = Snapshot::capture(&heap);
            assert!(snap.live_objects() > 0, "{name} has no live objects");
            let again = catalog().into_iter().find(|(n, _)| *n == name).unwrap().1;
            assert_eq!(heap.words(), again.words(), "{name} not deterministic");
            assert_eq!(
                heap.roots(),
                again.roots(),
                "{name} roots not deterministic"
            );
        }
    }

    #[test]
    fn shared_hub_is_fully_reachable() {
        let heap = shared_hub(10);
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 11);
    }

    #[test]
    fn random_mix_has_garbage() {
        let heap = random_mix(7, 64);
        let snap = Snapshot::capture(&heap);
        assert!(
            snap.live_objects() < 64,
            "everything reachable — no garbage"
        );
        assert!(snap.live_objects() > 1, "nothing reachable");
    }

    #[test]
    fn cyclic_and_self_referential_shapes_close_their_loops() {
        let ring = cyclic_ring(5);
        let snap = Snapshot::capture(&ring);
        assert_eq!(snap.live_objects(), 5);
        let loops = self_loops(4);
        let snap = Snapshot::capture(&loops);
        assert_eq!(snap.live_objects(), 4);
    }
}
