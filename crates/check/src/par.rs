//! Scoped-thread work pool for the harness: sweep combinations, oracle
//! configurations and experiment rows are independent simulations (each
//! owns its heap and engine), so they fan out across `std::thread::scope`
//! workers — no external dependency, no unsafe.
//!
//! Parallelism is controlled by the `HWGC_JOBS` environment variable:
//!
//! * unset, `0`, or unparseable → the machine's available parallelism,
//! * `1` → serial execution on the calling thread (deterministic
//!   debugging order),
//! * `N ≥ 2` → that many workers.
//!
//! Results are always collected in input order, regardless of completion
//! order, so every caller is deterministic modulo wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count requested by `HWGC_JOBS` (see the module docs for the
/// exact unset/zero/garbage semantics).
pub fn jobs() -> usize {
    jobs_from(std::env::var("HWGC_JOBS").ok().as_deref())
}

/// [`jobs`] on an explicit value — separable for tests, since the process
/// environment is shared mutable state.
pub fn jobs_from(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        // 0 or garbage falls through to the default, like unset.
        _ => default_parallelism(),
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Apply `f` to every item, using up to [`jobs`] scoped worker threads,
/// and return the results in input order. `f` receives the item index and
/// the item. With one worker (or one item) everything runs inline on the
/// calling thread. A panic in any worker propagates to the caller with
/// its original payload once the scope joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_from_documents_every_input_class() {
        let default = default_parallelism();
        assert!(default >= 1);
        // Unset → default.
        assert_eq!(jobs_from(None), default);
        // Zero → default (a zero-worker pool is meaningless).
        assert_eq!(jobs_from(Some("0")), default);
        // Garbage → default.
        assert_eq!(jobs_from(Some("lots")), default);
        assert_eq!(jobs_from(Some("")), default);
        assert_eq!(jobs_from(Some("-3")), default);
        assert_eq!(jobs_from(Some("2.5")), default);
        // Explicit counts are honored, including serial mode.
        assert_eq!(jobs_from(Some("1")), 1);
        assert_eq!(jobs_from(Some("7")), 7);
        assert_eq!(jobs_from(Some(" 4 ")), 4, "whitespace is trimmed");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out.len(), items.len());
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let none: Vec<u32> = par_map(&[], |_, &x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(par_map(&[9u32], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |_, &x| {
                assert!(x != 13, "combo 13 diverged");
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
