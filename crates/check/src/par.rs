//! Re-export shim: the scoped-thread work pool moved to
//! [`hwgc_jobs::par`] when the sweep job layer grew a multi-process
//! executor on top of it. The module path (`hwgc_check::par`) and every
//! name it exported are preserved so existing callers keep compiling.

pub use hwgc_jobs::par::*;
