//! Schedule-exploration sweep: run the simulated collector under hundreds
//! of (policy, seed, core count) combinations and prove the functional
//! outcome is schedule-independent.
//!
//! Every combination runs a full collection with
//! [`SimCollector::collect_scheduled_traced`], then:
//!
//! 1. [`verify_collection`] against the pre-cycle snapshot (reachability,
//!    content, compaction, root redirection),
//! 2. exactly-once copy counts against the sequential reference
//!    (`objects_copied` / `words_copied` — invariant 2 made countable),
//! 3. the trace lint over the complete SB event stream (invariants as
//!    they happened, cycle by cycle).
//!
//! Seeds double as DRAM service-reorder seeds ([`MemConfig`]'s
//! `service_reorder_seed`), so memory-timing interleavings are explored in
//! the same pass as arbitration interleavings.
//!
//! Scale is controlled by [`SweepConfig`]: [`SweepConfig::smoke`] is the
//! CI-sized default (≥ 200 combinations in a few seconds);
//! [`SweepConfig::from_env`] reads `HWGC_SWEEP_SEEDS`, `HWGC_SWEEP_CORES`
//! and `HWGC_SWEEP_LINT` for the nightly full sweep.

use hwgc_core::schedule::{Adversarial, RandomOrder, SchedulePolicy, StaticPriority};
use hwgc_core::{GcConfig, SeqCheney, SignalTrace, SimCollector};
use hwgc_heap::{verify_collection, Heap, Snapshot};
use hwgc_memsim::MemConfig;

use crate::lint::lint_trace;
use crate::par::par_map;

/// Which arbitration policy a sweep combination uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Index order — the paper's arbiter (seed-independent; swept once).
    Static,
    /// Fresh seeded permutation every cycle.
    Random,
    /// Contention-maximizing order.
    Adversarial,
}

impl PolicyKind {
    fn build(self, seed: u64) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyKind::Static => Box::new(StaticPriority),
            PolicyKind::Random => Box::new(RandomOrder::new(seed)),
            PolicyKind::Adversarial => Box::new(Adversarial::new(seed)),
        }
    }
}

/// Sweep dimensions.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Core counts to sweep.
    pub core_counts: Vec<usize>,
    /// Seeds per (policy, core count). Seeds feed both the policy and the
    /// DRAM service reordering.
    pub seeds: Vec<u64>,
    /// Policies to sweep (seeded kinds multiply with `seeds`).
    pub policies: Vec<PolicyKind>,
    /// Run the trace lint on every combination (captures the full SB
    /// event stream; slightly slower, catches in-flight violations even
    /// when the end state verifies).
    pub lint: bool,
}

impl SweepConfig {
    /// The CI smoke configuration: 5 core counts × 2 seeded policies × 20
    /// seeds = 200 combinations, all linted.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            core_counts: vec![1, 2, 4, 8, 16],
            seeds: (0..20).map(|i| 0x5EED + i * 0x9E37_79B9).collect(),
            policies: vec![PolicyKind::Random, PolicyKind::Adversarial],
            lint: true,
        }
    }

    /// Environment-scaled configuration for the nightly full sweep:
    ///
    /// * `HWGC_SWEEP_SEEDS` — seeds per (policy, core count), default 100,
    /// * `HWGC_SWEEP_CORES` — comma-separated core counts, default
    ///   `1,2,3,4,8,12,16`,
    /// * `HWGC_SWEEP_LINT` — `0` disables the per-run lint, default on.
    pub fn from_env() -> SweepConfig {
        SweepConfig::from_env_values(
            std::env::var("HWGC_SWEEP_SEEDS").ok().as_deref(),
            std::env::var("HWGC_SWEEP_CORES").ok().as_deref(),
            std::env::var("HWGC_SWEEP_LINT").ok().as_deref(),
        )
    }

    /// [`SweepConfig::from_env`] on explicit values — separable for tests,
    /// since the process environment is shared mutable state. Unset,
    /// unparseable or zero/empty values fall back to the documented
    /// defaults; core counts of `0` are dropped individually.
    pub fn from_env_values(
        seeds: Option<&str>,
        cores: Option<&str>,
        lint: Option<&str>,
    ) -> SweepConfig {
        let seeds: u64 = match seeds.and_then(|s| s.trim().parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => 100,
        };
        let core_counts: Vec<usize> = cores
            .map(|s| {
                s.split(',')
                    .filter_map(|c| c.trim().parse().ok())
                    .filter(|&c: &usize| c >= 1)
                    .collect()
            })
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 3, 4, 8, 12, 16]);
        let lint = lint.is_none_or(|s| s != "0");
        SweepConfig {
            core_counts,
            seeds: (0..seeds).map(|i| 0x5EED + i * 0x9E37_79B9).collect(),
            policies: vec![PolicyKind::Random, PolicyKind::Adversarial],
            lint,
        }
    }

    /// Number of (policy, seed, core count) combinations this config runs
    /// per graph (the static policy, being seedless, counts once per core
    /// count).
    pub fn combos(&self) -> usize {
        let seeded = self
            .policies
            .iter()
            .filter(|p| **p != PolicyKind::Static)
            .count();
        let statics = self.policies.len() - seeded;
        self.core_counts.len() * (seeded * self.seeds.len() + statics)
    }
}

/// Aggregate result of a sweep over one graph.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Combinations run (and individually verified).
    pub combos: usize,
    /// Total simulated cycles across all combinations.
    pub total_cycles: u64,
    /// Spread of cycle counts observed: (min, max). Different schedules
    /// must be *functionally* identical but are expected to differ here.
    pub cycle_range: (u64, u64),
}

/// Sweep `cfg` over the heap produced by `build`. Each combination clones
/// the heap, collects under the combination's policy, and is checked as
/// described in the module docs. Panics on the first divergence, naming
/// the policy, seed and core count.
///
/// Combinations are independent simulations, so they run on the
/// [`crate::par`] worker pool (`HWGC_JOBS` workers); the outcome is folded
/// in combination order and therefore identical at any job count.
pub fn run_sweep(build: &(dyn Fn() -> Heap + Sync), cfg: &SweepConfig) -> SweepOutcome {
    let base = build();
    let snapshot = Snapshot::capture(&base);
    let mut seq_heap = base.clone();
    let seq = SeqCheney::new().collect(&mut seq_heap);

    let mut combo_list: Vec<(PolicyKind, u64, usize)> = Vec::with_capacity(cfg.combos());
    for &policy_kind in &cfg.policies {
        let seeds: &[u64] = if policy_kind == PolicyKind::Static {
            &[0]
        } else {
            &cfg.seeds
        };
        for &seed in seeds {
            for &cores in &cfg.core_counts {
                combo_list.push((policy_kind, seed, cores));
            }
        }
    }

    let per_combo_cycles = par_map(&combo_list, |_, &(policy_kind, seed, cores)| {
        run_one_combo(&base, &snapshot, &seq, cfg.lint, policy_kind, seed, cores)
    });

    let mut total_cycles = 0u64;
    let mut cycle_range = (u64::MAX, 0u64);
    for &cycles in &per_combo_cycles {
        total_cycles += cycles;
        cycle_range.0 = cycle_range.0.min(cycles);
        cycle_range.1 = cycle_range.1.max(cycles);
    }
    SweepOutcome {
        combos: per_combo_cycles.len(),
        total_cycles,
        cycle_range,
    }
}

/// Run and verify one sweep combination; returns its simulated cycles.
fn run_one_combo(
    base: &Heap,
    snapshot: &Snapshot,
    seq: &hwgc_core::SeqOutcome,
    lint: bool,
    policy_kind: PolicyKind,
    seed: u64,
    cores: usize,
) -> u64 {
    let label = format!("{policy_kind:?}/seed {seed:#x}/{cores} cores");
    let mut heap = base.clone();
    let gc_cfg = GcConfig {
        mem: MemConfig::default().with_service_reorder(seed ^ 0x000F_F5E7),
        ..GcConfig::with_cores(cores)
    };
    let mut policy = policy_kind.build(seed);
    let out = if lint {
        let mut trace = SignalTrace::with_events(64);
        let out = SimCollector::new(gc_cfg).collect_scheduled_traced(
            &mut heap,
            policy.as_mut(),
            &mut trace,
        );
        let violations = lint_trace(&trace);
        assert!(
            violations.is_empty(),
            "{label}: trace lint found violations:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        out
    } else {
        SimCollector::new(gc_cfg).collect_scheduled(&mut heap, policy.as_mut())
    };
    verify_collection(&heap, out.free, snapshot)
        .unwrap_or_else(|e| panic!("{label}: verification failed: {e}"));
    assert_eq!(
        out.stats.objects_copied, seq.objects_copied,
        "{label}: object copy count diverged from the sequential reference"
    );
    assert_eq!(
        out.stats.words_copied, seq.words_copied,
        "{label}: word copy count diverged from the sequential reference"
    );
    assert_eq!(out.free, seq.free, "{label}: allocation frontier diverged");
    out.stats.total_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;

    #[test]
    fn from_env_values_documents_every_input_class() {
        // All unset → documented defaults.
        let d = SweepConfig::from_env_values(None, None, None);
        assert_eq!(d.seeds.len(), 100);
        assert_eq!(d.core_counts, vec![1, 2, 3, 4, 8, 12, 16]);
        assert!(d.lint);

        // Garbage and zero seed counts fall back to the default.
        for bad in ["zero", "", "-4", "0"] {
            let c = SweepConfig::from_env_values(Some(bad), None, None);
            assert_eq!(c.seeds.len(), 100, "HWGC_SWEEP_SEEDS={bad:?}");
        }
        let c = SweepConfig::from_env_values(Some(" 7 "), None, None);
        assert_eq!(c.seeds.len(), 7, "whitespace is trimmed");

        // Core lists: parse what parses, drop zeros, default when nothing
        // survives.
        let c = SweepConfig::from_env_values(None, Some("2, 4,junk,0,16"), None);
        assert_eq!(c.core_counts, vec![2, 4, 16]);
        for bad in ["", "junk", "0,0"] {
            let c = SweepConfig::from_env_values(None, Some(bad), None);
            assert_eq!(
                c.core_counts,
                vec![1, 2, 3, 4, 8, 12, 16],
                "HWGC_SWEEP_CORES={bad:?}"
            );
        }

        // Lint: only the literal "0" disables it.
        assert!(!SweepConfig::from_env_values(None, None, Some("0")).lint);
        for on in ["1", "", "off", "true"] {
            assert!(
                SweepConfig::from_env_values(None, None, Some(on)).lint,
                "HWGC_SWEEP_LINT={on:?}"
            );
        }
    }

    #[test]
    fn combo_count_matches_dimensions() {
        let cfg = SweepConfig::smoke();
        assert_eq!(cfg.combos(), 5 * 2 * 20);
        let with_static = SweepConfig {
            policies: vec![PolicyKind::Static, PolicyKind::Random],
            ..SweepConfig::smoke()
        };
        assert_eq!(with_static.combos(), 5 * (20 + 1));
    }

    #[test]
    fn tiny_sweep_passes_on_a_contended_graph() {
        let cfg = SweepConfig {
            core_counts: vec![2, 4],
            seeds: vec![1, 2, 3],
            policies: vec![
                PolicyKind::Static,
                PolicyKind::Random,
                PolicyKind::Adversarial,
            ],
            lint: true,
        };
        let outcome = run_sweep(&|| graphs::shared_hub(24), &cfg);
        assert_eq!(outcome.combos, cfg.combos());
        assert!(outcome.total_cycles > 0);
    }

    #[test]
    fn schedules_differ_in_timing_but_not_function() {
        let cfg = SweepConfig {
            core_counts: vec![4],
            seeds: (0..8).collect(),
            policies: vec![PolicyKind::Random],
            lint: false,
        };
        let outcome = run_sweep(&|| graphs::diamond_mesh(10), &cfg);
        // run_sweep itself asserts functional equality; across 8 random
        // schedules at 4 cores, at least two should differ in latency.
        assert!(
            outcome.cycle_range.0 < outcome.cycle_range.1,
            "all schedules produced identical cycle counts {:?}",
            outcome.cycle_range
        );
    }
}
