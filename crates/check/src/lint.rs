//! Online trace lint: replays the SB's cycle-stamped operation log and
//! flags any behaviour that would break the collector's three invariants
//! (paper Section IV) — with the exact cycle number of the offence.
//!
//! The lint maintains a *shadow SB* (lock owners, register values, busy
//! bits) and checks every event against it:
//!
//! * **Invariant 2 — exactly-once evacuation**: no two cores may hold the
//!   same header lock ([`Violation::DoubleHeaderLock`]); a core holds at
//!   most one header register ([`Violation::SecondHeaderLock`]); unlocks
//!   must match a held lock ([`Violation::UnlockWithoutLock`]).
//! * **Invariants 1 and 3 — exactly-once claim, exclusive tospace areas**:
//!   `scan`/`free` writes require the lock
//!   ([`Violation::SetWithoutLock`]), must read back the shadow value
//!   ([`Violation::LostUpdate`]), may not move backwards
//!   ([`Violation::Regression`]) and may not push `scan` past `free`
//!   ([`Violation::ScanPastFree`]); each register has a single write port
//!   per cycle ([`Violation::WritePortConflict`]); locks are not acquired
//!   twice ([`Violation::DoubleLock`]) nor released unheld
//!   ([`Violation::ReleaseWithoutLock`]).
//! * **Lock ordering** `scan < header < free` (Section IV): acquiring a
//!   lower-ranked lock while holding a higher-ranked one risks deadlock
//!   ([`Violation::LockOrderViolation`]).
//! * **Termination** (Section V-E): a core may declare termination only
//!   when `scan == free` and no other core is busy
//!   ([`Violation::PrematureTermination`]).
//!
//! When the trace also carries sampled rows ([`hwgc_core::TraceRow`]), the
//! lint cross-checks each row's `scan`/`free` against the shadow registers
//! at that cycle ([`Violation::RowMismatch`]).

use std::collections::HashMap;

use hwgc_core::SignalTrace;
use hwgc_sync::{SbEvent, SbEventRecord};

/// Which SB register a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reg {
    Scan,
    Free,
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reg::Scan => write!(f, "scan"),
            Reg::Free => write!(f, "free"),
        }
    }
}

/// One invariant violation, pinpointed to the SB cycle it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two cores own the same header lock (invariant 2 would break: both
    /// would evacuate the object).
    DoubleHeaderLock {
        cycle: u64,
        addr: u32,
        holder: usize,
        core: usize,
    },
    /// A core acquired a second header lock while still holding another —
    /// each core has exactly one header-lock register in hardware.
    SecondHeaderLock {
        cycle: u64,
        core: usize,
        held: u32,
        addr: u32,
    },
    /// A header unlock with no matching held lock.
    UnlockWithoutLock { cycle: u64, core: usize, addr: u32 },
    /// A scan/free lock acquisition while the lock was already held.
    DoubleLock {
        cycle: u64,
        reg: Reg,
        holder: usize,
        core: usize,
    },
    /// A scan/free lock release by a core that did not hold it.
    ReleaseWithoutLock { cycle: u64, reg: Reg, core: usize },
    /// A register write without holding the corresponding lock (`free`
    /// moved without lock ⇒ two objects could share a tospace area).
    SetWithoutLock { cycle: u64, reg: Reg, core: usize },
    /// A register write whose observed old value disagrees with the shadow
    /// register — an update was lost or invented.
    LostUpdate {
        cycle: u64,
        reg: Reg,
        core: usize,
        expected: u32,
        observed: u32,
    },
    /// A register moved backwards.
    Regression {
        cycle: u64,
        reg: Reg,
        from: u32,
        to: u32,
    },
    /// `scan` advanced past `free` (a core claimed non-existent work).
    ScanPastFree { cycle: u64, scan: u32, free: u32 },
    /// Two writes to the same register in one cycle (the SB register file
    /// has a single write port per register, paper Section V-C).
    WritePortConflict { cycle: u64, reg: Reg, core: usize },
    /// A lock acquisition violating the deadlock-free order
    /// `scan < header < free`.
    LockOrderViolation {
        cycle: u64,
        core: usize,
        held: &'static str,
        acquiring: &'static str,
    },
    /// Termination declared while work remained (`scan != free`) or other
    /// cores were still busy.
    PrematureTermination {
        cycle: u64,
        core: usize,
        scan: u32,
        free: u32,
        busy: Vec<usize>,
    },
    /// A sampled trace row disagrees with the shadow register value.
    RowMismatch {
        cycle: u64,
        reg: Reg,
        row: u32,
        shadow: u32,
    },
}

impl Violation {
    /// The cycle the violation occurred in.
    pub fn cycle(&self) -> u64 {
        match self {
            Violation::DoubleHeaderLock { cycle, .. }
            | Violation::SecondHeaderLock { cycle, .. }
            | Violation::UnlockWithoutLock { cycle, .. }
            | Violation::DoubleLock { cycle, .. }
            | Violation::ReleaseWithoutLock { cycle, .. }
            | Violation::SetWithoutLock { cycle, .. }
            | Violation::LostUpdate { cycle, .. }
            | Violation::Regression { cycle, .. }
            | Violation::ScanPastFree { cycle, .. }
            | Violation::WritePortConflict { cycle, .. }
            | Violation::LockOrderViolation { cycle, .. }
            | Violation::PrematureTermination { cycle, .. }
            | Violation::RowMismatch { cycle, .. } => *cycle,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DoubleHeaderLock { cycle, addr, holder, core } => write!(
                f,
                "cycle {cycle}: core {core} locked header {addr:#x} already held by core {holder}"
            ),
            Violation::SecondHeaderLock { cycle, core, held, addr } => write!(
                f,
                "cycle {cycle}: core {core} locked header {addr:#x} while holding {held:#x}"
            ),
            Violation::UnlockWithoutLock { cycle, core, addr } => write!(
                f,
                "cycle {cycle}: core {core} unlocked header {addr:#x} it did not hold"
            ),
            Violation::DoubleLock { cycle, reg, holder, core } => write!(
                f,
                "cycle {cycle}: core {core} acquired the {reg} lock held by core {holder}"
            ),
            Violation::ReleaseWithoutLock { cycle, reg, core } => {
                write!(f, "cycle {cycle}: core {core} released the {reg} lock it did not hold")
            }
            Violation::SetWithoutLock { cycle, reg, core } => {
                write!(f, "cycle {cycle}: core {core} wrote {reg} without holding its lock")
            }
            Violation::LostUpdate { cycle, reg, core, expected, observed } => write!(
                f,
                "cycle {cycle}: core {core} wrote {reg} reading {observed} but the register held {expected}"
            ),
            Violation::Regression { cycle, reg, from, to } => {
                write!(f, "cycle {cycle}: {reg} moved backwards from {from} to {to}")
            }
            Violation::ScanPastFree { cycle, scan, free } => {
                write!(f, "cycle {cycle}: scan {scan} advanced past free {free}")
            }
            Violation::WritePortConflict { cycle, reg, core } => write!(
                f,
                "cycle {cycle}: core {core} wrote {reg} twice-in-cycle (single write port)"
            ),
            Violation::LockOrderViolation { cycle, core, held, acquiring } => write!(
                f,
                "cycle {cycle}: core {core} acquired {acquiring} while holding {held} (order is scan < header < free)"
            ),
            Violation::PrematureTermination { cycle, core, scan, free, busy } => write!(
                f,
                "cycle {cycle}: core {core} declared termination with scan {scan}, free {free}, busy cores {busy:?}"
            ),
            Violation::RowMismatch { cycle, reg, row, shadow } => write!(
                f,
                "cycle {cycle}: sampled row has {reg} = {row} but the event stream implies {shadow}"
            ),
        }
    }
}

#[derive(Default)]
struct Shadow {
    scan: u32,
    free: u32,
    scan_owner: Option<usize>,
    free_owner: Option<usize>,
    /// header addr → holding core.
    headers: HashMap<u32, usize>,
    /// core → held header addr.
    core_header: HashMap<usize, u32>,
    busy: HashMap<usize, bool>,
    /// Write-port re-arm tracking: (cycle, writes this cycle) per register.
    scan_writes: (u64, u32),
    free_writes: (u64, u32),
}

/// The online lint. Feed it events in stream order with
/// [`TraceLint::observe`] (or use [`lint_trace`] / [`lint_events`] for
/// whole captured streams); collected violations accumulate in order.
#[derive(Default)]
pub struct TraceLint {
    shadow: Shadow,
    violations: Vec<Violation>,
}

impl TraceLint {
    /// A fresh lint with an empty shadow SB.
    pub fn new() -> TraceLint {
        TraceLint::default()
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consume the lint, yielding all violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    fn held_of(&self, core: usize) -> Option<&'static str> {
        if self.shadow.free_owner == Some(core) {
            Some("the free lock")
        } else if self.shadow.core_header.contains_key(&core) {
            Some("a header lock")
        } else {
            None
        }
    }

    fn track_write(&mut self, reg: Reg, cycle: u64, core: usize) {
        let slot = match reg {
            Reg::Scan => &mut self.shadow.scan_writes,
            Reg::Free => &mut self.shadow.free_writes,
        };
        if slot.0 == cycle {
            slot.1 += 1;
        } else {
            *slot = (cycle, 1);
        }
        if slot.1 > 1 {
            self.violations
                .push(Violation::WritePortConflict { cycle, reg, core });
        }
    }

    /// Process one event against the shadow SB.
    pub fn observe(&mut self, rec: &SbEventRecord) {
        let cycle = rec.cycle;
        match rec.event {
            SbEvent::Init { scan, free } => {
                self.shadow.scan = scan;
                self.shadow.free = free;
            }
            SbEvent::AcquireScan { core } => {
                if let Some(holder) = self.shadow.scan_owner {
                    self.violations.push(Violation::DoubleLock {
                        cycle,
                        reg: Reg::Scan,
                        holder,
                        core,
                    });
                }
                // scan is the lowest-ranked lock: holding anything else
                // while taking it inverts the order.
                if let Some(held) = self.held_of(core) {
                    self.violations.push(Violation::LockOrderViolation {
                        cycle,
                        core,
                        held,
                        acquiring: "the scan lock",
                    });
                }
                self.shadow.scan_owner = Some(core);
            }
            SbEvent::FailScan { .. } | SbEvent::FailFree { .. } | SbEvent::FailHeader { .. } => {}
            SbEvent::ReleaseScan { core } => {
                if self.shadow.scan_owner != Some(core) {
                    self.violations.push(Violation::ReleaseWithoutLock {
                        cycle,
                        reg: Reg::Scan,
                        core,
                    });
                } else {
                    self.shadow.scan_owner = None;
                }
            }
            SbEvent::SetScan { core, from, to } => {
                if self.shadow.scan_owner != Some(core) {
                    self.violations.push(Violation::SetWithoutLock {
                        cycle,
                        reg: Reg::Scan,
                        core,
                    });
                }
                if from != self.shadow.scan {
                    self.violations.push(Violation::LostUpdate {
                        cycle,
                        reg: Reg::Scan,
                        core,
                        expected: self.shadow.scan,
                        observed: from,
                    });
                }
                if to < from {
                    self.violations.push(Violation::Regression {
                        cycle,
                        reg: Reg::Scan,
                        from,
                        to,
                    });
                }
                self.track_write(Reg::Scan, cycle, core);
                self.shadow.scan = to;
                if self.shadow.scan > self.shadow.free {
                    self.violations.push(Violation::ScanPastFree {
                        cycle,
                        scan: self.shadow.scan,
                        free: self.shadow.free,
                    });
                }
            }
            SbEvent::AcquireFree { core } => {
                if let Some(holder) = self.shadow.free_owner {
                    self.violations.push(Violation::DoubleLock {
                        cycle,
                        reg: Reg::Free,
                        holder,
                        core,
                    });
                }
                self.shadow.free_owner = Some(core);
            }
            SbEvent::ReleaseFree { core } => {
                if self.shadow.free_owner != Some(core) {
                    self.violations.push(Violation::ReleaseWithoutLock {
                        cycle,
                        reg: Reg::Free,
                        core,
                    });
                } else {
                    self.shadow.free_owner = None;
                }
            }
            SbEvent::SetFree { core, from, to } => {
                if self.shadow.free_owner != Some(core) {
                    self.violations.push(Violation::SetWithoutLock {
                        cycle,
                        reg: Reg::Free,
                        core,
                    });
                }
                if from != self.shadow.free {
                    self.violations.push(Violation::LostUpdate {
                        cycle,
                        reg: Reg::Free,
                        core,
                        expected: self.shadow.free,
                        observed: from,
                    });
                }
                if to < from {
                    self.violations.push(Violation::Regression {
                        cycle,
                        reg: Reg::Free,
                        from,
                        to,
                    });
                }
                self.track_write(Reg::Free, cycle, core);
                self.shadow.free = to;
            }
            SbEvent::LockHeader { core, addr } => {
                if let Some(&holder) = self.shadow.headers.get(&addr) {
                    if holder != core {
                        self.violations.push(Violation::DoubleHeaderLock {
                            cycle,
                            addr,
                            holder,
                            core,
                        });
                    }
                }
                if let Some(&held) = self.shadow.core_header.get(&core) {
                    if held != addr {
                        self.violations.push(Violation::SecondHeaderLock {
                            cycle,
                            core,
                            held,
                            addr,
                        });
                    }
                }
                if self.shadow.free_owner == Some(core) {
                    self.violations.push(Violation::LockOrderViolation {
                        cycle,
                        core,
                        held: "the free lock",
                        acquiring: "a header lock",
                    });
                }
                self.shadow.headers.insert(addr, core);
                self.shadow.core_header.insert(core, addr);
            }
            SbEvent::UnlockHeader { core, addr } => {
                if self.shadow.headers.get(&addr) == Some(&core) {
                    self.shadow.headers.remove(&addr);
                    self.shadow.core_header.remove(&core);
                } else {
                    self.violations
                        .push(Violation::UnlockWithoutLock { cycle, core, addr });
                }
            }
            SbEvent::SetBusy { core } => {
                self.shadow.busy.insert(core, true);
            }
            SbEvent::ClearBusy { core } => {
                self.shadow.busy.insert(core, false);
            }
            SbEvent::Termination { core } => {
                let busy: Vec<usize> = self
                    .shadow
                    .busy
                    .iter()
                    .filter(|&(&c, &b)| b && c != core)
                    .map(|(&c, _)| c)
                    .collect();
                if self.shadow.scan != self.shadow.free || !busy.is_empty() {
                    let mut busy = busy;
                    busy.sort_unstable();
                    self.violations.push(Violation::PrematureTermination {
                        cycle,
                        core,
                        scan: self.shadow.scan,
                        free: self.shadow.free,
                        busy,
                    });
                }
            }
        }
    }

    /// Cross-check one sampled row against the shadow registers. Call
    /// after observing every event with `cycle <= row.cycle`.
    pub fn check_row(&mut self, row: &hwgc_core::TraceRow) {
        if row.scan != self.shadow.scan {
            self.violations.push(Violation::RowMismatch {
                cycle: row.cycle,
                reg: Reg::Scan,
                row: row.scan,
                shadow: self.shadow.scan,
            });
        }
        if row.free != self.shadow.free {
            self.violations.push(Violation::RowMismatch {
                cycle: row.cycle,
                reg: Reg::Free,
                row: row.free,
                shadow: self.shadow.free,
            });
        }
    }
}

/// Lint a bare event stream (no row cross-checks).
pub fn lint_events(events: &[SbEventRecord]) -> Vec<Violation> {
    let mut lint = TraceLint::new();
    for rec in events {
        lint.observe(rec);
    }
    lint.into_violations()
}

/// Lint a captured trace: replays the full event stream and cross-checks
/// every sampled row at its cycle. The trace must have been captured with
/// [`SignalTrace::with_events`] (asserts otherwise — linting without
/// events would silently check nothing).
pub fn lint_trace(trace: &SignalTrace) -> Vec<Violation> {
    assert!(
        trace.capture_events(),
        "lint_trace needs a trace built with SignalTrace::with_events"
    );
    let mut lint = TraceLint::new();
    let mut events = trace.events().iter().peekable();
    for row in trace.rows() {
        while let Some(rec) = events.peek() {
            if rec.cycle <= row.cycle {
                lint.observe(rec);
                events.next();
            } else {
                break;
            }
        }
        lint.check_row(row);
    }
    for rec in events {
        lint.observe(rec);
    }
    lint.into_violations()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, event: SbEvent) -> SbEventRecord {
        SbEventRecord { cycle, event }
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let events = vec![
            rec(
                0,
                SbEvent::Init {
                    scan: 100,
                    free: 100,
                },
            ),
            rec(1, SbEvent::AcquireFree { core: 0 }),
            rec(
                1,
                SbEvent::SetFree {
                    core: 0,
                    from: 100,
                    to: 110,
                },
            ),
            rec(1, SbEvent::ReleaseFree { core: 0 }),
            rec(2, SbEvent::AcquireScan { core: 1 }),
            rec(
                2,
                SbEvent::SetScan {
                    core: 1,
                    from: 100,
                    to: 104,
                },
            ),
            rec(2, SbEvent::ReleaseScan { core: 1 }),
            rec(
                3,
                SbEvent::LockHeader {
                    core: 1,
                    addr: 0x40,
                },
            ),
            rec(
                4,
                SbEvent::UnlockHeader {
                    core: 1,
                    addr: 0x40,
                },
            ),
            rec(5, SbEvent::SetBusy { core: 1 }),
            rec(6, SbEvent::ClearBusy { core: 1 }),
            rec(7, SbEvent::AcquireScan { core: 0 }),
            rec(
                7,
                SbEvent::SetScan {
                    core: 0,
                    from: 104,
                    to: 110,
                },
            ),
            rec(7, SbEvent::ReleaseScan { core: 0 }),
            rec(8, SbEvent::Termination { core: 0 }),
        ];
        assert_eq!(lint_events(&events), vec![]);
    }

    #[test]
    fn double_header_lock_is_flagged_at_its_cycle() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 0 }),
            rec(
                3,
                SbEvent::LockHeader {
                    core: 0,
                    addr: 0xA0,
                },
            ),
            rec(
                5,
                SbEvent::LockHeader {
                    core: 2,
                    addr: 0xA0,
                },
            ),
        ];
        let violations = lint_events(&events);
        assert_eq!(
            violations,
            vec![Violation::DoubleHeaderLock {
                cycle: 5,
                addr: 0xA0,
                holder: 0,
                core: 2
            }]
        );
        assert_eq!(violations[0].cycle(), 5);
    }

    #[test]
    fn free_moved_without_lock_is_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 0 }),
            rec(
                2,
                SbEvent::SetFree {
                    core: 1,
                    from: 0,
                    to: 8,
                },
            ),
        ];
        assert_eq!(
            lint_events(&events),
            vec![Violation::SetWithoutLock {
                cycle: 2,
                reg: Reg::Free,
                core: 1
            }]
        );
    }

    #[test]
    fn lock_order_violations_are_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 0 }),
            rec(1, SbEvent::AcquireFree { core: 0 }),
            rec(
                2,
                SbEvent::LockHeader {
                    core: 0,
                    addr: 0x10,
                },
            ),
            rec(3, SbEvent::AcquireScan { core: 0 }),
        ];
        let violations = lint_events(&events);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::LockOrderViolation {
                cycle: 2,
                core: 0,
                acquiring: "a header lock",
                ..
            }
        )));
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::LockOrderViolation {
                cycle: 3,
                core: 0,
                acquiring: "the scan lock",
                ..
            }
        )));
    }

    #[test]
    fn premature_termination_is_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 8 }),
            rec(1, SbEvent::SetBusy { core: 2 }),
            rec(4, SbEvent::Termination { core: 0 }),
        ];
        let violations = lint_events(&events);
        assert_eq!(
            violations,
            vec![Violation::PrematureTermination {
                cycle: 4,
                core: 0,
                scan: 0,
                free: 8,
                busy: vec![2],
            }]
        );
    }

    #[test]
    fn lost_update_and_regression_are_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 10, free: 20 }),
            rec(1, SbEvent::AcquireScan { core: 0 }),
            rec(
                1,
                SbEvent::SetScan {
                    core: 0,
                    from: 12,
                    to: 8,
                },
            ),
        ];
        let violations = lint_events(&events);
        assert!(violations.contains(&Violation::LostUpdate {
            cycle: 1,
            reg: Reg::Scan,
            core: 0,
            expected: 10,
            observed: 12,
        }));
        assert!(violations.contains(&Violation::Regression {
            cycle: 1,
            reg: Reg::Scan,
            from: 12,
            to: 8,
        }));
    }

    #[test]
    fn write_port_conflict_is_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 0 }),
            rec(1, SbEvent::AcquireFree { core: 0 }),
            rec(
                1,
                SbEvent::SetFree {
                    core: 0,
                    from: 0,
                    to: 4,
                },
            ),
            rec(
                1,
                SbEvent::SetFree {
                    core: 0,
                    from: 4,
                    to: 8,
                },
            ),
        ];
        assert_eq!(
            lint_events(&events),
            vec![Violation::WritePortConflict {
                cycle: 1,
                reg: Reg::Free,
                core: 0
            }]
        );
    }

    #[test]
    fn scan_past_free_is_flagged() {
        let events = vec![
            rec(0, SbEvent::Init { scan: 0, free: 4 }),
            rec(1, SbEvent::AcquireScan { core: 0 }),
            rec(
                1,
                SbEvent::SetScan {
                    core: 0,
                    from: 0,
                    to: 8,
                },
            ),
        ];
        let violations = lint_events(&events);
        assert!(violations.contains(&Violation::ScanPastFree {
            cycle: 1,
            scan: 8,
            free: 4
        }));
    }
}
