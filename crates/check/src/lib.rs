//! Schedule-exploration and differential-oracle harness for the simulated
//! fine-grained parallel compacting collector.
//!
//! The paper's collector rests on three invariants (Section IV): every
//! gray object is claimed by exactly one core, every object is evacuated
//! exactly once, and every evacuated object receives an exclusive tospace
//! area. The production test suite exercises them under the engine's
//! default static arbitration; this crate exercises them under *any* legal
//! arbitration:
//!
//! * [`graphs`] — deterministic adversarial object graphs (deep lists,
//!   wide fanouts, shared hubs, cycles, self-loops, minimal objects, a
//!   seeded random soup),
//! * [`sweep`] — run the collector under hundreds of seeded
//!   [`hwgc_core::schedule::SchedulePolicy`] × core-count combinations
//!   (plus DRAM service reordering) and assert functional equivalence
//!   with the sequential reference,
//! * [`lint`] — replay the SB's cycle-stamped event log against a shadow
//!   SB and flag invariant violations with exact cycle numbers,
//! * [`oracle`] — differential execution of the sequential reference, the
//!   simulated collector across configurations and the four real-thread
//!   software collectors on clones of the same heap.

//! * [`par`] — the scoped-thread worker pool (`HWGC_JOBS`) that fans the
//!   sweep combinations, oracle configurations and experiment binaries
//!   across cores with deterministic result order,
//! * [`cache`] — the content-addressed result cache (`HWGC_CACHE`) that
//!   sits under the pool: jobs keyed by ledger `config_hash` reuse
//!   recorded results bit-exactly or turn recorded digests into
//!   regression assertions.

pub mod cache;
pub mod graphs;
pub mod lint;
pub mod oracle;
pub mod par;
pub mod sweep;

pub use cache::{
    cache_path_from_env, outcome_from_json, outcome_to_json, stats_from_json, stats_to_json,
    CacheCounters, CacheError, CacheMode, ResultCache,
};
pub use lint::{lint_events, lint_trace, TraceLint, Violation};
pub use oracle::{differential, sim_configs, OracleOutcome};
pub use par::{jobs, jobs_from, par_map, par_map_profiled, ParMapStats};
pub use sweep::{run_sweep, PolicyKind, SweepConfig, SweepOutcome};
