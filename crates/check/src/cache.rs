//! Re-export shim: the content-addressed result cache moved to
//! [`hwgc_jobs::cache`] when the sweep job layer took over execution —
//! the multi-process coordinator needs the cache's lookup/complete
//! transaction, and layering forbids `hwgc-jobs` depending on this
//! crate. The module path (`hwgc_check::cache`) and every name it
//! exported are preserved so existing callers keep compiling.

pub use hwgc_jobs::cache::*;
