//! Property tests of the heap substrate: allocation never overlaps,
//! accessors round-trip, and the snapshot is stable under re-capture.

use hwgc_heap::{GraphBuilder, Heap, Snapshot};
use proptest::prelude::*;

proptest! {
    /// Allocations tile the semispace without overlap and respect its end.
    #[test]
    fn allocations_never_overlap(sizes in prop::collection::vec((0u32..6, 0u32..10), 1..60)) {
        let mut heap = Heap::new(512);
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for (pi, delta) in sizes {
            if let Some(a) = heap.alloc(pi, delta) {
                let size = 2 + pi + delta;
                for &(b, bs) in &spans {
                    prop_assert!(a + size <= b || b + bs <= a, "overlap");
                }
                prop_assert!(a + size <= heap.to_limit());
                spans.push((a, size));
            }
        }
    }

    /// Pointer and data slots are disjoint: writing one never disturbs
    /// the other, for any shape.
    #[test]
    fn pointer_and_data_areas_are_disjoint(
        pi in 1u32..8,
        delta in 1u32..8,
        pslot in 0u32..8,
        dslot in 0u32..8,
        val in 1u32..u32::MAX,
    ) {
        let pslot = pslot % pi;
        let dslot = dslot % delta;
        let mut heap = Heap::new(128);
        let target = heap.alloc(0, 1).unwrap();
        let a = heap.alloc(pi, delta).unwrap();
        heap.set_data(a, dslot, val);
        heap.set_ptr(a, pslot, target);
        prop_assert_eq!(heap.data(a, dslot), val);
        prop_assert_eq!(heap.ptr(a, pslot), target);
        heap.set_ptr(a, pslot, 0);
        prop_assert_eq!(heap.data(a, dslot), val);
    }

    /// Capturing a snapshot twice yields identical structures, and a
    /// clone of the heap snapshots identically.
    #[test]
    fn snapshot_is_pure(n in 1usize..40, seed in 0u64..500) {
        let mut heap = Heap::new(4096);
        let mut b = GraphBuilder::new(&mut heap);
        let mut x = seed | 1;
        let mut rand = move || { x ^= x << 13; x ^= x >> 7; x ^= x << 17; x };
        let ids: Vec<_> = (0..n)
            .map(|_| b.add((rand() % 4) as u32, 1 + (rand() % 4) as u32).unwrap())
            .collect();
        for &id in &ids {
            if rand().is_multiple_of(2) {
                let tgt = ids[(rand() as usize) % ids.len()];
                let pi = { let a = b.addr(id); hwgc_heap::header::pi_of(b.heap().word(a)) };
                if pi > 0 {
                    b.link(id, (rand() % pi as u64) as u32, tgt);
                }
            }
        }
        b.root(ids[0]);
        let s1 = Snapshot::capture(&heap);
        let s2 = Snapshot::capture(&heap);
        prop_assert_eq!(&s1, &s2);
        let s3 = Snapshot::capture(&heap.clone());
        prop_assert_eq!(&s1, &s3);
    }
}
