//! Object-based heap model for the hardware-supported parallel compacting
//! collector (Horvath & Meyer, ICPP 2010).
//!
//! The paper's system is a 32-bit machine with an object-based memory model:
//! every object consists of a two-word header followed by a *pointer area*
//! of `pi` words and a *data area* of `delta` words (paper Fig. 3). Pointer
//! and non-pointer data are strictly separated so that the hardware always
//! knows where pointers live. The heap is divided into two semispaces; a
//! collection cycle copies all reachable objects from *fromspace* to
//! *tospace* (Cheney-style), inherently compacting the heap.
//!
//! This crate provides:
//!
//! * [`header`] — encoding/decoding of the two-word object header
//!   (mark state, colour, `pi`, `delta`, forwarding pointer / backlink),
//! * [`Heap`] — the word-addressed arena with two semispaces, a mutator-side
//!   bump allocator and typed accessors,
//! * [`GraphBuilder`] — a convenient API for wiring object graphs,
//! * [`snapshot`] / [`verify`] — a pre-collection snapshot of the reachable
//!   graph and a post-collection verifier that checks reachability
//!   preservation, content preservation, compaction and pointer hygiene.
//!
//! Addresses are `u32` word indices into the arena; address `0` is the null
//! pointer and the first few words of the arena are reserved so that no
//! object can ever live at address zero.

pub mod builder;
pub mod header;
pub mod heap;
pub mod snapshot;
pub mod verify;

pub use builder::{GraphBuilder, ObjId};
pub use header::{Color, Header, MAX_FIELD};
pub use heap::{Addr, Heap, Word, NULL, RESERVED_WORDS};
pub use snapshot::{ObjRecord, Snapshot};
pub use verify::{
    verify_collection, verify_collection_relaxed, verify_collection_with, VerifyError,
    VerifyOptions, VerifyReport,
};
