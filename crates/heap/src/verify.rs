//! Post-collection verifier.
//!
//! After a collection cycle, the tospace must contain exactly the objects
//! that were reachable before the cycle, compacted contiguously from the
//! bottom of tospace, all black, with every pointer redirected into
//! tospace. This module checks all of that against a [`Snapshot`] captured
//! before the cycle.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::header::Color;
use crate::heap::{Addr, Heap, NULL};
use crate::snapshot::Snapshot;

/// A verification failure, with enough context to debug the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A root still points into fromspace (or outside the heap).
    RootNotInTospace { root_index: usize, addr: Addr },
    /// Root `root_index` refers to the wrong object.
    RootIdMismatch {
        root_index: usize,
        expected: Option<u32>,
        found: Option<u32>,
    },
    /// A reachable tospace object is not black.
    NotBlack { addr: Addr, color: Color },
    /// A pointer escapes tospace.
    DanglingPointer { obj: Addr, slot: u32, target: Addr },
    /// Object contents differ from the snapshot.
    ContentMismatch { id: u32, detail: String },
    /// An object present before the cycle is missing afterwards.
    MissingObject { id: u32 },
    /// Tospace contains an object that was not reachable before the cycle.
    UnexpectedObject { id: u32 },
    /// The objects in `[to_base, free)` do not tile the region contiguously.
    NotCompacted { detail: String },
    /// `free` does not match the live data volume.
    LiveWordsMismatch { expected: u64, found: u64 },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for VerifyError {}

/// Summary of a successful verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    pub live_objects: usize,
    pub live_words: u64,
}

/// Verify the heap after a collection cycle.
///
/// * `free` is the collector's final allocation frontier in tospace.
/// * `snapshot` was captured from the same heap before the cycle.
///
/// Checks performed:
/// 1. every root points to a tospace copy of the object it pointed to,
/// 2. walking tospace `[to_base, free)` yields a contiguous tiling of black
///    objects (compaction),
/// 3. the id-keyed set of walked objects equals the snapshot's reachable
///    set, with identical `pi`/`delta`, data words and child edges,
/// 4. every pointer in tospace targets tospace or is null,
/// 5. every walked object is reachable from the roots (a copying collector
///    never copies garbage), and `free - to_base` equals the snapshot's
///    live word count.
pub fn verify_collection(
    heap: &Heap,
    free: Addr,
    snapshot: &Snapshot,
) -> Result<VerifyReport, VerifyError> {
    verify_inner(heap, free, snapshot, VerifyOptions::default())
}

/// Verify a collection performed by a collector that does **not**
/// guarantee perfect compaction (the software baselines with local
/// allocation buffers or chunked allocation leave fragmentation holes).
/// Performs every check of [`verify_collection`] except the contiguous
/// tiling of `[to_base, free)`: the live set is discovered from the roots
/// instead, and `free` only bounds it.
pub fn verify_collection_relaxed(
    heap: &Heap,
    free: Addr,
    snapshot: &Snapshot,
) -> Result<VerifyReport, VerifyError> {
    verify_inner(
        heap,
        free,
        snapshot,
        VerifyOptions {
            compacted: false,
            ..VerifyOptions::default()
        },
    )
}

/// Knobs for [`verify_collection_with`].
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Require `[to_base, free)` to be a contiguous tiling (walked from
    /// the roots instead when false).
    pub compacted: bool,
    /// Permit black objects whose id is not in the snapshot — objects the
    /// mutator allocated *during* the collection (concurrent extension).
    /// Such objects must still be black with tospace-or-null pointers.
    pub allow_unknown_objects: bool,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            compacted: true,
            allow_unknown_objects: false,
        }
    }
}

/// [`verify_collection`] with explicit [`VerifyOptions`].
pub fn verify_collection_with(
    heap: &Heap,
    free: Addr,
    snapshot: &Snapshot,
    opts: VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    verify_inner(heap, free, snapshot, opts)
}

fn verify_inner(
    heap: &Heap,
    free: Addr,
    snapshot: &Snapshot,
    opts: VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let compacted = opts.compacted;
    let to_base = heap.to_base();

    // --- 2: discover the tospace objects -------------------------------
    // Compacted collectors must tile [to_base, free) exactly; relaxed
    // collectors are walked from the roots instead.
    let mut by_addr: HashMap<Addr, u32> = HashMap::new(); // addr -> id
    let mut ids_seen: HashSet<u32> = HashSet::new();
    if compacted {
        let mut addr = to_base;
        while addr < free {
            let h = heap.header(addr);
            if h.color != Color::Black {
                return Err(VerifyError::NotBlack {
                    addr,
                    color: h.color,
                });
            }
            if h.delta < 1 {
                return Err(VerifyError::NotCompacted {
                    detail: format!("object at {addr} has delta 0; cannot carry id"),
                });
            }
            let id = heap.data(addr, 0);
            if !ids_seen.insert(id) {
                return Err(VerifyError::NotCompacted {
                    detail: format!("duplicate id {id}"),
                });
            }
            by_addr.insert(addr, id);
            let next = addr + h.size_words();
            if next > free {
                return Err(VerifyError::NotCompacted {
                    detail: format!("object at {addr} overruns free={free}"),
                });
            }
            addr = next;
        }
        if addr != free {
            return Err(VerifyError::NotCompacted {
                detail: format!("walk ended at {addr}, expected free={free}"),
            });
        }
    } else {
        let mut seen: HashSet<Addr> = HashSet::new();
        let mut queue: VecDeque<Addr> = heap
            .roots()
            .iter()
            .copied()
            .filter(|&r| r != NULL && seen.insert(r))
            .collect();
        while let Some(addr) = queue.pop_front() {
            if !heap.in_tospace(addr) || addr + 2 > free {
                return Err(VerifyError::RootNotInTospace {
                    root_index: usize::MAX,
                    addr,
                });
            }
            let h = heap.header(addr);
            if h.color != Color::Black {
                return Err(VerifyError::NotBlack {
                    addr,
                    color: h.color,
                });
            }
            if h.delta < 1 {
                return Err(VerifyError::NotCompacted {
                    detail: format!("object at {addr} has delta 0; cannot carry id"),
                });
            }
            let id = heap.data(addr, 0);
            if !ids_seen.insert(id) {
                return Err(VerifyError::NotCompacted {
                    detail: format!("duplicate id {id}"),
                });
            }
            by_addr.insert(addr, id);
            for slot in 0..h.pi {
                let t = heap.ptr(addr, slot);
                if t != NULL && seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }

    // --- 1: roots ------------------------------------------------------
    let id_at = |a: Addr| -> Option<u32> { by_addr.get(&a).copied() };
    for (i, &r) in heap.roots().iter().enumerate() {
        if i >= snapshot.root_ids.len() {
            // Roots appended during/after the snapshot (e.g. mutator
            // registers in the concurrent extension): only pointer hygiene
            // applies, which the tiling/BFS walk already covered.
            if r != NULL && !heap.in_tospace(r) {
                return Err(VerifyError::RootNotInTospace {
                    root_index: i,
                    addr: r,
                });
            }
            continue;
        }
        let expected = snapshot.root_ids[i];
        if r == NULL {
            if expected.is_some() {
                return Err(VerifyError::RootIdMismatch {
                    root_index: i,
                    expected,
                    found: None,
                });
            }
            continue;
        }
        if !heap.in_tospace(r) {
            return Err(VerifyError::RootNotInTospace {
                root_index: i,
                addr: r,
            });
        }
        let found = id_at(r);
        if found != expected {
            let points_at_unknown = opts.allow_unknown_objects
                && found.is_some_and(|id| !snapshot.objects.contains_key(&id));
            // Roots appended after the snapshot (mutator registers) have
            // no expectation recorded; `snapshot.root_ids` is shorter.
            if !points_at_unknown {
                return Err(VerifyError::RootIdMismatch {
                    root_index: i,
                    expected,
                    found,
                });
            }
        }
    }

    // --- 3 + 4: per-object contents and pointer hygiene ----------------
    let mut unknown_objects = 0usize;
    for (&addr, &id) in &by_addr {
        let rec = match snapshot.objects.get(&id) {
            Some(rec) => rec,
            None if opts.allow_unknown_objects => {
                // Allocated during the collection: must be black (checked
                // during discovery) with clean pointers; contents are the
                // mutator's business.
                unknown_objects += 1;
                let h = heap.header(addr);
                for slot in 0..h.pi {
                    let target = heap.ptr(addr, slot);
                    if target != NULL && !heap.in_tospace(target) {
                        return Err(VerifyError::DanglingPointer {
                            obj: addr,
                            slot,
                            target,
                        });
                    }
                }
                continue;
            }
            None => return Err(VerifyError::UnexpectedObject { id }),
        };
        let h = heap.header(addr);
        if h.pi != rec.pi || h.delta != rec.delta {
            return Err(VerifyError::ContentMismatch {
                id,
                detail: format!(
                    "shape (pi,delta) = ({},{}), expected ({},{})",
                    h.pi, h.delta, rec.pi, rec.delta
                ),
            });
        }
        for slot in 0..h.delta {
            let got = heap.data(addr, slot);
            if got != rec.data[slot as usize] {
                return Err(VerifyError::ContentMismatch {
                    id,
                    detail: format!(
                        "data[{slot}] = {got:#x}, expected {:#x}",
                        rec.data[slot as usize]
                    ),
                });
            }
        }
        for slot in 0..h.pi {
            let target = heap.ptr(addr, slot);
            let expected_child = rec.children[slot as usize];
            if target == NULL {
                if expected_child.is_some() {
                    return Err(VerifyError::ContentMismatch {
                        id,
                        detail: format!("ptr[{slot}] is null, expected {expected_child:?}"),
                    });
                }
                continue;
            }
            if !heap.in_tospace(target) {
                return Err(VerifyError::DanglingPointer {
                    obj: addr,
                    slot,
                    target,
                });
            }
            let child_id = id_at(target);
            if child_id != expected_child {
                return Err(VerifyError::ContentMismatch {
                    id,
                    detail: format!("ptr[{slot}] -> id {child_id:?}, expected {expected_child:?}"),
                });
            }
        }
    }

    // --- 3 (other direction) + 5: exact live set, no garbage copied ----
    for &id in snapshot.objects.keys() {
        if !ids_seen.contains(&id) {
            return Err(VerifyError::MissingObject { id });
        }
    }
    let live_words_found = if compacted {
        let found = (free - to_base) as u64;
        if opts.allow_unknown_objects {
            if found < snapshot.live_words {
                return Err(VerifyError::LiveWordsMismatch {
                    expected: snapshot.live_words,
                    found,
                });
            }
        } else if found != snapshot.live_words {
            return Err(VerifyError::LiveWordsMismatch {
                expected: snapshot.live_words,
                found,
            });
        }
        found
    } else {
        // Fragmenting collectors consume at least the live volume.
        let consumed = (free - to_base) as u64;
        if consumed < snapshot.live_words {
            return Err(VerifyError::LiveWordsMismatch {
                expected: snapshot.live_words,
                found: consumed,
            });
        }
        snapshot.live_words
    };

    // Reachability from roots must cover every object in tospace (copying
    // collectors never copy garbage).
    let mut reached: HashSet<Addr> = HashSet::new();
    let mut queue: VecDeque<Addr> = heap
        .roots()
        .iter()
        .copied()
        .filter(|&r| r != NULL)
        .collect();
    for &r in heap.roots() {
        if r != NULL {
            reached.insert(r);
        }
    }
    while let Some(a) = queue.pop_front() {
        let h = heap.header(a);
        for slot in 0..h.pi {
            let t = heap.ptr(a, slot);
            if t != NULL && reached.insert(t) {
                queue.push_back(t);
            }
        }
    }
    if reached.len() != by_addr.len() {
        return Err(VerifyError::NotCompacted {
            detail: format!(
                "{} objects in tospace but only {} reachable from roots",
                by_addr.len(),
                reached.len()
            ),
        });
    }

    Ok(VerifyReport {
        live_objects: by_addr.len() - unknown_objects,
        live_words: live_words_found,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::header::Header;

    /// Trivial single-threaded Cheney used to exercise the verifier itself.
    fn toy_cheney(heap: &mut Heap) -> Addr {
        heap.flip();
        let mut scan = heap.to_base();
        let mut free = heap.to_base();
        let evacuate = |heap: &mut Heap, free: &mut Addr, obj: Addr| -> Addr {
            if obj == NULL {
                return NULL;
            }
            let h = heap.header(obj);
            if h.marked {
                return h.link;
            }
            let dst = *free;
            *free += h.size_words();
            for i in 0..h.size_words() {
                let w = heap.word(obj + i);
                heap.set_word(dst + i, w);
            }
            heap.set_header(dst, Header::black(h.pi, h.delta));
            heap.set_header(obj, Header::forwarded(h.pi, h.delta, dst));
            dst
        };
        for i in 0..heap.roots().len() {
            let r = heap.roots()[i];
            let n = evacuate(heap, &mut free, r);
            heap.set_root(i, n);
        }
        while scan < free {
            let h = heap.header(scan);
            for slot in 0..h.pi {
                let t = heap.ptr(scan, slot);
                let n = evacuate(heap, &mut free, t);
                heap.set_ptr(scan, slot, n);
            }
            scan += h.size_words();
        }
        heap.set_alloc_ptr(free);
        free
    }

    fn diamond_heap() -> Heap {
        let mut heap = Heap::new(500);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let l = b.add(1, 2).unwrap();
        let rr = b.add(1, 2).unwrap();
        let bot = b.add(0, 4).unwrap();
        let _garbage = b.add(3, 3).unwrap();
        b.link(r, 0, l);
        b.link(r, 1, rr);
        b.link(l, 0, bot);
        b.link(rr, 0, bot);
        b.root(r);
        heap
    }

    #[test]
    fn verifier_accepts_correct_collection() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        let report = verify_collection(&heap, free, &snap).unwrap();
        assert_eq!(report.live_objects, 4);
        assert_eq!(report.live_words, snap.live_words);
    }

    #[test]
    fn verifier_rejects_gray_object() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Corrupt: re-gray the first object.
        let base = heap.to_base();
        let h = heap.header(base);
        heap.set_header(base, Header::gray(h.pi, h.delta, 0));
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::NotBlack { .. })
        ));
    }

    #[test]
    fn verifier_rejects_fromspace_pointer() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        let base = heap.to_base();
        let from = heap.from_base();
        heap.set_ptr(base, 0, from); // dangling into fromspace
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::DanglingPointer { .. })
        ));
    }

    #[test]
    fn verifier_rejects_content_corruption() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        let base = heap.to_base();
        let h = heap.header(base);
        heap.set_data(base, h.delta - 1, 0x12345678);
        let r = verify_collection(&heap, free, &snap);
        assert!(
            matches!(r, Err(VerifyError::ContentMismatch { .. }))
                // data word 0 corruption shows up as an id mismatch instead
                || matches!(r, Err(VerifyError::UnexpectedObject { .. }))
                || matches!(r, Err(VerifyError::RootIdMismatch { .. })),
            "got {r:?}"
        );
    }

    #[test]
    fn verifier_rejects_wrong_free_pointer() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        assert!(verify_collection(&heap, free + 3, &snap).is_err());
    }

    #[test]
    fn verifier_rejects_missing_object() {
        let mut heap = diamond_heap();
        let mut snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Pretend the snapshot had one more object.
        snap.objects.insert(
            999,
            crate::snapshot::ObjRecord {
                pi: 0,
                delta: 1,
                data: vec![999],
                children: vec![],
            },
        );
        snap.live_words += 3;
        let r = verify_collection(&heap, free, &snap);
        assert!(
            matches!(r, Err(VerifyError::MissingObject { id: 999 }))
                || matches!(r, Err(VerifyError::LiveWordsMismatch { .. })),
            "got {r:?}"
        );
    }

    #[test]
    fn empty_heap_verifies() {
        let mut heap = Heap::new(100);
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        let report = verify_collection(&heap, free, &snap).unwrap();
        assert_eq!(report.live_objects, 0);
    }

    #[test]
    fn verifier_rejects_root_left_in_fromspace() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Un-redirect the root: point it back into fromspace.
        let from = heap.from_base();
        heap.set_root(0, from);
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::RootNotInTospace { root_index: 0, .. })
        ));
    }

    #[test]
    fn verifier_rejects_root_redirected_to_wrong_object() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Redirect the root to the second tospace object instead of the
        // first (toy_cheney copies the root object to to_base).
        let base = heap.to_base();
        let second = base + heap.header(base).size_words();
        assert!(second < free);
        heap.set_root(0, second);
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::RootIdMismatch { root_index: 0, .. })
        ));
    }

    #[test]
    fn verifier_rejects_root_nulled_out() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        heap.set_root(0, NULL);
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::RootIdMismatch {
                root_index: 0,
                found: None,
                ..
            })
        ));
    }

    #[test]
    fn verifier_rejects_object_missing_from_snapshot() {
        let mut heap = diamond_heap();
        let mut snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Forget the shared bottom object (id 4): the copy in tospace is
        // now one the snapshot never knew about.
        assert!(snap.objects.remove(&4).is_some());
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::UnexpectedObject { id: 4 })
        ));
    }

    #[test]
    fn verifier_rejects_duplicate_evacuation() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // Forge the failure mode invariant 2 prevents: two tospace copies
        // carrying the same id (here by rewriting the second object's id
        // to the first's).
        let base = heap.to_base();
        let second = base + heap.header(base).size_words();
        let first_id = heap.data(base, 0);
        heap.set_data(second, 0, first_id);
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::NotCompacted { .. })
        ));
    }

    #[test]
    fn verifier_rejects_truncated_tospace_walk() {
        let mut heap = diamond_heap();
        let snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // A frontier one word short cuts the last object in half.
        assert!(matches!(
            verify_collection(&heap, free - 1, &snap),
            Err(VerifyError::NotCompacted { .. })
        ));
    }

    #[test]
    fn verifier_rejects_live_volume_mismatch() {
        let mut heap = diamond_heap();
        let mut snap = Snapshot::capture(&heap);
        let free = toy_cheney(&mut heap);
        // The heap is intact but the snapshot claims one more live word.
        snap.live_words += 1;
        assert!(matches!(
            verify_collection(&heap, free, &snap),
            Err(VerifyError::LiveWordsMismatch { .. })
        ));
    }
}
