//! Convenience API for constructing object graphs in fromspace.
//!
//! The builder gives every object a unique non-zero *id*, stored in data
//! word 0, and stamps the remaining data words with a deterministic mix of
//! the id and the slot index. The snapshot/verify machinery uses the ids to
//! check, after a collection, that the reachable graph was copied intact
//! (same ids, same shapes, same contents, same edges).

use crate::heap::{Addr, Heap, NULL};

/// Index of an object created through a [`GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Deterministic content stamp for data word `slot` of object `id`
/// (slot 0 always holds the raw id).
pub fn stamp(id: u32, slot: u32) -> u32 {
    if slot == 0 {
        id
    } else {
        // splitmix-style mix; any fixed bijective-ish mix works, the
        // verifier only needs reproducibility.
        let mut x = (id as u64) << 32 | slot as u64;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        (x ^ (x >> 31)) as u32
    }
}

/// Builds an object graph in the fromspace of a [`Heap`].
pub struct GraphBuilder<'h> {
    heap: &'h mut Heap,
    addrs: Vec<Addr>,
}

impl<'h> GraphBuilder<'h> {
    /// Wrap a heap. Objects previously allocated through other means are not
    /// tracked by the builder.
    pub fn new(heap: &'h mut Heap) -> GraphBuilder<'h> {
        GraphBuilder {
            heap,
            addrs: Vec::new(),
        }
    }

    /// Allocate an object with `pi` pointer slots and `delta >= 1` data
    /// words and stamp its data area. Returns `None` when fromspace is full.
    ///
    /// # Panics
    /// Panics if `delta == 0`: verified graphs need data word 0 for the id.
    pub fn add(&mut self, pi: u32, delta: u32) -> Option<ObjId> {
        assert!(
            delta >= 1,
            "verified objects need delta >= 1 to carry an id"
        );
        let addr = self.heap.alloc(pi, delta)?;
        let id = self.addrs.len() as u32 + 1;
        for slot in 0..delta {
            self.heap.set_data(addr, slot, stamp(id, slot));
        }
        self.addrs.push(addr);
        Some(ObjId(id))
    }

    /// Point `parent`'s pointer slot `slot` at `child`.
    pub fn link(&mut self, parent: ObjId, slot: u32, child: ObjId) {
        let p = self.addr(parent);
        let c = self.addr(child);
        self.heap.set_ptr(p, slot, c);
    }

    /// Null out `parent`'s pointer slot `slot`.
    pub fn unlink(&mut self, parent: ObjId, slot: u32) {
        let p = self.addr(parent);
        self.heap.set_ptr(p, slot, NULL);
    }

    /// Register `obj` as a root.
    pub fn root(&mut self, obj: ObjId) {
        let a = self.addr(obj);
        self.heap.add_root(a);
    }

    /// Fromspace address of a built object.
    pub fn addr(&self, obj: ObjId) -> Addr {
        self.addrs[(obj.0 - 1) as usize]
    }

    /// Number of objects built so far.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no objects have been built.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Access the underlying heap.
    pub fn heap(&mut self) -> &mut Heap {
        self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut heap = Heap::new(1000);
        let mut b = GraphBuilder::new(&mut heap);
        let a = b.add(2, 1).unwrap();
        let c = b.add(0, 3).unwrap();
        b.link(a, 0, c);
        b.link(a, 1, a); // self loop
        b.root(a);
        let (aa, ca) = (b.addr(a), b.addr(c));
        assert_eq!(heap.ptr(aa, 0), ca);
        assert_eq!(heap.ptr(aa, 1), aa);
        assert_eq!(heap.roots(), &[aa]);
        assert_eq!(heap.data(aa, 0), 1);
        assert_eq!(heap.data(ca, 0), 2);
        assert_eq!(heap.data(ca, 1), stamp(2, 1));
        assert_eq!(heap.data(ca, 2), stamp(2, 2));
    }

    #[test]
    fn add_returns_none_when_full() {
        let mut heap = Heap::new(8);
        let mut b = GraphBuilder::new(&mut heap);
        assert!(b.add(0, 1).is_some()); // 3 words
        assert!(b.add(0, 1).is_some()); // 3 words
        assert!(b.add(0, 1).is_none()); // 2 words left
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn ids_are_sequential_and_nonzero() {
        let mut heap = Heap::new(100);
        let mut b = GraphBuilder::new(&mut heap);
        let x = b.add(0, 1).unwrap();
        let y = b.add(0, 1).unwrap();
        assert_eq!(x, ObjId(1));
        assert_eq!(y, ObjId(2));
    }

    #[test]
    fn stamp_slot_zero_is_id() {
        assert_eq!(stamp(17, 0), 17);
        assert_ne!(stamp(17, 1), stamp(17, 2));
        assert_ne!(stamp(17, 1), stamp(18, 1));
    }
}

#[cfg(test)]
mod unlink_tests {
    use super::*;
    use crate::heap::{Heap, NULL};

    #[test]
    fn unlink_clears_the_slot() {
        let mut heap = Heap::new(100);
        let mut b = GraphBuilder::new(&mut heap);
        let p = b.add(2, 1).unwrap();
        let c = b.add(0, 1).unwrap();
        b.link(p, 0, c);
        b.link(p, 1, c);
        b.unlink(p, 0);
        let pa = b.addr(p);
        let ca = b.addr(c);
        assert_eq!(heap.ptr(pa, 0), NULL);
        assert_eq!(heap.ptr(pa, 1), ca);
    }
}
