//! Two-word object header encoding (paper Fig. 3 / Fig. 4).
//!
//! Word 0 carries the object *attributes*: the pointer-area length `pi`,
//! the data-area length `delta`, the tricolour state of a tospace frame and
//! the fromspace *mark* ("evacuated") bit. Word 1 carries either the
//! forwarding pointer (fromspace header, once the object has been
//! evacuated) or the backlink to the fromspace original (gray tospace
//! frame). A black tospace header carries no word-1 payload.
//!
//! Bit layout of word 0:
//!
//! ```text
//!  31       30..28   27..26   25..14   13..2    1..0
//!  sw-lock  (free)   colour   delta    pi       (free)
//! ```
//!
//! Bit 31 is reserved as a spinlock bit for the *software* collectors in
//! `hwgc-swgc`; the hardware model never sets it (its header locks live in
//! registers of the synchronization block, which is the whole point of the
//! paper). `pi` and `delta` are 12-bit fields, so an object body is at most
//! 2 × 4095 words, comfortably above the 10–50 byte typical object size the
//! paper cites.

use crate::heap::{Addr, Word};

/// Maximum value of the `pi` and `delta` header fields (12 bits each).
pub const MAX_FIELD: u32 = 0xFFF;

const PI_SHIFT: u32 = 2;
const DELTA_SHIFT: u32 = 14;
const COLOR_SHIFT: u32 = 26;
const COLOR_MASK: u32 = 0b11;
/// Fromspace mark ("object has been evacuated") bit.
const MARK_BIT: u32 = 1 << 28;
/// Software-collector spinlock bit (never used by the hardware model).
pub const SW_LOCK_BIT: u32 = 1 << 31;

/// Tricolour state of a tospace object frame (Dijkstra's abstraction as
/// applied to the paper's Fig. 4 object life cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Color {
    /// Ordinary mutator-allocated object; also the initial fromspace state.
    White = 0,
    /// Evacuated frame whose body has not been copied yet (Gray 1/Gray 2).
    Gray = 1,
    /// Fully copied object; the collector is done with it for this cycle.
    Black = 2,
}

impl Color {
    fn from_bits(bits: u32) -> Color {
        match bits & COLOR_MASK {
            0 => Color::White,
            1 => Color::Gray,
            _ => Color::Black,
        }
    }
}

/// A decoded object header (both words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Number of pointer words in the body.
    pub pi: u32,
    /// Number of non-pointer data words in the body.
    pub delta: u32,
    /// Tricolour state.
    pub color: Color,
    /// Fromspace "evacuated" bit.
    pub marked: bool,
    /// Word 1: forwarding pointer (marked fromspace header) or backlink
    /// (gray tospace frame); `NULL` otherwise.
    pub link: Addr,
}

impl Header {
    /// A fresh white header for a mutator-allocated object.
    pub fn white(pi: u32, delta: u32) -> Header {
        Header {
            pi,
            delta,
            color: Color::White,
            marked: false,
            link: 0,
        }
    }

    /// Gray tospace frame header: sizes plus a backlink to the fromspace
    /// original, installed at evacuation time so that the scanning core can
    /// find the body to copy and advance `scan` by the correct size.
    pub fn gray(pi: u32, delta: u32, backlink: Addr) -> Header {
        Header {
            pi,
            delta,
            color: Color::Gray,
            marked: false,
            link: backlink,
        }
    }

    /// Black tospace header: the final state written when the body copy is
    /// complete (paper: "writes pi and delta into the header of the tospace
    /// copy").
    pub fn black(pi: u32, delta: u32) -> Header {
        Header {
            pi,
            delta,
            color: Color::Black,
            marked: false,
            link: 0,
        }
    }

    /// Marked fromspace header with the forwarding pointer installed.
    pub fn forwarded(pi: u32, delta: u32, fwd: Addr) -> Header {
        Header {
            pi,
            delta,
            color: Color::White,
            marked: true,
            link: fwd,
        }
    }

    /// Total size of the object in words (header + body).
    pub fn size_words(&self) -> u32 {
        2 + self.pi + self.delta
    }

    /// Encode into the two header words.
    pub fn encode(&self) -> (Word, Word) {
        debug_assert!(self.pi <= MAX_FIELD && self.delta <= MAX_FIELD);
        let mut w0 = (self.pi << PI_SHIFT)
            | (self.delta << DELTA_SHIFT)
            | ((self.color as u32) << COLOR_SHIFT);
        if self.marked {
            w0 |= MARK_BIT;
        }
        (w0, self.link)
    }

    /// Decode from the two header words. The software-lock bit is ignored.
    pub fn decode(w0: Word, w1: Word) -> Header {
        Header {
            pi: (w0 >> PI_SHIFT) & MAX_FIELD,
            delta: (w0 >> DELTA_SHIFT) & MAX_FIELD,
            color: Color::from_bits(w0 >> COLOR_SHIFT),
            marked: w0 & MARK_BIT != 0,
            link: w1,
        }
    }
}

/// Extract `pi` from an encoded word 0 without a full decode.
#[inline]
pub fn pi_of(w0: Word) -> u32 {
    (w0 >> PI_SHIFT) & MAX_FIELD
}

/// Extract `delta` from an encoded word 0 without a full decode.
#[inline]
pub fn delta_of(w0: Word) -> u32 {
    (w0 >> DELTA_SHIFT) & MAX_FIELD
}

/// Extract the object size in words from an encoded word 0.
#[inline]
pub fn size_of_w0(w0: Word) -> u32 {
    2 + pi_of(w0) + delta_of(w0)
}

/// Test the fromspace mark ("evacuated") bit of an encoded word 0.
#[inline]
pub fn is_marked(w0: Word) -> bool {
    w0 & MARK_BIT != 0
}

/// Set the fromspace mark bit on an encoded word 0.
#[inline]
pub fn with_mark(w0: Word) -> Word {
    w0 | MARK_BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_white() {
        let h = Header::white(3, 7);
        let (w0, w1) = h.encode();
        assert_eq!(Header::decode(w0, w1), h);
        assert_eq!(h.size_words(), 12);
    }

    #[test]
    fn roundtrip_gray_with_backlink() {
        let h = Header::gray(0, 0, 0xDEAD);
        let (w0, w1) = h.encode();
        let d = Header::decode(w0, w1);
        assert_eq!(d.color, Color::Gray);
        assert_eq!(d.link, 0xDEAD);
        assert_eq!(d.size_words(), 2);
    }

    #[test]
    fn roundtrip_black() {
        let h = Header::black(MAX_FIELD, MAX_FIELD);
        let (w0, w1) = h.encode();
        let d = Header::decode(w0, w1);
        assert_eq!(d.color, Color::Black);
        assert_eq!(d.pi, MAX_FIELD);
        assert_eq!(d.delta, MAX_FIELD);
        assert_eq!(w1, 0);
    }

    #[test]
    fn roundtrip_forwarded() {
        let h = Header::forwarded(1, 2, 42);
        let (w0, w1) = h.encode();
        let d = Header::decode(w0, w1);
        assert!(d.marked);
        assert_eq!(d.link, 42);
        assert_eq!(w1, 42);
        assert!(is_marked(w0));
    }

    #[test]
    fn mark_bit_is_orthogonal_to_fields() {
        let (w0, _) = Header::white(5, 9).encode();
        let m = with_mark(w0);
        assert!(is_marked(m));
        assert_eq!(pi_of(m), 5);
        assert_eq!(delta_of(m), 9);
        assert_eq!(size_of_w0(m), 16);
    }

    #[test]
    fn sw_lock_bit_ignored_by_decode() {
        let (w0, w1) = Header::white(5, 9).encode();
        let d = Header::decode(w0 | SW_LOCK_BIT, w1);
        assert_eq!(d, Header::white(5, 9));
    }

    #[test]
    fn fast_accessors_match_decode() {
        for (pi, delta) in [(0, 0), (1, 0), (0, 1), (12, 34), (MAX_FIELD, MAX_FIELD)] {
            let (w0, _) = Header::white(pi, delta).encode();
            assert_eq!(pi_of(w0), pi);
            assert_eq!(delta_of(w0), delta);
            assert_eq!(size_of_w0(w0), 2 + pi + delta);
        }
    }
}
