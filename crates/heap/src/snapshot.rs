//! Pre-collection snapshot of the reachable object graph.
//!
//! Captured by a breadth-first traversal from the roots before the
//! collector runs; compared against the tospace contents afterwards by
//! [`crate::verify`]. Objects are keyed by the id the [`crate::GraphBuilder`]
//! stamped into data word 0, so the comparison is independent of where the
//! collector placed each copy.

use std::collections::{HashMap, VecDeque};

use crate::heap::{Addr, Heap, NULL};

/// Shape + contents of one reachable object, keyed by its builder id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjRecord {
    pub pi: u32,
    pub delta: u32,
    /// Data words (including the id in slot 0).
    pub data: Vec<u32>,
    /// Child ids per pointer slot (`None` for null slots).
    pub children: Vec<Option<u32>>,
}

/// The reachable graph at a point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// id -> record for every reachable object.
    pub objects: HashMap<u32, ObjRecord>,
    /// Ids referenced by the roots, in root order (`None` for null roots).
    pub root_ids: Vec<Option<u32>>,
    /// Total words occupied by reachable objects (headers included).
    pub live_words: u64,
}

impl Snapshot {
    /// Capture the reachable graph of `heap` starting from its root set.
    /// Every reachable object must carry its id in data word 0 (i.e. have
    /// `delta >= 1` and have been stamped by the builder).
    ///
    /// # Panics
    /// Panics if a reachable object has `delta == 0` or a duplicate id.
    pub fn capture(heap: &Heap) -> Snapshot {
        let mut objects = HashMap::new();
        let mut seen: HashMap<Addr, u32> = HashMap::new();
        let mut queue: VecDeque<Addr> = VecDeque::new();
        let mut live_words = 0u64;

        let visit = |addr: Addr,
                     seen: &mut HashMap<Addr, u32>,
                     queue: &mut VecDeque<Addr>|
         -> Option<u32> {
            if addr == NULL {
                return None;
            }
            if let Some(&id) = seen.get(&addr) {
                return Some(id);
            }
            let h = heap.header(addr);
            assert!(
                h.delta >= 1,
                "snapshot requires id-stamped objects (delta >= 1)"
            );
            let id = heap.data(addr, 0);
            assert_ne!(id, 0, "object at {addr} has no id stamp");
            seen.insert(addr, id);
            queue.push_back(addr);
            Some(id)
        };

        let root_ids: Vec<Option<u32>> = heap
            .roots()
            .to_vec()
            .into_iter()
            .map(|r| visit(r, &mut seen, &mut queue))
            .collect();

        while let Some(addr) = queue.pop_front() {
            let h = heap.header(addr);
            live_words += h.size_words() as u64;
            let id = heap.data(addr, 0);
            let data: Vec<u32> = (0..h.delta).map(|i| heap.data(addr, i)).collect();
            let children: Vec<Option<u32>> = (0..h.pi)
                .map(|i| visit(heap.ptr(addr, i), &mut seen, &mut queue))
                .collect();
            let prev = objects.insert(
                id,
                ObjRecord {
                    pi: h.pi,
                    delta: h.delta,
                    data,
                    children,
                },
            );
            assert!(prev.is_none(), "duplicate object id {id}");
        }

        Snapshot {
            objects,
            root_ids,
            live_words,
        }
    }

    /// Number of reachable objects.
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn snapshot_reaches_only_live_objects() {
        let mut heap = Heap::new(1000);
        let mut b = GraphBuilder::new(&mut heap);
        let a = b.add(1, 1).unwrap();
        let c = b.add(0, 1).unwrap();
        let _garbage = b.add(0, 5).unwrap();
        b.link(a, 0, c);
        b.root(a);
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 2);
        assert_eq!(snap.root_ids, vec![Some(1)]);
        assert_eq!(snap.live_words, 4 + 3);
        assert_eq!(snap.objects[&1].children, vec![Some(2)]);
    }

    #[test]
    fn snapshot_handles_cycles_and_nulls() {
        let mut heap = Heap::new(1000);
        let mut b = GraphBuilder::new(&mut heap);
        let a = b.add(2, 1).unwrap();
        let c = b.add(1, 1).unwrap();
        b.link(a, 0, c);
        b.link(c, 0, a); // cycle back
        b.root(a);
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 2);
        assert_eq!(snap.objects[&1].children, vec![Some(2), None]);
        assert_eq!(snap.objects[&2].children, vec![Some(1)]);
    }

    #[test]
    fn shared_children_recorded_once() {
        let mut heap = Heap::new(1000);
        let mut b = GraphBuilder::new(&mut heap);
        let r = b.add(2, 1).unwrap();
        let shared = b.add(0, 2).unwrap();
        b.link(r, 0, shared);
        b.link(r, 1, shared);
        b.root(r);
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 2);
        assert_eq!(snap.objects[&1].children, vec![Some(2), Some(2)]);
    }

    #[test]
    fn empty_roots_empty_snapshot() {
        let heap = Heap::new(100);
        let snap = Snapshot::capture(&heap);
        assert_eq!(snap.live_objects(), 0);
        assert_eq!(snap.live_words, 0);
        assert!(snap.root_ids.is_empty());
    }
}
