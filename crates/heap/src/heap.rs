//! Word-addressed arena with two semispaces.
//!
//! The arena is a flat `Vec<u32>`; addresses are word indices. The first
//! [`RESERVED_WORDS`] words are never used so that address `0` can serve as
//! the null pointer. The two semispaces occupy the rest of the arena.
//!
//! Space roles follow the paper: the mutator allocates by bumping
//! `alloc_ptr` inside the current *tospace* (where the previous cycle left
//! the live data). At the beginning of a collection cycle the collector
//! calls [`Heap::flip`], which turns that space into fromspace and the
//! empty space into tospace, evacuates into tospace, and finally hands the
//! new allocation frontier back via [`Heap::set_alloc_ptr`].

use crate::header::{self, Header};

/// Machine word (the paper's prototype is a 32-bit RISC).
pub type Word = u32;
/// Word-index address into the arena. `0` is the null pointer.
pub type Addr = u32;

/// The null pointer.
pub const NULL: Addr = 0;
/// Words at the bottom of the arena that never hold objects.
pub const RESERVED_WORDS: u32 = 4;

/// A two-semispace, word-addressed heap.
#[derive(Clone)]
pub struct Heap {
    words: Vec<Word>,
    semi_size: u32,
    /// True when the low semispace is the current fromspace.
    from_is_lo: bool,
    /// Mutator bump pointer (next free word in tospace).
    alloc_ptr: Addr,
    /// Root set: addresses of fromspace objects directly reachable from the
    /// (stopped) main processor's registers and stacks.
    roots: Vec<Addr>,
}

impl Heap {
    /// Create a heap with two semispaces of `semi_size` words each.
    ///
    /// # Panics
    /// Panics if `semi_size` is zero or the arena would exceed `u32` indexing.
    pub fn new(semi_size: u32) -> Heap {
        assert!(semi_size > 0, "semispace must be non-empty");
        let total = RESERVED_WORDS as u64 + 2 * semi_size as u64;
        assert!(
            total <= u32::MAX as u64,
            "arena too large for 32-bit addressing"
        );
        Heap {
            words: vec![0; total as usize],
            semi_size,
            from_is_lo: false,
            alloc_ptr: RESERVED_WORDS,
            roots: Vec::new(),
        }
    }

    /// Words per semispace.
    pub fn semi_size(&self) -> u32 {
        self.semi_size
    }

    /// Base address of the current fromspace.
    pub fn from_base(&self) -> Addr {
        if self.from_is_lo {
            RESERVED_WORDS
        } else {
            RESERVED_WORDS + self.semi_size
        }
    }

    /// Base address of the current tospace.
    pub fn to_base(&self) -> Addr {
        if self.from_is_lo {
            RESERVED_WORDS + self.semi_size
        } else {
            RESERVED_WORDS
        }
    }

    /// One past the last word of the current fromspace.
    pub fn from_limit(&self) -> Addr {
        self.from_base() + self.semi_size
    }

    /// One past the last word of the current tospace.
    pub fn to_limit(&self) -> Addr {
        self.to_base() + self.semi_size
    }

    /// Does `addr` fall inside the current fromspace?
    pub fn in_fromspace(&self, addr: Addr) -> bool {
        addr >= self.from_base() && addr < self.from_limit()
    }

    /// Does `addr` fall inside the current tospace?
    pub fn in_tospace(&self, addr: Addr) -> bool {
        addr >= self.to_base() && addr < self.to_limit()
    }

    /// Current mutator allocation pointer.
    pub fn alloc_ptr(&self) -> Addr {
        self.alloc_ptr
    }

    /// Words still available for mutator allocation (in tospace).
    pub fn free_words(&self) -> u32 {
        self.to_limit() - self.alloc_ptr
    }

    /// Allocate an object with `pi` pointer words and `delta` data words.
    /// Returns the object address (of header word 0), or `None` when the
    /// semispace is exhausted (the paper's trigger for a collection cycle).
    pub fn alloc(&mut self, pi: u32, delta: u32) -> Option<Addr> {
        assert!(pi <= header::MAX_FIELD && delta <= header::MAX_FIELD);
        let size = 2 + pi + delta;
        if self.free_words() < size {
            return None;
        }
        let addr = self.alloc_ptr;
        self.alloc_ptr += size;
        let (w0, w1) = Header::white(pi, delta).encode();
        self.set_word(addr, w0);
        self.set_word(addr + 1, w1);
        // Pointer area starts out null; data area starts out zero. The arena
        // is zero-initialised and evacuated frames are fully overwritten, so
        // nothing to do for a fresh space, but after a flip the fromspace
        // contains stale words from two cycles ago.
        for i in 0..size - 2 {
            self.set_word(addr + 2 + i, 0);
        }
        Some(addr)
    }

    /// Swap the roles of fromspace and tospace (start of a collection
    /// cycle): the space holding the objects becomes fromspace and the
    /// empty space becomes tospace. The caller (collector) is responsible
    /// for setting the new allocation frontier via [`Heap::set_alloc_ptr`]
    /// when it finishes.
    pub fn flip(&mut self) {
        self.from_is_lo = !self.from_is_lo;
    }

    /// Set the mutator allocation pointer (used by the collector after a
    /// cycle: allocation resumes right after the compacted live data).
    pub fn set_alloc_ptr(&mut self, addr: Addr) {
        debug_assert!(addr >= self.to_base() && addr <= self.to_limit());
        self.alloc_ptr = addr;
    }

    /// Raw word read.
    #[inline]
    pub fn word(&self, addr: Addr) -> Word {
        self.words[addr as usize]
    }

    /// Raw word write.
    #[inline]
    pub fn set_word(&mut self, addr: Addr, value: Word) {
        self.words[addr as usize] = value;
    }

    /// Read and decode the header of the object at `addr`.
    pub fn header(&self, addr: Addr) -> Header {
        Header::decode(self.word(addr), self.word(addr + 1))
    }

    /// Encode and write the header of the object at `addr`.
    pub fn set_header(&mut self, addr: Addr, h: Header) {
        let (w0, w1) = h.encode();
        self.set_word(addr, w0);
        self.set_word(addr + 1, w1);
    }

    /// Read pointer slot `i` of the object at `addr`.
    pub fn ptr(&self, addr: Addr, i: u32) -> Addr {
        debug_assert!(i < header::pi_of(self.word(addr)));
        self.word(addr + 2 + i)
    }

    /// Write pointer slot `i` of the object at `addr`.
    pub fn set_ptr(&mut self, addr: Addr, i: u32, target: Addr) {
        debug_assert!(i < header::pi_of(self.word(addr)));
        self.set_word(addr + 2 + i, target);
    }

    /// Read data slot `i` of the object at `addr`.
    pub fn data(&self, addr: Addr, i: u32) -> Word {
        let w0 = self.word(addr);
        debug_assert!(i < header::delta_of(w0));
        self.word(addr + 2 + header::pi_of(w0) + i)
    }

    /// Write data slot `i` of the object at `addr`.
    pub fn set_data(&mut self, addr: Addr, i: u32, value: Word) {
        let w0 = self.word(addr);
        debug_assert!(i < header::delta_of(w0));
        self.set_word(addr + 2 + header::pi_of(w0) + i, value);
    }

    /// The root set.
    pub fn roots(&self) -> &[Addr] {
        &self.roots
    }

    /// Add a root.
    pub fn add_root(&mut self, addr: Addr) {
        self.roots.push(addr);
    }

    /// Replace root `i` (used by the collector to redirect roots to tospace
    /// copies; in hardware, core 1 rewrites the main processor's registers).
    pub fn set_root(&mut self, i: usize, addr: Addr) {
        self.roots[i] = addr;
    }

    /// Remove and return the most recently added root. Together with
    /// [`Heap::add_root`] this makes the root set usable as a *shadow
    /// stack*: a mutator pushes intermediate references before an
    /// allocation that may trigger a (moving) collection and pops the
    /// possibly-updated values afterwards.
    pub fn pop_root(&mut self) -> Addr {
        self.roots.pop().expect("pop_root on empty root set")
    }

    /// Remove all roots.
    pub fn clear_roots(&mut self) {
        self.roots.clear();
    }

    /// Number of words of live data currently allocated (mutator view).
    pub fn allocated_words(&self) -> u32 {
        self.alloc_ptr - self.to_base()
    }

    /// Expose the backing words (for the software collectors, which build an
    /// atomic arena with the identical layout).
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Mutable view of the backing words — the parallel engine's copy
    /// pool writes disjoint tospace ranges through this in bulk instead
    /// of per-word [`Heap::set_word`] calls.
    pub fn words_mut(&mut self) -> &mut [Word] {
        &mut self.words
    }

    /// Consume the heap, yielding the backing words.
    pub fn into_words(self) -> Vec<Word> {
        self.words
    }

    /// Replace the backing words (same length required); used to rebuild a
    /// `Heap` view after a software collection ran on a raw arena.
    pub fn restore_words(&mut self, words: Vec<Word>) {
        assert_eq!(words.len(), self.words.len());
        self.words = words;
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("semi_size", &self.semi_size)
            .field("from_is_lo", &self.from_is_lo)
            .field("alloc_ptr", &self.alloc_ptr)
            .field("roots", &self.roots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::Color;

    #[test]
    fn new_heap_layout() {
        let h = Heap::new(100);
        assert_eq!(h.to_base(), RESERVED_WORDS);
        assert_eq!(h.from_base(), RESERVED_WORDS + 100);
        assert_eq!(h.to_limit(), RESERVED_WORDS + 100);
        assert_eq!(h.from_limit(), RESERVED_WORDS + 200);
        assert_eq!(h.alloc_ptr(), RESERVED_WORDS);
        assert_eq!(h.free_words(), 100);
    }

    #[test]
    fn alloc_bumps_and_initialises() {
        let mut h = Heap::new(100);
        let a = h.alloc(2, 3).unwrap();
        assert_eq!(a, RESERVED_WORDS);
        assert_eq!(h.alloc_ptr(), RESERVED_WORDS + 7);
        let hd = h.header(a);
        assert_eq!(hd.pi, 2);
        assert_eq!(hd.delta, 3);
        assert_eq!(hd.color, Color::White);
        assert_eq!(h.ptr(a, 0), NULL);
        assert_eq!(h.ptr(a, 1), NULL);
        assert_eq!(h.data(a, 0), 0);
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let mut h = Heap::new(10);
        assert!(h.alloc(0, 6).is_some()); // 8 words
        assert!(h.alloc(0, 1).is_none()); // 3 words > 2 left
        assert!(h.alloc(0, 0).is_some()); // exactly 2 words
        assert_eq!(h.free_words(), 0);
        assert!(h.alloc(0, 0).is_none());
    }

    #[test]
    fn flip_swaps_spaces() {
        let mut h = Heap::new(50);
        let fb = h.from_base();
        let tb = h.to_base();
        h.flip();
        assert_eq!(h.from_base(), tb);
        assert_eq!(h.to_base(), fb);
        h.flip();
        assert_eq!(h.from_base(), fb);
    }

    #[test]
    fn space_membership() {
        let h = Heap::new(50);
        assert!(h.in_tospace(RESERVED_WORDS));
        assert!(!h.in_tospace(RESERVED_WORDS + 50));
        assert!(h.in_fromspace(RESERVED_WORDS + 50));
        assert!(!h.in_fromspace(RESERVED_WORDS + 100));
        assert!(!h.in_fromspace(NULL));
        assert!(!h.in_tospace(NULL));
    }

    #[test]
    fn pointer_and_data_accessors() {
        let mut h = Heap::new(100);
        let a = h.alloc(1, 2).unwrap();
        let b = h.alloc(0, 1).unwrap();
        h.set_ptr(a, 0, b);
        h.set_data(a, 0, 0xAAAA);
        h.set_data(a, 1, 0xBBBB);
        assert_eq!(h.ptr(a, 0), b);
        assert_eq!(h.data(a, 0), 0xAAAA);
        assert_eq!(h.data(a, 1), 0xBBBB);
        // Pointer writes must not clobber data words or vice versa.
        h.set_ptr(a, 0, NULL);
        assert_eq!(h.data(a, 0), 0xAAAA);
    }

    #[test]
    fn roots_roundtrip() {
        let mut h = Heap::new(100);
        let a = h.alloc(0, 1).unwrap();
        let b = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.add_root(b);
        assert_eq!(h.roots(), &[a, b]);
        h.set_root(0, b);
        assert_eq!(h.roots(), &[b, b]);
        h.clear_roots();
        assert!(h.roots().is_empty());
    }

    #[test]
    fn alloc_after_flip_clears_stale_body() {
        let mut h = Heap::new(20);
        // Dirty the high semispace (the initial fromspace) directly.
        let hi = h.from_base();
        h.set_word(hi + 2, 0xFFFF_FFFF);
        h.flip(); // high semispace is now tospace
        h.set_alloc_ptr(h.to_base());
        let a = h.alloc(1, 0).unwrap();
        assert_eq!(a, hi);
        assert_eq!(h.ptr(a, 0), NULL, "stale words must be cleared");
    }
}

#[cfg(test)]
mod shadow_stack_tests {
    use super::*;

    #[test]
    fn pop_root_is_lifo() {
        let mut h = Heap::new(64);
        let a = h.alloc(0, 1).unwrap();
        let b = h.alloc(0, 1).unwrap();
        h.add_root(a);
        h.add_root(b);
        assert_eq!(h.pop_root(), b);
        assert_eq!(h.pop_root(), a);
        assert!(h.roots().is_empty());
    }

    #[test]
    #[should_panic(expected = "pop_root on empty root set")]
    fn pop_root_on_empty_panics() {
        let mut h = Heap::new(64);
        let _ = h.pop_root();
    }

    #[test]
    fn words_roundtrip_through_restore() {
        let mut h = Heap::new(32);
        let a = h.alloc(0, 1).unwrap();
        h.set_data(a, 0, 77);
        let mut words = h.clone().into_words();
        words[(a + 2) as usize] = 88;
        h.restore_words(words);
        assert_eq!(h.data(a, 0), 88);
    }
}
