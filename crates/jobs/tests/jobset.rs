//! Job-set canonical-form properties and the cross-engine determinism
//! contract: lowering dedupes order-insensitively with a stable digest,
//! the job codec round-trips every drawn configuration, and a set run
//! in-process is byte-identical — outcome vector, cache records, and
//! any artifact derived from them — to the same set run across a
//! `sweep_worker` process fleet.

use std::path::PathBuf;

use hwgc_core::GcConfig;
use hwgc_jobs::{
    job_from_json, job_to_json, run_jobset, CacheMode, ConfigMatrix, ExecOptions, JobSet,
    ResultCache, SimJob,
};
use hwgc_memsim::{DramConfig, MemBackendKind, MemConfig, PagePolicy};
use hwgc_obs::json::Json;
use hwgc_workloads::{Preset, WorkloadSpec};
use proptest::prelude::*;

fn temp_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hwgc_jobset_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// A drawn combo: preset index, core count, extra latency, DRAM flag
/// (the vendored proptest has no bool strategy, so 0/1 stands in).
type Combo = (usize, usize, u32, u32);

fn job_of(combo: Combo) -> SimJob {
    let (pi, cores, extra, dram) = combo;
    let presets = [Preset::Compress, Preset::Javac, Preset::Jlisp];
    let backend = if dram == 1 {
        MemBackendKind::Dram(DramConfig::default())
    } else {
        MemBackendKind::Fixed
    };
    SimJob {
        spec: WorkloadSpec::new(presets[pi % presets.len()], 42),
        cfg: GcConfig {
            n_cores: 1 + cores % 16,
            mem: MemConfig::default()
                .with_extra_latency(extra % 32)
                .with_backend(backend),
            ..GcConfig::default()
        },
    }
}

proptest! {
    /// Dedupe is content-based and order-insensitive: however the same
    /// combos are ordered (or repeated), the resulting set has the same
    /// digest and the same canonical hash list.
    #[test]
    fn dedupe_is_order_insensitive_and_digest_stable(
        combos in prop::collection::vec((0usize..3, 0usize..16, 0u32..32, 0u32..2), 1..24),
        rot in 0usize..24,
    ) {
        let fwd: Vec<SimJob> = combos.iter().copied().map(job_of).collect();
        let mut rotated = fwd.clone();
        let pivot = rot % rotated.len().max(1);
        rotated.rotate_left(pivot);
        let mut doubled = fwd.clone();
        doubled.extend(fwd.iter().copied());

        let a = JobSet::from_jobs(fwd);
        let b = JobSet::from_jobs(rotated);
        let c = JobSet::from_jobs(doubled);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.digest(), c.digest());
        prop_assert_eq!(a.canonical_hashes(), b.canonical_hashes());
        // Doubling the input changes only the duplicate count: the
        // second copy is dropped wholesale on top of the first's dups.
        prop_assert_eq!(a.len(), c.len());
        prop_assert_eq!(c.duplicates(), a.len() + 2 * a.duplicates());
        // First occurrence wins: every kept hash is the combo's first.
        let mut seen = std::collections::HashSet::new();
        for (job, &hash) in a.jobs().iter().zip(a.hashes()) {
            prop_assert_eq!(job.config_hash(), hash);
            prop_assert!(seen.insert(hash));
        }
    }

    /// The wire codec round-trips every drawn job, hash included.
    #[test]
    fn job_codec_round_trips(
        combo in (0usize..3, 0usize..16, 0u32..32, 0u32..2),
        closed_page in 0u32..2,
    ) {
        let mut job = job_of(combo);
        if closed_page == 1 {
            if let MemBackendKind::Dram(d) = &mut job.cfg.mem.backend {
                d.page_policy = PagePolicy::Closed;
            }
        }
        let wire = job_to_json(&job).to_string_compact();
        let back = job_from_json(&Json::parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(back, job);
        prop_assert_eq!(back.config_hash(), job.config_hash());
    }
}

#[test]
fn matrix_lowering_is_deterministic_and_deduped() {
    let lower = || {
        ConfigMatrix::new(GcConfig::default())
            .presets([Preset::Compress, Preset::Jlisp])
            .cores([1usize, 1, 4])
            .lower()
    };
    let a = lower();
    let b = lower();
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.len(), 4); // duplicate core count deduped
    assert_eq!(a.duplicates(), 2);
    let labels: Vec<String> = a.jobs().iter().map(SimJob::label).collect();
    assert_eq!(
        labels,
        b.jobs().iter().map(SimJob::label).collect::<Vec<_>>()
    );
}

/// Run `set` with a fresh private rw cache; return the report plus the
/// cache file's lines sorted (append order is scheduling-dependent, the
/// record *set* is not).
fn run_with_cache(set: &JobSet, tag: &str, workers: usize) -> (hwgc_jobs::ExecReport, Vec<String>) {
    let path = temp_file(tag);
    let cache = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let report = run_jobset(
        set,
        &ExecOptions {
            binary: "jobset_test".to_string(),
            cache: &cache,
            progress: None,
            workers,
            journal: None,
        },
    )
    .unwrap_or_else(|e| panic!("{tag}: {e}"));
    let mut lines: Vec<String> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    (report, lines)
}

/// The cross-engine determinism contract: outcome vectors in index
/// order, the cache record sets, and an artifact rendered from the
/// outcomes are all identical between the in-process pool and a
/// two-worker process fleet.
#[test]
fn in_process_and_fleet_runs_are_byte_identical() {
    std::env::set_var("HWGC_WORKER_BIN", env!("CARGO_BIN_EXE_sweep_worker"));
    let set = ConfigMatrix::new(GcConfig::default())
        .presets([Preset::Jlisp, Preset::Compress])
        .cores([1usize, 2])
        .lower();

    let (inproc, inproc_records) = run_with_cache(&set, "engine_inproc", 0);
    let (fleet, fleet_records) = run_with_cache(&set, "engine_fleet", 2);

    assert_eq!(inproc.skipped, 0);
    assert_eq!(fleet.skipped, 0);
    assert_eq!(fleet.per_worker.iter().sum::<usize>(), set.len());
    let render = |report: &hwgc_jobs::ExecReport| -> String {
        set.jobs()
            .iter()
            .zip(&report.outcomes)
            .map(|(job, (out, how))| {
                format!(
                    "{},{},{},{}\n",
                    job.label(),
                    out.stats.total_cycles,
                    out.stats.digest(),
                    how.label()
                )
            })
            .collect()
    };
    assert_eq!(render(&inproc), render(&fleet));
    assert_eq!(inproc_records, fleet_records);
}

/// A warm cache satisfies the whole set without any engine running; the
/// replayed outcomes match the executed ones bit for bit.
#[test]
fn warm_cache_replay_matches_any_engine() {
    std::env::set_var("HWGC_WORKER_BIN", env!("CARGO_BIN_EXE_sweep_worker"));
    let set = ConfigMatrix::new(GcConfig::default())
        .presets([Preset::Jlisp])
        .cores([1usize, 2])
        .lower();
    let path = temp_file("warm_replay");
    let cache = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let opts = |cache| ExecOptions {
        binary: "jobset_test".to_string(),
        cache,
        progress: None,
        workers: 2,
        journal: None,
    };
    let cold = run_jobset(&set, &opts(&cache)).unwrap();
    assert_eq!(cold.skipped, 0);

    let warm_cache = ResultCache::open(CacheMode::Rw, &[], Some(&path)).unwrap();
    let warm = run_jobset(&set, &opts(&warm_cache)).unwrap();
    assert_eq!(warm.skipped, set.len());
    assert_eq!(warm.per_worker, vec![0, 0]);
    for (i, (out, _)) in warm.outcomes.iter().enumerate() {
        assert_eq!(out.stats, cold.outcomes[i].0.stats);
        assert_eq!(out.free, cold.outcomes[i].0.free);
    }
}
