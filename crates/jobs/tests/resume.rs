//! Kill-and-resume drill for the multi-process engine: a worker abort is
//! injected mid-sweep (`HWGC_WORKER_ABORT_AFTER`), the run fails, and
//! the journal is checked to hold exactly the jobs that completed; the
//! resumed run replays those from the cache and executes only the
//! remainder, ending with outcomes identical to an uninterrupted run.
//!
//! Serialized into one `#[test]` because the abort injection is a
//! process-wide environment variable — parallel tests would leak it
//! into each other's fleets.

use std::path::PathBuf;

use hwgc_core::GcConfig;
use hwgc_jobs::{
    run_jobset, CacheMode, ConfigMatrix, ExecError, ExecOptions, Journal, ResultCache,
};
use hwgc_workloads::Preset;

fn temp_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hwgc_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn aborted_sweep_journals_completions_and_resumes_with_only_the_remainder() {
    std::env::set_var("HWGC_WORKER_BIN", env!("CARGO_BIN_EXE_sweep_worker"));
    let set = ConfigMatrix::new(GcConfig::default())
        .presets([Preset::Jlisp, Preset::Compress, Preset::Javac])
        .cores([1usize, 2])
        .lower();
    assert_eq!(set.len(), 6);

    // Reference: the same set uninterrupted, in-process, uncached.
    let off = ResultCache::open(CacheMode::Off, &[], None).unwrap();
    let reference = run_jobset(
        &set,
        &ExecOptions {
            binary: "resume_test".to_string(),
            cache: &off,
            progress: None,
            workers: 0,
            journal: None,
        },
    )
    .unwrap();

    let cache_path = temp_file("resume_cache");
    let journal_path = temp_file("resume_journal");

    // Leg 1: two workers, worker 0 dies after 2 completed jobs. The run
    // must fail with a worker error, not panic and not hang.
    std::env::set_var("HWGC_WORKER_ABORT_AFTER", "2");
    let killed = {
        let cache = ResultCache::open(CacheMode::Rw, &[], Some(&cache_path)).unwrap();
        let journal = Journal::open(&journal_path, "resume_drill", &set).unwrap();
        assert_eq!(journal.resumed(), 0);
        run_jobset(
            &set,
            &ExecOptions {
                binary: "resume_test".to_string(),
                cache: &cache,
                progress: None,
                workers: 2,
                journal: Some(&journal),
            },
        )
    };
    std::env::remove_var("HWGC_WORKER_ABORT_AFTER");
    match killed {
        Err(ExecError::Worker { .. }) => {}
        Err(other) => panic!("expected a worker failure, got: {other}"),
        Ok(_) => panic!("the aborted sweep must not report success"),
    }

    // The journal holds exactly the completed jobs: every done line's
    // hash is in the set, done indices are unique, and the count is a
    // genuinely partial prefix of the sweep (> 0, < total). Every
    // journaled job also has its payload in the cache — that pairing is
    // what resumption replays.
    let journal_text = std::fs::read_to_string(&journal_path).unwrap();
    let done_lines: Vec<&str> = journal_text
        .lines()
        .filter(|l| l.contains("\"kind\":\"done\""))
        .collect();
    assert!(
        !done_lines.is_empty() && done_lines.len() < set.len(),
        "abort must leave a partial journal ({} of {} done)",
        done_lines.len(),
        set.len()
    );
    let cache_text = std::fs::read_to_string(&cache_path).unwrap();
    for line in &done_lines {
        let hash = line
            .split("\"config_hash\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("done line carries a config hash");
        let hash = u64::from_str_radix(hash, 16).unwrap();
        assert!(
            set.hashes().contains(&hash),
            "journaled hash {hash:016x} is not in the sweep"
        );
        assert!(
            cache_text.contains(&format!("{hash:016x}")),
            "journaled job {hash:016x} has no cache payload to resume from"
        );
    }

    // Leg 2: reopen against the same journal and cache. The journal
    // resumes at the completed count, the completed jobs come back as
    // cache hits, and only the remainder executes on the fleet.
    let cache = ResultCache::open(CacheMode::Rw, &[], Some(&cache_path)).unwrap();
    let journal = Journal::open(&journal_path, "resume_drill", &set).unwrap();
    assert_eq!(journal.resumed(), done_lines.len());
    let resumed = run_jobset(
        &set,
        &ExecOptions {
            binary: "resume_test".to_string(),
            cache: &cache,
            progress: None,
            workers: 2,
            journal: Some(&journal),
        },
    )
    .unwrap();
    assert_eq!(resumed.skipped, done_lines.len(), "journaled jobs replay");
    assert_eq!(
        resumed.per_worker.iter().sum::<usize>(),
        set.len() - done_lines.len(),
        "the fleet executes exactly the remainder"
    );
    for (i, (out, _)) in resumed.outcomes.iter().enumerate() {
        assert_eq!(
            out.stats, reference.outcomes[i].0.stats,
            "job {i} diverged after resumption"
        );
    }

    // The journal now covers the full sweep: a third open resumes at
    // total, and a rerun executes nothing at all.
    let journal = Journal::open(&journal_path, "resume_drill", &set).unwrap();
    assert_eq!(journal.resumed(), set.len());

    // A different sweep must never replay this journal.
    let other = ConfigMatrix::new(GcConfig::default())
        .presets([Preset::Jlisp])
        .lower();
    assert!(matches!(
        Journal::open(&journal_path, "resume_drill", &other),
        Err(hwgc_jobs::JournalError::PlanMismatch { .. })
    ));
}
