//! Content-addressed result cache over the run ledger.
//!
//! A sweep job is identified by its ledger key — workload, engine,
//! backend and the sorted config/env pairs, hashed by
//! [`hwgc_obs::LedgerRecord::config_hash`]. Before simulating, the
//! harness consults a [`ResultCache`]; depending on what the cache holds
//! for the hash and on the [`CacheMode`], the job is satisfied four ways:
//!
//! * **miss** — nothing cached: simulate, and in a writable mode append
//!   a payload-carrying record to the workspace cache file;
//! * **hit** — a record with a full `result` payload: decode it, re-check
//!   its digest against the record's `stats_digest` (a corrupt payload is
//!   an error, never a silent wrong answer) and skip the simulation;
//! * **digest check** — a payload-less record (the committed
//!   `BENCH_ledger.jsonl` is digest-only): simulate anyway and hard-fail
//!   if the fresh digest disagrees with the recorded one — the default
//!   `ro` mode therefore costs nothing and turns every committed ledger
//!   line into a regression assertion;
//! * **verify** — paranoia mode: a seeded fraction of would-be hits is
//!   re-simulated and the digests compared; a mismatch means the cache
//!   holds a stale record and the run aborts.
//!
//! Bit-exactness contract: for every mode, the `GcOutcome` a caller
//! receives is digest-identical to what an uncached simulation would
//! produce (enforced by `tests/cache.rs`). The cache can make a sweep
//! faster or fail louder — never different.
//!
//! Modes come from `HWGC_CACHE` (`off` / `ro` / `rw` / `verify`;
//! default `ro` for one-off runs, `rw` for sweeps — see
//! [`sweep_cache_mode`]); the workspace cache file from
//! `HWGC_CACHE_PATH`; the verify sampling percentage from
//! `HWGC_CACHE_VERIFY_PCT`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hwgc_core::{GcOutcome, GcStats, StallBreakdown, StallReason};
use hwgc_memsim::{DramStats, FifoStats, MemStats, PORT_COUNT};
use hwgc_obs::json::Json;
use hwgc_obs::{JobOutcome, LedgerRecord, LedgerStore};
use hwgc_sync::SyncStats;

/// What the cache is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Never consult or write the cache.
    Off,
    /// Consult committed/provided ledgers; never write. Payload hits skip
    /// simulation; digest-only records become post-run cross-checks.
    #[default]
    Ro,
    /// `Ro` plus: misses append payload records to the workspace cache.
    Rw,
    /// `Rw` plus: a seeded fraction of payload hits is re-simulated and
    /// digest-compared (stale-cache detector).
    Verify,
}

impl CacheMode {
    /// Parse a `HWGC_CACHE` value.
    pub fn parse(s: &str) -> Option<CacheMode> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => CacheMode::Off,
            "ro" | "" => CacheMode::Ro,
            "rw" => CacheMode::Rw,
            "verify" => CacheMode::Verify,
            _ => return None,
        })
    }

    /// The mode selected by `HWGC_CACHE` (default [`CacheMode::Ro`];
    /// unknown values fall back to the default rather than silently
    /// disabling integrity checks).
    pub fn from_env() -> CacheMode {
        match std::env::var("HWGC_CACHE") {
            Ok(v) => CacheMode::parse(&v).unwrap_or_default(),
            Err(_) => CacheMode::Ro,
        }
    }

    /// True when the mode may consult stored records at all.
    pub fn reads(self) -> bool {
        self != CacheMode::Off
    }

    /// True when misses append to the workspace cache file.
    pub fn writes(self) -> bool {
        matches!(self, CacheMode::Rw | CacheMode::Verify)
    }
}

/// The cache mode for *sweeps*: `HWGC_CACHE` as in
/// [`CacheMode::from_env`], but unset (and unknown values) default to
/// [`CacheMode::Rw`] instead of `Ro`. Sweep resumption is journal ∪
/// cache — a journaled job is skipped by replaying its payload record —
/// so a sweep that never wrote payloads could not be resumed, and
/// cross-binary dedupe (`reproduce_all` then `bench_baseline`) needs
/// the first binary's results on disk when the second one starts.
pub fn sweep_cache_mode() -> CacheMode {
    match std::env::var("HWGC_CACHE") {
        Ok(v) => CacheMode::parse(&v).unwrap_or(CacheMode::Rw),
        Err(_) => CacheMode::Rw,
    }
}

/// A cache-layer failure. Every variant is an integrity violation — the
/// cache never degrades to a wrong answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// A stored record's digest disagrees with a fresh simulation of the
    /// same configuration (stale or corrupt cache/ledger).
    StaleRecord {
        config_hash: u64,
        recorded: u64,
        fresh: u64,
        /// True when verify-mode sampling caught it on a payload hit.
        verified: bool,
    },
    /// A payload decoded to stats whose digest disagrees with the
    /// record's own `stats_digest` field (corrupt payload).
    CorruptPayload {
        config_hash: u64,
        recorded: u64,
        decoded: u64,
    },
    /// A cache source failed to load.
    Load(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::StaleRecord {
                config_hash,
                recorded,
                fresh,
                verified,
            } => write!(
                f,
                "{} for config {config_hash:016x}: ledger records digest \
                 {recorded:016x}, fresh simulation produced {fresh:016x}",
                if *verified {
                    "HWGC_CACHE=verify caught a stale record"
                } else {
                    "stats digest mismatch"
                }
            ),
            CacheError::CorruptPayload {
                config_hash,
                recorded,
                decoded,
            } => write!(
                f,
                "corrupt cache payload for config {config_hash:016x}: record \
                 claims digest {recorded:016x}, payload decodes to {decoded:016x}"
            ),
            CacheError::Load(msg) => write!(f, "cache load: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// The content-addressed result cache shared by every job of a sweep.
/// Thread-safe: `run_cached` may be called concurrently from `par_map`
/// workers.
pub struct ResultCache {
    mode: CacheMode,
    store: LedgerStore,
    rw_path: Option<PathBuf>,
    verify_pct: u64,
    verify_seed: u64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    verified: AtomicUsize,
    digest_checks: AtomicUsize,
    write_lock: Mutex<()>,
}

/// Counters accumulated by one [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: usize,
    pub misses: usize,
    pub verified: usize,
    pub digest_checks: usize,
}

/// What [`ResultCache::lookup`] resolved for a job key. Every variant
/// except [`CacheLookup::Hit`] obliges the caller to simulate and then
/// call [`ResultCache::complete`] with the fresh outcome.
// One short-lived value per job resolution; boxing the hit payload
// would buy nothing but an indirection at every cache hit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CacheLookup {
    /// Payload hit, decoded and digest-checked: skip the simulation.
    Hit(GcOutcome),
    /// Verify-mode sampling selected this payload hit: re-simulate and
    /// compare the fresh digest against the recorded one.
    Verify(u64),
    /// Digest-only record (committed ledger): simulate, then assert the
    /// fresh digest equals the recorded one.
    Digest(u64),
    /// Nothing cached (or mode `off`): simulate.
    Absent,
}

impl ResultCache {
    /// Open a cache in `mode` over the given sources. `ro_sources` are
    /// consulted read-only (the committed ledger; loaded strictly — a
    /// corrupt committed ledger is an error, a missing one is empty).
    /// `rw_path`, used by writable modes, is loaded tolerantly (a line
    /// torn by a concurrent writer is quarantined) and appended to on
    /// misses. Conflicting digests between any two sources hard-fail.
    pub fn open(
        mode: CacheMode,
        ro_sources: &[&Path],
        rw_path: Option<&Path>,
    ) -> Result<ResultCache, CacheError> {
        let mut store = LedgerStore::new();
        if mode.reads() {
            for src in ro_sources {
                if src.exists() {
                    let loaded = LedgerStore::load(src)
                        .map_err(|e| CacheError::Load(format!("{}: {e}", src.display())))?;
                    store
                        .merge(loaded.records().iter().cloned())
                        .map_err(|e| CacheError::Load(format!("{}: {e}", src.display())))?;
                }
            }
            // The workspace cache (payload-carrying, simulation-skipping)
            // is consulted only by the writable modes: default `ro` must
            // never skip a simulation on the say-so of an uncommitted
            // file.
            if mode.writes() {
                if let Some(path) = rw_path {
                    let (loaded, _report) = LedgerStore::load_tolerant(path)
                        .map_err(|e| CacheError::Load(format!("{}: {e}", path.display())))?;
                    store
                        .merge(loaded.records().iter().cloned())
                        .map_err(|e| CacheError::Load(format!("{}: {e}", path.display())))?;
                }
            }
        }
        Ok(ResultCache {
            mode,
            store,
            rw_path: mode
                .writes()
                .then(|| rw_path.map(Path::to_path_buf))
                .flatten(),
            verify_pct: verify_pct_from_env(),
            verify_seed: 0x00C0_FFEE,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            verified: AtomicUsize::new(0),
            digest_checks: AtomicUsize::new(0),
            write_lock: Mutex::new(()),
        })
    }

    /// An always-miss cache (mode `off`).
    pub fn disabled() -> ResultCache {
        ResultCache::open(CacheMode::Off, &[], None).expect("off-mode open cannot fail")
    }

    /// Override the verify sampling: re-simulate when
    /// `(config_hash ^ seed) % 100 < pct`.
    pub fn with_verify_sampling(mut self, pct: u64, seed: u64) -> ResultCache {
        self.verify_pct = pct.min(100);
        self.verify_seed = seed;
        self
    }

    /// The mode this cache runs in.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Number of records loaded from the sources.
    pub fn records_loaded(&self) -> usize {
        self.store.len()
    }

    /// Counters so far.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            digest_checks: self.digest_checks.load(Ordering::Relaxed),
        }
    }

    fn selected_for_verify(&self, config_hash: u64) -> bool {
        self.verify_pct >= 100 || (config_hash ^ self.verify_seed) % 100 < self.verify_pct
    }

    /// Satisfy one job. `key` is the job's ledger identity (outputs and
    /// host fields ignored); `sim` runs the real simulation. Returns the
    /// outcome — digest-identical to `sim()`'s in every mode — and how it
    /// was obtained. Errors are integrity violations only.
    ///
    /// This is [`ResultCache::lookup`] followed by
    /// [`ResultCache::complete`]; the multi-process executor uses those
    /// two halves directly (the simulation happens in a worker process,
    /// so no closure can sit between them) with identical semantics.
    pub fn run_cached<F>(
        &self,
        key: &LedgerRecord,
        sim: F,
    ) -> Result<(GcOutcome, JobOutcome), CacheError>
    where
        F: FnOnce() -> GcOutcome,
    {
        match self.lookup(key)? {
            CacheLookup::Hit(decoded) => Ok((decoded, JobOutcome::Hit)),
            pending => {
                let outcome = sim();
                let how = self.complete(key, &outcome, &pending)?;
                Ok((outcome, how))
            }
        }
    }

    /// Resolve what the cache holds for `key` *before* simulating.
    /// [`CacheLookup::Hit`] means the simulation can be skipped (the
    /// payload is decoded and digest-checked here — a corrupt payload is
    /// an error, never a silent wrong answer); every other variant must
    /// be followed by a simulation and a [`ResultCache::complete`] call.
    pub fn lookup(&self, key: &LedgerRecord) -> Result<CacheLookup, CacheError> {
        if !self.mode.reads() {
            return Ok(CacheLookup::Absent);
        }
        let hash = key.config_hash();
        let cached = self
            .store
            .get(hash)
            .map(|rec| (rec.stats_digest, rec.result.as_ref().map(outcome_from_json)));
        match cached {
            None => Ok(CacheLookup::Absent),
            Some((recorded, Some(payload))) => {
                let decoded = payload.map_err(|e| {
                    CacheError::Load(format!("config {hash:016x}: bad payload: {e}"))
                })?;
                let decoded_digest = decoded.stats.digest();
                if decoded_digest != recorded {
                    return Err(CacheError::CorruptPayload {
                        config_hash: hash,
                        recorded,
                        decoded: decoded_digest,
                    });
                }
                if self.mode == CacheMode::Verify && self.selected_for_verify(hash) {
                    return Ok(CacheLookup::Verify(recorded));
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(CacheLookup::Hit(decoded))
            }
            Some((recorded, None)) => Ok(CacheLookup::Digest(recorded)),
        }
    }

    /// Post-simulation half of a cache transaction: digest-compare the
    /// fresh `outcome` against whatever [`ResultCache::lookup`] found,
    /// bump the counters, and append a payload record in writable modes.
    /// Mismatches are [`CacheError::StaleRecord`] hard failures.
    pub fn complete(
        &self,
        key: &LedgerRecord,
        outcome: &GcOutcome,
        lookup: &CacheLookup,
    ) -> Result<JobOutcome, CacheError> {
        match lookup {
            // A hit needs no completion; accepting it keeps the executor's
            // single completion path total over every lookup variant.
            CacheLookup::Hit(_) => Ok(JobOutcome::Hit),
            CacheLookup::Absent => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.append(key, outcome);
                Ok(JobOutcome::Miss)
            }
            CacheLookup::Verify(recorded) => {
                let fresh = outcome.stats.digest();
                if fresh != *recorded {
                    return Err(CacheError::StaleRecord {
                        config_hash: key.config_hash(),
                        recorded: *recorded,
                        fresh,
                        verified: true,
                    });
                }
                self.verified.fetch_add(1, Ordering::Relaxed);
                Ok(JobOutcome::VerifyOk)
            }
            CacheLookup::Digest(recorded) => {
                // Digest-only record (committed ledger): the fresh run
                // turns the record into a regression assertion.
                let fresh = outcome.stats.digest();
                if fresh != *recorded {
                    return Err(CacheError::StaleRecord {
                        config_hash: key.config_hash(),
                        recorded: *recorded,
                        fresh,
                        verified: false,
                    });
                }
                self.digest_checks.fetch_add(1, Ordering::Relaxed);
                self.append(key, outcome);
                Ok(JobOutcome::DigestCheck)
            }
        }
    }

    /// Append a payload-carrying record for `key` to the workspace cache
    /// file (writable modes only; single-line `O_APPEND` write, so
    /// concurrent *processes* interleave whole lines and concurrent
    /// threads serialize on the lock).
    fn append(&self, key: &LedgerRecord, outcome: &GcOutcome) {
        let Some(path) = &self.rw_path else { return };
        let mut rec = key.clone();
        rec.stats_digest = outcome.stats.digest();
        rec.total_cycles = Some(outcome.stats.total_cycles);
        rec.result = Some(outcome_to_json(outcome));
        rec.host = Vec::new(); // cache records carry no host noise
        let _guard = self.write_lock.lock().unwrap();
        if let Err(e) = rec.append_jsonl(path) {
            eprintln!("warning: cache append to {} failed: {e}", path.display());
        }
    }
}

fn verify_pct_from_env() -> u64 {
    std::env::var("HWGC_CACHE_VERIFY_PCT")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(25, |pct| pct.min(100))
}

/// The workspace cache file: `HWGC_CACHE_PATH`, defaulting to
/// `target/hwgc-cache.jsonl` so `cargo clean` clears it.
pub fn cache_path_from_env() -> PathBuf {
    std::env::var_os("HWGC_CACHE_PATH")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/hwgc-cache.jsonl"))
}

// ---------------------------------------------------------------------
// GcStats / GcOutcome <-> Json: the payload codec. Lives here (not in
// hwgc-obs) because obs deliberately has no dependency on hwgc-core.
// Round-trip is exact — every field is an integer — so the decoded
// stats' `digest()` equals the original's.
// ---------------------------------------------------------------------

fn u64s(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Int(i128::from(v))).collect())
}

fn u64s_back(j: &Json, what: &str) -> Result<Vec<u64>, String> {
    match j {
        Json::Arr(items) => items
            .iter()
            .map(|v| {
                v.as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| format!("`{what}` holds a non-u64"))
            })
            .collect(),
        _ => Err(format!("`{what}` is not an array")),
    }
}

fn breakdown_to_json(b: &StallBreakdown) -> Json {
    // One entry per StallReason, in bus-index order.
    u64s(&StallReason::ALL.map(|r| b.get(r)))
}

fn breakdown_from_json(j: &Json, what: &str) -> Result<StallBreakdown, String> {
    let values = u64s_back(j, what)?;
    if values.len() != StallReason::COUNT {
        return Err(format!(
            "`{what}` has {} entries, expected {}",
            values.len(),
            StallReason::COUNT
        ));
    }
    let mut b = StallBreakdown::default();
    for (reason, &n) in StallReason::ALL.iter().zip(&values) {
        b.record_n(*reason, n);
    }
    Ok(b)
}

/// Serialize full [`GcStats`] (payload half of a cache record).
pub fn stats_to_json(s: &GcStats) -> Json {
    let mut fields = vec![
        (
            "total_cycles".to_string(),
            Json::Int(i128::from(s.total_cycles)),
        ),
        (
            "empty_worklist_cycles".to_string(),
            Json::Int(i128::from(s.empty_worklist_cycles)),
        ),
        ("stall".to_string(), breakdown_to_json(&s.stall)),
        (
            "per_core".to_string(),
            Json::Arr(s.per_core.iter().map(breakdown_to_json).collect()),
        ),
        (
            "objects_copied".to_string(),
            Json::Int(i128::from(s.objects_copied)),
        ),
        (
            "words_copied".to_string(),
            Json::Int(i128::from(s.words_copied)),
        ),
        (
            "pointers_visited".to_string(),
            Json::Int(i128::from(s.pointers_visited)),
        ),
        (
            "chunks_claimed".to_string(),
            Json::Int(i128::from(s.chunks_claimed)),
        ),
        (
            "roots_processed".to_string(),
            Json::Int(i128::from(s.roots_processed)),
        ),
        (
            "root_phase_cycles".to_string(),
            Json::Int(i128::from(s.root_phase_cycles)),
        ),
        (
            "fifo".to_string(),
            u64s(&[
                s.fifo.pushes,
                s.fifo.overflows,
                s.fifo.hits,
                s.fifo.misses,
                s.fifo.max_occupancy as u64,
            ]),
        ),
        (
            "mem".to_string(),
            Json::Obj({
                let mut mem = vec![
                    ("issued".to_string(), u64s(&s.mem.issued)),
                    (
                        "comparator_blocked_cycles".to_string(),
                        Json::Int(i128::from(s.mem.comparator_blocked_cycles)),
                    ),
                    (
                        "header_cache_hits".to_string(),
                        Json::Int(i128::from(s.mem.header_cache_hits)),
                    ),
                    (
                        "header_cache_misses".to_string(),
                        Json::Int(i128::from(s.mem.header_cache_misses)),
                    ),
                    (
                        "queue_occupancy_sum".to_string(),
                        Json::Int(i128::from(s.mem.queue_occupancy_sum)),
                    ),
                    (
                        "queue_busy_cycles".to_string(),
                        Json::Int(i128::from(s.mem.queue_busy_cycles)),
                    ),
                    ("cycles".to_string(), Json::Int(i128::from(s.mem.cycles))),
                ];
                if let Some(d) = &s.mem.dram {
                    mem.push((
                        "dram".to_string(),
                        Json::Obj(vec![
                            ("row_hits".to_string(), Json::Int(i128::from(d.row_hits))),
                            (
                                "row_empties".to_string(),
                                Json::Int(i128::from(d.row_empties)),
                            ),
                            (
                                "row_conflicts".to_string(),
                                Json::Int(i128::from(d.row_conflicts)),
                            ),
                            ("bank_accesses".to_string(), u64s(&d.bank_accesses)),
                            ("bank_busy_cycles".to_string(), u64s(&d.bank_busy_cycles)),
                        ]),
                    ));
                }
                mem
            }),
        ),
        (
            "sync".to_string(),
            Json::Obj(vec![
                ("acquisitions".to_string(), u64s(&s.sync.acquisitions)),
                ("failed_attempts".to_string(), u64s(&s.sync.failed_attempts)),
            ]),
        ),
    ];
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(fields)
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_int)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| format!("missing u64 field `{key}`"))
}

/// Decode [`stats_to_json`] output. Exact inverse: the decoded stats'
/// digest equals the encoded stats'.
pub fn stats_from_json(j: &Json) -> Result<GcStats, String> {
    let fifo_raw = u64s_back(j.get("fifo").ok_or("missing `fifo`")?, "fifo")?;
    if fifo_raw.len() != 5 {
        return Err(format!("`fifo` has {} entries, expected 5", fifo_raw.len()));
    }
    let mem_j = j.get("mem").ok_or("missing `mem`")?;
    let issued_raw = u64s_back(
        mem_j.get("issued").ok_or("missing `mem.issued`")?,
        "mem.issued",
    )?;
    let issued: [u64; PORT_COUNT] = issued_raw
        .try_into()
        .map_err(|_| format!("`mem.issued` is not {PORT_COUNT} entries"))?;
    let dram = match mem_j.get("dram") {
        Some(d) => Some(DramStats {
            row_hits: req_u64(d, "row_hits")?,
            row_empties: req_u64(d, "row_empties")?,
            row_conflicts: req_u64(d, "row_conflicts")?,
            bank_accesses: u64s_back(
                d.get("bank_accesses")
                    .ok_or("missing `dram.bank_accesses`")?,
                "dram.bank_accesses",
            )?,
            bank_busy_cycles: u64s_back(
                d.get("bank_busy_cycles")
                    .ok_or("missing `dram.bank_busy_cycles`")?,
                "dram.bank_busy_cycles",
            )?,
        }),
        None => None,
    };
    let sync_j = j.get("sync").ok_or("missing `sync`")?;
    let arr3 = |key: &str| -> Result<[u64; 3], String> {
        u64s_back(
            sync_j
                .get(key)
                .ok_or_else(|| format!("missing `sync.{key}`"))?,
            key,
        )?
        .try_into()
        .map_err(|_| format!("`sync.{key}` is not 3 entries"))
    };
    let per_core = match j.get("per_core") {
        Some(Json::Arr(cores)) => cores
            .iter()
            .enumerate()
            .map(|(i, c)| breakdown_from_json(c, &format!("per_core[{i}]")))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("missing array field `per_core`".to_string()),
    };
    Ok(GcStats {
        total_cycles: req_u64(j, "total_cycles")?,
        empty_worklist_cycles: req_u64(j, "empty_worklist_cycles")?,
        stall: breakdown_from_json(j.get("stall").ok_or("missing `stall`")?, "stall")?,
        per_core,
        objects_copied: req_u64(j, "objects_copied")?,
        words_copied: req_u64(j, "words_copied")?,
        pointers_visited: req_u64(j, "pointers_visited")?,
        chunks_claimed: req_u64(j, "chunks_claimed")?,
        roots_processed: req_u64(j, "roots_processed")?,
        root_phase_cycles: req_u64(j, "root_phase_cycles")?,
        fifo: FifoStats {
            pushes: fifo_raw[0],
            overflows: fifo_raw[1],
            hits: fifo_raw[2],
            misses: fifo_raw[3],
            max_occupancy: usize::try_from(fifo_raw[4]).map_err(|_| "fifo occupancy overflow")?,
        },
        mem: MemStats {
            issued,
            comparator_blocked_cycles: req_u64(mem_j, "comparator_blocked_cycles")?,
            header_cache_hits: req_u64(mem_j, "header_cache_hits")?,
            header_cache_misses: req_u64(mem_j, "header_cache_misses")?,
            queue_occupancy_sum: req_u64(mem_j, "queue_occupancy_sum")?,
            queue_busy_cycles: req_u64(mem_j, "queue_busy_cycles")?,
            cycles: req_u64(mem_j, "cycles")?,
            dram,
        },
        sync: SyncStats {
            acquisitions: arr3("acquisitions")?,
            failed_attempts: arr3("failed_attempts")?,
        },
    })
}

/// Serialize a full [`GcOutcome`] (the cache payload).
pub fn outcome_to_json(o: &GcOutcome) -> Json {
    Json::Obj(vec![
        ("free".to_string(), Json::Int(i128::from(o.free))),
        ("stats".to_string(), stats_to_json(&o.stats)),
    ])
}

/// Decode [`outcome_to_json`] output.
pub fn outcome_from_json(j: &Json) -> Result<GcOutcome, String> {
    let free = j
        .get("free")
        .and_then(Json::as_int)
        .and_then(|i| u32::try_from(i).ok())
        .ok_or("missing u32 field `free`")?;
    Ok(GcOutcome {
        free,
        stats: stats_from_json(j.get("stats").ok_or("missing `stats`")?)?,
    })
}
