//! The coordinator ↔ `sweep_worker` wire protocol: length-prefixed JSON
//! frames over the child's stdin/stdout.
//!
//! A frame is the payload's byte length in decimal ASCII, a newline,
//! then exactly that many bytes of compact JSON. The prefix makes the
//! stream self-delimiting without any escaping discipline, and a torn
//! pipe (worker killed mid-frame) surfaces as a short read — an error,
//! never a silently truncated message.
//!
//! Coordinator → worker: [`ToWorker::Job`] frames, then one
//! [`ToWorker::Shutdown`]. Worker → coordinator: one
//! [`FromWorker::Ready`] handshake at startup, then one
//! [`FromWorker::Done`] (or [`FromWorker::Failed`]) per job, in the
//! order jobs were received. Workers never see the cache, the journal
//! or telemetry — those are coordinator state; a worker only simulates.

use std::io::{BufRead, Write};

use hwgc_core::GcOutcome;
use hwgc_obs::json::Json;

use crate::cache::{outcome_from_json, outcome_to_json};
use crate::job::{job_from_json, job_to_json, SimJob};

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> std::io::Result<()> {
    let text = payload.to_string_compact();
    writeln!(w, "{}", text.len())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` is clean EOF (peer closed between
/// frames), any mid-frame termination is an error.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<Json>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let len: usize = line
        .trim()
        .parse()
        .map_err(|_| bad_data(format!("bad frame length {line:?}")))?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf).map_err(|e| bad_data(format!("frame not utf-8: {e}")))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| bad_data(format!("frame not json: {e}")))
}

/// A coordinator → worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Simulate this job and answer with a `Done` frame carrying the
    /// same index.
    Job { index: usize, job: SimJob },
    /// Drain and exit cleanly.
    Shutdown,
}

impl ToWorker {
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Job { index, job } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("job".into())),
                ("index".to_string(), Json::Int(*index as i128)),
                ("job".to_string(), job_to_json(job)),
            ]),
            ToWorker::Shutdown => {
                Json::Obj(vec![("kind".to_string(), Json::Str("shutdown".into()))])
            }
        }
    }

    pub fn from_json(j: &Json) -> Result<ToWorker, String> {
        match j.get("kind").and_then(Json::as_str) {
            Some("job") => Ok(ToWorker::Job {
                index: req_index(j)?,
                job: job_from_json(j.get("job").ok_or("missing `job`")?)?,
            }),
            Some("shutdown") => Ok(ToWorker::Shutdown),
            other => Err(format!("bad ToWorker kind {other:?}")),
        }
    }
}

/// A worker → coordinator message.
// One frame in flight per worker; the outcome payload is the message.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// Startup handshake: the worker is alive and reading.
    Ready,
    /// One finished job, with the full outcome payload.
    Done { index: usize, outcome: GcOutcome },
    /// The job raised a simulation/verification failure. The coordinator
    /// aborts the sweep — a worker that cannot verify a collection has
    /// found a collector bug, not a scheduling problem.
    Failed { index: usize, message: String },
}

impl FromWorker {
    pub fn to_json(&self) -> Json {
        match self {
            FromWorker::Ready => Json::Obj(vec![("kind".to_string(), Json::Str("ready".into()))]),
            FromWorker::Done { index, outcome } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("done".into())),
                ("index".to_string(), Json::Int(*index as i128)),
                ("outcome".to_string(), outcome_to_json(outcome)),
            ]),
            FromWorker::Failed { index, message } => Json::Obj(vec![
                ("kind".to_string(), Json::Str("failed".into())),
                ("index".to_string(), Json::Int(*index as i128)),
                ("message".to_string(), Json::Str(message.clone())),
            ]),
        }
    }

    pub fn from_json(j: &Json) -> Result<FromWorker, String> {
        match j.get("kind").and_then(Json::as_str) {
            Some("ready") => Ok(FromWorker::Ready),
            Some("done") => Ok(FromWorker::Done {
                index: req_index(j)?,
                outcome: outcome_from_json(j.get("outcome").ok_or("missing `outcome`")?)?,
            }),
            Some("failed") => Ok(FromWorker::Failed {
                index: req_index(j)?,
                message: j
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown worker failure")
                    .to_string(),
            }),
            other => Err(format!("bad FromWorker kind {other:?}")),
        }
    }
}

fn req_index(j: &Json) -> Result<usize, String> {
    j.get("index")
        .and_then(Json::as_int)
        .and_then(|i| usize::try_from(i).ok())
        .ok_or_else(|| "missing usize field `index`".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwgc_core::GcConfig;
    use hwgc_workloads::{Preset, WorkloadSpec};

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let job = SimJob {
            spec: WorkloadSpec::new(Preset::Jlisp, 42),
            cfg: GcConfig::with_cores(2),
        };
        let msgs = [ToWorker::Job { index: 3, job }, ToWorker::Shutdown];
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, &m.to_json()).unwrap();
        }
        let mut r = std::io::BufReader::new(&wire[..]);
        for m in &msgs {
            let j = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(&ToWorker::from_json(&j).unwrap(), m);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frames_error_instead_of_truncating() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &ToWorker::Shutdown.to_json()).unwrap();
        wire.truncate(wire.len() - 3); // kill the peer mid-frame
        let mut r = std::io::BufReader::new(&wire[..]);
        assert!(read_frame(&mut r).is_err());
    }
}
