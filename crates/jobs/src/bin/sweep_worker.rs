//! The persistent sweep worker process. Spawned by the multi-process
//! coordinator ([`hwgc_jobs::run_jobset`] with `HWGC_WORKERS >= 1`);
//! speaks the length-prefixed JSON frame protocol over stdin/stdout.
//!
//! A worker is deliberately dumb: handshake `Ready`, then loop —
//! receive a job, simulate it, answer `Done` (or `Failed` if the
//! collection cannot be verified). Cache, journal and telemetry are
//! coordinator state; keeping them out of the worker is what makes
//! in-process and multi-process sweeps byte-identical.
//!
//! `HWGC_WORKER_ABORT_AFTER=k` makes the worker exit abruptly when job
//! `k+1` arrives — the fault injection the resumption tests and the CI
//! kill-and-resume drill use. The coordinator only forwards the
//! variable to worker 0, so a fleet loses one member, not all of them.

use std::io::{BufReader, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};

use hwgc_jobs::protocol::{read_frame, write_frame, FromWorker, ToWorker};
use hwgc_jobs::simulate;

fn main() {
    let stdin = std::io::stdin();
    let mut input = BufReader::new(stdin.lock());
    let stdout = std::io::stdout();
    let mut output = stdout.lock();

    write_frame(&mut output, &FromWorker::Ready.to_json()).expect("handshake");
    let abort_after: Option<usize> = std::env::var("HWGC_WORKER_ABORT_AFTER")
        .ok()
        .and_then(|s| s.trim().parse().ok());

    let mut completed = 0usize;
    loop {
        let frame = match read_frame(&mut input) {
            Ok(Some(f)) => f,
            // Coordinator closed our stdin: treat like a shutdown.
            Ok(None) => break,
            Err(e) => {
                eprintln!("sweep_worker: bad frame: {e}");
                std::process::exit(2);
            }
        };
        match ToWorker::from_json(&frame) {
            Ok(ToWorker::Job { index, job }) => {
                if abort_after == Some(completed) {
                    // Injected mid-set abort: die without a reply, as a
                    // crashed or OOM-killed worker would.
                    std::process::exit(17);
                }
                let reply = match catch_unwind(AssertUnwindSafe(|| simulate(&job))) {
                    Ok(outcome) => FromWorker::Done { index, outcome },
                    Err(panic) => FromWorker::Failed {
                        index,
                        message: panic_message(panic),
                    },
                };
                write_frame(&mut output, &reply.to_json()).expect("reply");
                completed += 1;
            }
            Ok(ToWorker::Shutdown) => break,
            Err(e) => {
                eprintln!("sweep_worker: bad message: {e}");
                std::process::exit(2);
            }
        }
    }
    let _ = output.flush();
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "simulation panicked".to_string()
    }
}
