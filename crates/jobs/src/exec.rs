//! JobSet execution: one entry point ([`run_jobset`]) with two engines
//! behind it.
//!
//! * **In-process** (`workers == 0`, the default): pending jobs fan out
//!   over the [`crate::par_map`] thread pool — today's behaviour,
//!   preserved bit-for-bit for the determinism tests.
//! * **Multi-process** (`workers >= 1`): the coordinator spawns that
//!   many persistent `sweep_worker` child processes and feeds them jobs
//!   over stdin/stdout (length-prefixed JSON, see [`crate::protocol`]).
//!   Jobs are dealt round-robin into per-worker queues; a worker whose
//!   queue drains **steals from the back of the longest other queue**,
//!   so a slow job never strands the rest of its queue. Steal and
//!   in-flight counts feed [`SweepProgress::fleet`], which keeps the
//!   ETA monotone.
//!
//! Both engines share the exact same cache transaction
//! ([`ResultCache::lookup`] before execution, [`ResultCache::complete`]
//! after) and the same journal/telemetry hooks, and both gather results
//! **by job index** — so for a given cache state the outcome vector,
//! the ledger records and every downstream artifact are byte-identical
//! across engines and worker counts (proptested in `tests/jobset.rs`).
//!
//! Resumption: with a [`Journal`] attached, every completion is
//! recorded as it happens. A killed sweep restarts by re-running
//! [`run_jobset`] over the same set — completed jobs come back as
//! cache hits (journal ∪ cache; see `crate::journal`) and only the
//! remainder executes.

use std::collections::VecDeque;
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hwgc_core::GcOutcome;
use hwgc_obs::{JobOutcome, SweepProgress};

use crate::cache::{CacheError, CacheLookup, ResultCache};
use crate::job::simulate;
use crate::journal::{Journal, JournalError};
use crate::matrix::JobSet;
use crate::par::par_map;
use crate::protocol::{read_frame, write_frame, FromWorker, ToWorker};

/// How to run a [`JobSet`].
pub struct ExecOptions<'a> {
    /// Cache keys are built under this binary name (the name is ledger
    /// provenance only — it never enters the config hash).
    pub binary: String,
    /// The shared result cache (open it with
    /// [`crate::cache::sweep_cache_mode`] for resumable sweeps).
    pub cache: &'a ResultCache,
    /// Telemetry reporter, if any.
    pub progress: Option<&'a SweepProgress>,
    /// `0` = in-process on the `par_map` pool; `N >= 1` = that many
    /// `sweep_worker` processes (see [`crate::workers`]).
    pub workers: usize,
    /// Resumption journal, if any.
    pub journal: Option<&'a Journal>,
}

/// What [`run_jobset`] produced.
#[derive(Debug)]
pub struct ExecReport {
    /// Per-job results, in job-set (index) order.
    pub outcomes: Vec<(GcOutcome, JobOutcome)>,
    /// Jobs satisfied from the cache without executing.
    pub skipped: usize,
    /// Cross-queue steals (multi-process only).
    pub steals: u64,
    /// Jobs executed per worker process (empty for in-process runs).
    pub per_worker: Vec<usize>,
}

/// An execution failure. Cache and journal variants are integrity
/// violations; `Worker` means a child died or broke protocol — the
/// journal then holds exactly the completed jobs, ready for resumption.
#[derive(Debug)]
pub enum ExecError {
    Cache(CacheError),
    Journal(JournalError),
    Worker { worker: usize, message: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cache(e) => write!(f, "cache: {e}"),
            ExecError::Journal(e) => write!(f, "{e}"),
            ExecError::Worker { worker, message } => {
                write!(f, "worker {worker}: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CacheError> for ExecError {
    fn from(e: CacheError) -> ExecError {
        ExecError::Cache(e)
    }
}

impl From<JournalError> for ExecError {
    fn from(e: JournalError) -> ExecError {
        ExecError::Journal(e)
    }
}

/// Locate the `sweep_worker` binary: `HWGC_WORKER_BIN` when set, else a
/// sibling of the running executable (covering `target/<profile>/` for
/// binaries and `target/<profile>/deps/` for test executables).
pub fn worker_bin_path() -> Result<PathBuf, ExecError> {
    if let Some(p) = std::env::var_os("HWGC_WORKER_BIN") {
        return Ok(PathBuf::from(p));
    }
    let name = format!("sweep_worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().map_err(|e| ExecError::Worker {
        worker: 0,
        message: format!("cannot locate own executable: {e}"),
    })?;
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let cand = d.join(&name);
        if cand.exists() {
            return Ok(cand);
        }
        // test binaries live one level down in target/<profile>/deps/
        dir = d.parent();
        if d.file_name().is_none_or(|n| n != "deps") {
            break;
        }
    }
    Err(ExecError::Worker {
        worker: 0,
        message: format!(
            "sweep_worker binary not found next to {} — build it \
             (`cargo build --bin sweep_worker`) or set HWGC_WORKER_BIN",
            exe.display()
        ),
    })
}

/// Run every job of `set`, satisfying what the cache can and executing
/// the rest in-process or across a worker fleet. See the module docs.
pub fn run_jobset(set: &JobSet, opts: &ExecOptions) -> Result<ExecReport, ExecError> {
    let n = set.len();
    let mut slots: Vec<Mutex<Option<(GcOutcome, JobOutcome)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let mut lookups: Vec<Option<CacheLookup>> = Vec::with_capacity(n);
    let mut pending: Vec<usize> = Vec::new();
    let mut skipped = 0;

    // Phase 1: cache resolution, in index order on the calling thread.
    for (i, job) in set.jobs().iter().enumerate() {
        let key = job.cache_key(&opts.binary);
        let started = Instant::now();
        match opts.cache.lookup(&key)? {
            CacheLookup::Hit(out) => {
                if let Some(p) = opts.progress {
                    p.job(&job.label(), JobOutcome::Hit, elapsed_ns(started));
                }
                if let Some(j) = opts.journal {
                    j.record_done(i, job, JobOutcome::Hit, 0)?;
                }
                *slots[i].get_mut().unwrap() = Some((out, JobOutcome::Hit));
                lookups.push(None);
                skipped += 1;
            }
            look => {
                lookups.push(Some(look));
                pending.push(i);
            }
        }
    }

    // Phase 2: execute the remainder.
    let (steals, per_worker) = if pending.is_empty() {
        (0, vec![0; opts.workers])
    } else if opts.workers == 0 {
        run_in_process(set, opts, &pending, &lookups, &slots)?;
        (0, Vec::new())
    } else {
        run_fleet(set, opts, &pending, &lookups, &slots)?
    };

    let outcomes = slots
        .iter_mut()
        .map(|s| {
            s.get_mut()
                .unwrap()
                .take()
                .expect("every job slot filled on success")
        })
        .collect();
    Ok(ExecReport {
        outcomes,
        skipped,
        steals,
        per_worker,
    })
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Complete one executed job: cache transaction, journal, telemetry.
/// The single completion path both engines share.
fn complete_job(
    set: &JobSet,
    opts: &ExecOptions,
    lookups: &[Option<CacheLookup>],
    index: usize,
    outcome: &GcOutcome,
    host_ns: u64,
    worker: usize,
) -> Result<JobOutcome, ExecError> {
    let job = &set.jobs()[index];
    let how = opts.cache.complete(
        &job.cache_key(&opts.binary),
        outcome,
        lookups[index]
            .as_ref()
            .expect("pending job retains its lookup"),
    )?;
    if let Some(j) = opts.journal {
        j.record_done(index, job, how, worker)?;
    }
    if let Some(p) = opts.progress {
        p.job(&job.label(), how, host_ns);
    }
    Ok(how)
}

fn run_in_process(
    set: &JobSet,
    opts: &ExecOptions,
    pending: &[usize],
    lookups: &[Option<CacheLookup>],
    slots: &[Mutex<Option<(GcOutcome, JobOutcome)>>],
) -> Result<(), ExecError> {
    let results: Vec<Result<(), ExecError>> = par_map(pending, |_, &i| {
        let started = Instant::now();
        let out = simulate(&set.jobs()[i]);
        let how = complete_job(set, opts, lookups, i, &out, elapsed_ns(started), 0)?;
        *slots[i].lock().unwrap() = Some((out, how));
        Ok(())
    });
    results.into_iter().collect()
}

/// One worker's persistent child process plus its I/O handles.
struct WorkerLink {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_worker(bin: &PathBuf, worker: usize) -> Result<WorkerLink, ExecError> {
    let fail = |message: String| ExecError::Worker { worker, message };
    let mut cmd = Command::new(bin);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    // Abort injection (tests, CI resume drills): only worker 0 aborts,
    // so the journal ends up holding a genuinely partial sweep.
    if worker != 0 {
        cmd.env_remove("HWGC_WORKER_ABORT_AFTER");
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| fail(format!("spawn {}: {e}", bin.display())))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    match read_frame(&mut stdout) {
        Ok(Some(j)) if matches!(FromWorker::from_json(&j), Ok(FromWorker::Ready)) => {
            Ok(WorkerLink {
                child,
                stdin,
                stdout,
            })
        }
        Ok(_) => Err(fail("worker did not say ready".to_string())),
        Err(e) => Err(fail(format!("handshake: {e}"))),
    }
}

fn run_fleet(
    set: &JobSet,
    opts: &ExecOptions,
    pending: &[usize],
    lookups: &[Option<CacheLookup>],
    slots: &[Mutex<Option<(GcOutcome, JobOutcome)>>],
) -> Result<(u64, Vec<usize>), ExecError> {
    let bin = worker_bin_path()?;
    let nw = opts.workers;
    // Deal pending jobs round-robin so every worker starts with a
    // contiguous share of the canonical order.
    let queues: Mutex<Vec<VecDeque<usize>>> = {
        let mut qs: Vec<VecDeque<usize>> = (0..nw).map(|_| VecDeque::new()).collect();
        for (k, &i) in pending.iter().enumerate() {
            qs[k % nw].push_back(i);
        }
        Mutex::new(qs)
    };
    let steals = AtomicU64::new(0);
    let in_flight = AtomicUsize::new(0);
    let per_worker: Vec<AtomicUsize> = (0..nw).map(|_| AtomicUsize::new(0)).collect();
    let first_error: Mutex<Option<ExecError>> = Mutex::new(None);

    let record_error = |err: ExecError| {
        let mut slot = first_error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
    };
    let fleet_tick = |delta_done: bool| {
        let _ = delta_done;
        if let Some(p) = opts.progress {
            p.fleet(
                in_flight.load(Ordering::Relaxed),
                steals.load(Ordering::Relaxed),
            );
        }
    };

    std::thread::scope(|scope| {
        for w in 0..nw {
            let queues = &queues;
            let steals = &steals;
            let in_flight = &in_flight;
            let per_worker = &per_worker;
            let first_error = &first_error;
            let bin = &bin;
            scope.spawn(move || {
                let mut link = match spawn_worker(bin, w) {
                    Ok(l) => l,
                    Err(e) => {
                        record_error(e);
                        return;
                    }
                };
                loop {
                    if first_error.lock().unwrap().is_some() {
                        break;
                    }
                    // Pop own queue, else steal from the back of the
                    // longest other queue.
                    let index = {
                        let mut qs = queues.lock().unwrap();
                        match qs[w].pop_front() {
                            Some(i) => Some(i),
                            None => {
                                let victim = (0..nw)
                                    .filter(|&v| v != w)
                                    .max_by_key(|&v| qs[v].len())
                                    .filter(|&v| !qs[v].is_empty());
                                victim.map(|v| {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    qs[v].pop_back().expect("victim checked non-empty")
                                })
                            }
                        }
                    };
                    let Some(index) = index else { break };
                    let job = &set.jobs()[index];
                    let started = Instant::now();
                    let sent = write_frame(
                        &mut link.stdin,
                        &ToWorker::Job { index, job: *job }.to_json(),
                    );
                    if let Err(e) = sent {
                        record_error(ExecError::Worker {
                            worker: w,
                            message: format!("send job {index}: {e}"),
                        });
                        break;
                    }
                    in_flight.fetch_add(1, Ordering::Relaxed);
                    fleet_tick(false);
                    let reply = read_frame(&mut link.stdout);
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    match reply {
                        Ok(Some(j)) => match FromWorker::from_json(&j) {
                            Ok(FromWorker::Done {
                                index: done_index,
                                outcome,
                            }) if done_index == index => {
                                per_worker[w].fetch_add(1, Ordering::Relaxed);
                                match complete_job(
                                    set,
                                    opts,
                                    lookups,
                                    index,
                                    &outcome,
                                    elapsed_ns(started),
                                    w,
                                ) {
                                    Ok(how) => {
                                        *slots[index].lock().unwrap() = Some((outcome, how));
                                        fleet_tick(true);
                                    }
                                    Err(e) => {
                                        record_error(e);
                                        break;
                                    }
                                }
                            }
                            Ok(FromWorker::Failed { index, message }) => {
                                record_error(ExecError::Worker {
                                    worker: w,
                                    message: format!("job {index}: {message}"),
                                });
                                break;
                            }
                            Ok(other) => {
                                record_error(ExecError::Worker {
                                    worker: w,
                                    message: format!("unexpected reply {other:?}"),
                                });
                                break;
                            }
                            Err(e) => {
                                record_error(ExecError::Worker {
                                    worker: w,
                                    message: format!("bad reply: {e}"),
                                });
                                break;
                            }
                        },
                        Ok(None) => {
                            record_error(ExecError::Worker {
                                worker: w,
                                message: format!("worker exited while job {index} was in flight"),
                            });
                            break;
                        }
                        Err(e) => {
                            record_error(ExecError::Worker {
                                worker: w,
                                message: format!("read reply for job {index}: {e}"),
                            });
                            break;
                        }
                    }
                }
                // Best-effort clean shutdown; a dead worker is already
                // accounted for.
                let _ = write_frame(&mut link.stdin, &ToWorker::Shutdown.to_json());
                let _ = link.stdin.flush();
                drop(link.stdin);
                let _ = link.child.wait();
            });
        }
    });

    if let Some(err) = first_error.into_inner().unwrap() {
        return Err(err);
    }
    Ok((
        steals.into_inner(),
        per_worker
            .into_iter()
            .map(AtomicUsize::into_inner)
            .collect(),
    ))
}
