//! Typed artifact store: one root directory per sweep run that CSV
//! tables, JSON exports, telemetry streams and resumption journals all
//! land under, so CI can upload a single directory and `--check` gates
//! know where to look.
//!
//! The root defaults to `$CARGO_TARGET_DIR/experiments` (the directory
//! the experiment binaries have always written) and is overridable with
//! `HWGC_ARTIFACTS` — pointing a sweep at a scratch root never touches
//! the committed tree.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hwgc_obs::Json;

/// A writable artifact directory with typed emit helpers. Construction
/// creates the root; helpers create files under it and return the path
/// written, so callers can report exact locations.
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// The default store: `HWGC_ARTIFACTS` when set, else
    /// `$CARGO_TARGET_DIR/experiments` (falling back to
    /// `target/experiments`).
    ///
    /// # Panics
    /// Panics when the root cannot be created — every artifact write
    /// after that would fail anyway.
    pub fn open_default() -> ArtifactStore {
        let root = std::env::var_os("HWGC_ARTIFACTS")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(
                    std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()),
                )
                .join("experiments")
            });
        ArtifactStore::at(&root)
    }

    /// A store rooted at `root` (created if absent).
    pub fn at(root: &Path) -> ArtifactStore {
        fs::create_dir_all(root)
            .unwrap_or_else(|e| panic!("create artifact root {}: {e}", root.display()));
        ArtifactStore {
            root: root.to_path_buf(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write a CSV artifact (`<name>.csv`): header line, then the
    /// already comma-joined rows.
    pub fn csv(&self, name: &str, header: &str, rows: &[String]) -> PathBuf {
        let mut body = String::with_capacity(header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for row in rows {
            body.push_str(row);
            body.push('\n');
        }
        self.write(&format!("{name}.csv"), body.as_bytes())
    }

    /// Write a JSON artifact (`<name>.json`), compact encoding.
    pub fn json(&self, name: &str, value: &Json) -> PathBuf {
        let mut body = value.to_string_compact();
        body.push('\n');
        self.write(&format!("{name}.json"), body.as_bytes())
    }

    /// Write a free-form text artifact under the exact file name given
    /// (callers pick the extension: `.txt`, `.folded`, …).
    pub fn text(&self, file_name: &str, contents: &str) -> PathBuf {
        self.write(file_name, contents.as_bytes())
    }

    /// The path an artifact of this name would occupy (without writing
    /// it) — where e.g. a journal or telemetry stream should be opened.
    pub fn path_of(&self, file_name: &str) -> PathBuf {
        self.root.join(file_name)
    }

    fn write(&self, file_name: &str, bytes: &[u8]) -> PathBuf {
        let path = self.root.join(file_name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("create {}: {e}", parent.display()));
        }
        let mut f = fs::File::create(&path)
            .unwrap_or_else(|e| panic!("create artifact {}: {e}", path.display()));
        f.write_all(bytes)
            .unwrap_or_else(|e| panic!("write artifact {}: {e}", path.display()));
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_writes_typed_artifacts_under_its_root() {
        let root = std::env::temp_dir().join("hwgc-artifact-tests");
        let _ = fs::remove_dir_all(&root);
        let store = ArtifactStore::at(&root);
        let csv = store.csv("t", "a,b", &["1,2".to_string()]);
        assert_eq!(fs::read_to_string(&csv).unwrap(), "a,b\n1,2\n");
        let json = store.json("t", &Json::Int(7));
        assert_eq!(fs::read_to_string(&json).unwrap(), "7\n");
        let txt = store.text("notes.txt", "hi");
        assert_eq!(fs::read_to_string(&txt).unwrap(), "hi");
        assert_eq!(store.path_of("x.jsonl"), root.join("x.jsonl"));
    }
}
